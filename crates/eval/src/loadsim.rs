//! The discrete-event load simulator of §6.
//!
//! Peers churn through exponential online/offline sessions; candidate
//! payments arrive as Poisson processes and succeed iff the randomly
//! chosen payee is online; coins are renewed every three days; spending
//! follows the configured policy; owners resynchronize proactively (one
//! sync per join) or lazily (a check per owner-handled request). The
//! simulator counts coarse-grained operations, which the cost model
//! ([`crate::cost`]) turns into the CPU and communication loads of
//! Figures 2–11.

use whopay_obs::{Event as ObsEvent, Obs, Role, TraceContext};
use whopay_sim::churn::ChurnProcess;
use whopay_sim::dist::Exponential;
use whopay_sim::{sim_rng, EventQueue, SimTime};

use crate::config::SimConfig;
use crate::cost::{broker_messages, broker_micro, peer_messages, peer_micro, MicroWeights};
use crate::ops::{Op, OpCounts};
use crate::policy::{PaymentMethod, SyncStrategy};

/// Where a coin currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoinState {
    /// Owned and still held by its owner (spendable by *issue*).
    SelfHeld,
    /// Held by a peer other than via ownership (spendable by transfer or
    /// deposit).
    HeldBy(usize),
    /// Redeemed; out of circulation.
    Deposited,
}

#[derive(Debug)]
struct Coin {
    owner: usize,
    state: CoinState,
    /// When the current binding needs renewal.
    next_renewal: SimTime,
    /// Set when the holder missed a renewal while offline.
    needs_renewal: bool,
    /// Set when the broker last touched the coin (the owner's local
    /// binding is stale until it syncs or checks).
    dirty_for_owner: bool,
}

#[derive(Debug)]
struct PeerState {
    churn: ChurnProcess,
    /// Coins held (indices into the coin table).
    wallet: Vec<usize>,
    /// Self-held owned coins.
    unissued: Vec<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Toggle(usize),
    Payment(usize),
    RenewalDue(usize),
}

/// The outcome of one simulation run.
///
/// `PartialEq` compares every field exactly (including the f64
/// availability), so tests can assert that parallel and serial sweeps
/// produce bit-identical outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Number of peers simulated.
    pub n_peers: usize,
    /// Peer availability α.
    pub availability: f64,
    /// Global operation counts (each operation counted once; the cost
    /// model splits it between broker and peers).
    pub counts: OpCounts,
    /// Actual payments completed.
    pub payments: u64,
    /// Candidate payments that failed (payee offline).
    pub failed_candidates: u64,
}

impl RunResult {
    /// Broker CPU load under the given micro-op weights.
    pub fn broker_cpu(&self, w: MicroWeights) -> f64 {
        self.counts.iter().map(|(op, n)| n as f64 * w.cost(broker_micro(op))).sum()
    }

    /// Total peer CPU load under the given weights.
    pub fn peers_cpu_total(&self, w: MicroWeights) -> f64 {
        self.counts.iter().map(|(op, n)| n as f64 * w.cost(peer_micro(op))).sum()
    }

    /// Average per-peer CPU load.
    pub fn peer_cpu_avg(&self, w: MicroWeights) -> f64 {
        self.peers_cpu_total(w) / self.n_peers as f64
    }

    /// Broker communication load (messages on broker links).
    pub fn broker_comm(&self) -> f64 {
        self.counts.iter().map(|(op, n)| (n * broker_messages(op)) as f64).sum()
    }

    /// Total peer communication load (peer endpoint touches).
    pub fn peers_comm_total(&self) -> f64 {
        self.counts.iter().map(|(op, n)| (n * peer_messages(op)) as f64).sum()
    }

    /// Average per-peer communication load.
    pub fn peer_comm_avg(&self) -> f64 {
        self.peers_comm_total() / self.n_peers as f64
    }

    /// Broker-to-average-peer CPU load ratio (Figures 8).
    pub fn cpu_ratio(&self, w: MicroWeights) -> f64 {
        self.broker_cpu(w) / self.peer_cpu_avg(w)
    }

    /// Broker-to-average-peer communication load ratio (Figure 9).
    pub fn comm_ratio(&self) -> f64 {
        self.broker_comm() / self.peer_comm_avg()
    }

    /// Broker share of total CPU load (Figure 10).
    pub fn broker_cpu_share(&self, w: MicroWeights) -> f64 {
        let b = self.broker_cpu(w);
        b / (b + self.peers_cpu_total(w))
    }

    /// Broker share of total communication load (Figure 11).
    pub fn broker_comm_share(&self) -> f64 {
        let b = self.broker_comm();
        b / (b + self.peers_comm_total())
    }
}

/// Runs one simulation to completion.
pub fn run(cfg: &SimConfig) -> RunResult {
    run_with_obs(cfg, &Obs::disabled())
}

/// [`run`] with an observability context.
///
/// Each simulated operation emits events in the §6.2 cost-model units:
/// a [`Role::Broker`] event carrying [`broker_messages`]`(op)` messages
/// when the broker participates, and always a [`Role::Peer`] event
/// carrying [`peer_messages`]`(op)` messages (bytes stay 0 — the
/// simulator models message counts, not payloads). Aggregated into a
/// metrics registry, `role_messages(Broker)` equals
/// [`RunResult::broker_comm`] and `role_messages(Peer)` equals
/// [`RunResult::peers_comm_total`] exactly, and the per-kind
/// [`Role::Peer`] event counts reproduce [`RunResult::counts`].
pub fn run_with_obs(cfg: &SimConfig, obs: &Obs) -> RunResult {
    LoadSim::new(cfg, obs).run()
}

struct LoadSim<'a> {
    cfg: &'a SimConfig,
    obs: &'a Obs,
    rng: rand::rngs::StdRng,
    queue: EventQueue<Event>,
    payment_dist: Exponential,
    peers: Vec<PeerState>,
    coins: Vec<Coin>,
    counts: OpCounts,
    payments: u64,
    failed_candidates: u64,
}

impl<'a> LoadSim<'a> {
    fn new(cfg: &'a SimConfig, obs: &'a Obs) -> Self {
        let mut rng = sim_rng(cfg.seed);
        let mut queue = EventQueue::new();
        let payment_dist = Exponential::from_mean(cfg.payment_mean);
        let peers: Vec<PeerState> = (0..cfg.n_peers)
            .map(|i| {
                let churn = ChurnProcess::start(cfg.mu, cfg.nu, &mut rng);
                queue.schedule(churn.next_toggle(), Event::Toggle(i));
                queue.schedule(SimTime::ZERO + payment_dist.sample_time(&mut rng), Event::Payment(i));
                PeerState { churn, wallet: Vec::new(), unissued: Vec::new() }
            })
            .collect();
        LoadSim {
            cfg,
            obs,
            rng,
            queue,
            payment_dist,
            peers,
            coins: Vec::new(),
            counts: OpCounts::new(),
            payments: 0,
            failed_candidates: 0,
        }
    }

    fn run(mut self) -> RunResult {
        while let Some((t, ev)) = self.queue.pop_until(self.cfg.horizon) {
            match ev {
                Event::Toggle(p) => self.handle_toggle(p),
                Event::Payment(p) => self.handle_payment(p, t),
                Event::RenewalDue(c) => self.handle_renewal_due(c, t),
            }
        }
        RunResult {
            n_peers: self.cfg.n_peers,
            availability: self.cfg.availability(),
            counts: self.counts,
            payments: self.payments,
            failed_candidates: self.failed_candidates,
        }
    }

    fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Counts one operation, and reports it to the observability context
    /// in cost-model units (see [`run_with_obs`]). Each simulated
    /// operation is one trace: the peer side is the root span, the
    /// broker's share (when the op touches the broker) a child of it.
    fn note(&mut self, op: Op) {
        self.counts.bump(op);
        if self.obs.enabled() {
            let kind = op.obs_kind();
            let root = TraceContext::root();
            let broker = broker_messages(op);
            if broker > 0 {
                self.obs.observe(
                    ObsEvent::new(Role::Broker, kind).with_traffic(broker, 0).with_trace(root.child()),
                );
            }
            self.obs.observe(
                ObsEvent::new(Role::Peer, kind).with_traffic(peer_messages(op), 0).with_trace(root),
            );
        }
    }

    fn handle_toggle(&mut self, p: usize) {
        let online = self.peers[p].churn.toggle(&mut self.rng);
        let next = self.peers[p].churn.next_toggle();
        self.queue.schedule(next, Event::Toggle(p));
        if online {
            self.on_join(p);
        }
    }

    /// A peer rejoins: proactive sync ("exactly one synchronization is
    /// performed for each peer join event") and catch-up renewals for
    /// coins that fell due while it was offline.
    fn on_join(&mut self, p: usize) {
        if self.cfg.sync == SyncStrategy::Proactive && !self.cfg.centralized {
            self.note(Op::Sync);
            // The broker hands over everything it managed for this owner.
            for c in &mut self.coins {
                if c.owner == p {
                    c.dirty_for_owner = false;
                }
            }
        }
        let now = self.now();
        let held: Vec<usize> = self.peers[p].wallet.clone();
        for ci in held {
            if self.coins[ci].needs_renewal {
                self.renew_coin(ci, now);
            }
        }
    }

    /// Candidate payment event: thin by payee availability (and payer
    /// availability if the ablation flag is set), then pay per policy.
    fn handle_payment(&mut self, payer: usize, _t: SimTime) {
        // Schedule the next candidate regardless of this one's outcome.
        let next = self.now() + self.payment_dist.sample_time(&mut self.rng);
        self.queue.schedule(next, Event::Payment(payer));

        if self.cfg.payer_must_be_online && !self.peers[payer].churn.is_online() {
            self.failed_candidates += 1;
            return;
        }
        let payee = self.random_other_peer(payer);
        if !self.peers[payee].churn.is_online() {
            self.failed_candidates += 1;
            return;
        }

        let online_coin = self.find_wallet_coin(payer, true);
        let offline_coin = self.find_wallet_coin(payer, false);
        let has_unissued = !self.peers[payer].unissued.is_empty();
        let method =
            self.cfg.policy.choose(online_coin.is_some(), offline_coin.is_some(), has_unissued);
        let now = self.now();
        match method {
            PaymentMethod::TransferOnline => {
                let ci = online_coin.expect("method implies availability");
                self.owner_lazy_check(ci);
                self.note(Op::Transfer);
                self.move_coin(ci, payer, payee, now);
            }
            PaymentMethod::TransferOffline => {
                let ci = offline_coin.expect("method implies availability");
                self.note(Op::DowntimeTransfer);
                self.coins[ci].dirty_for_owner = true;
                self.move_coin(ci, payer, payee, now);
            }
            PaymentMethod::IssueExisting => {
                let ci = self.peers[payer].unissued.pop().expect("method implies availability");
                self.note(Op::Issue);
                self.issue_coin(ci, payee, now);
            }
            PaymentMethod::PurchaseAndIssue => {
                let ci = self.purchase_coin(payer);
                self.note(Op::Issue);
                self.issue_coin(ci, payee, now);
            }
            PaymentMethod::DepositThenPurchaseAndIssue => {
                let dep = offline_coin.expect("method implies availability");
                self.note(Op::Deposit);
                self.peers[payer].wallet.retain(|&c| c != dep);
                self.coins[dep].state = CoinState::Deposited;
                let ci = self.purchase_coin(payer);
                self.note(Op::Issue);
                self.issue_coin(ci, payee, now);
            }
        }
        self.payments += 1;
    }

    fn handle_renewal_due(&mut self, ci: usize, t: SimTime) {
        let coin = &mut self.coins[ci];
        if t != coin.next_renewal {
            return; // superseded by a later binding
        }
        match coin.state {
            CoinState::Deposited | CoinState::SelfHeld => {}
            CoinState::HeldBy(h) => {
                if self.peers[h].churn.is_online() {
                    self.renew_coin(ci, t);
                } else {
                    self.coins[ci].needs_renewal = true;
                }
            }
        }
    }

    /// Renews a held coin via its owner if online, else via the broker
    /// (always via the central entity in centralized mode).
    fn renew_coin(&mut self, ci: usize, now: SimTime) {
        let owner = self.coins[ci].owner;
        if !self.cfg.centralized && self.peers[owner].churn.is_online() {
            self.owner_lazy_check(ci);
            self.note(Op::Renewal);
        } else {
            self.note(Op::DowntimeRenewal);
            self.coins[ci].dirty_for_owner = true;
        }
        self.coins[ci].needs_renewal = false;
        self.schedule_renewal(ci, now);
    }

    /// Lazy synchronization: an online owner about to handle a request
    /// first checks the public binding list; if the broker moved the coin
    /// meanwhile, the owner adopts the fresh state.
    fn owner_lazy_check(&mut self, ci: usize) {
        if self.cfg.sync != SyncStrategy::Lazy {
            return;
        }
        self.note(Op::Check);
        if self.coins[ci].dirty_for_owner {
            self.note(Op::LazySync);
            self.coins[ci].dirty_for_owner = false;
        }
    }

    fn purchase_coin(&mut self, owner: usize) -> usize {
        self.note(Op::Purchase);
        let ci = self.coins.len();
        self.coins.push(Coin {
            owner,
            state: CoinState::SelfHeld,
            next_renewal: SimTime::ZERO,
            needs_renewal: false,
            dirty_for_owner: false,
        });
        ci
    }

    fn issue_coin(&mut self, ci: usize, payee: usize, now: SimTime) {
        self.coins[ci].state = CoinState::HeldBy(payee);
        self.peers[payee].wallet.push(ci);
        self.schedule_renewal(ci, now);
    }

    fn move_coin(&mut self, ci: usize, from: usize, to: usize, now: SimTime) {
        self.peers[from].wallet.retain(|&c| c != ci);
        self.coins[ci].needs_renewal = false;
        if to == self.coins[ci].owner {
            // The coin came home: the owner holds it again and can
            // re-issue it — the supply behind "issue an existing coin".
            self.coins[ci].state = CoinState::SelfHeld;
            self.peers[to].unissued.push(ci);
        } else {
            self.coins[ci].state = CoinState::HeldBy(to);
            self.peers[to].wallet.push(ci);
            self.schedule_renewal(ci, now);
        }
    }

    fn schedule_renewal(&mut self, ci: usize, now: SimTime) {
        let due = now + self.cfg.renewal_period;
        self.coins[ci].next_renewal = due;
        self.queue.schedule(due, Event::RenewalDue(ci));
    }

    /// A wallet coin of `peer` whose owner is online (`true`) or offline
    /// (`false`), if any. Scans from the back so recently received coins
    /// are spent first (keeps wallets short without biasing availability).
    /// In centralized mode no owner ever serves transfers, so every coin
    /// reports as "owner offline" and the broker handles all spends.
    fn find_wallet_coin(&self, peer: usize, owner_online: bool) -> Option<usize> {
        self.peers[peer].wallet.iter().rev().copied().find(|&ci| {
            let online = !self.cfg.centralized && self.peers[self.coins[ci].owner].churn.is_online();
            online == owner_online
        })
    }

    fn random_other_peer(&mut self, not: usize) -> usize {
        loop {
            let p = rand::RngExt::random_range(&mut self.rng, 0..self.cfg.n_peers);
            if p != not {
                return p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    fn small(policy: Policy, sync: SyncStrategy) -> RunResult {
        run(&SimConfig::small_test(policy, sync, 99))
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small(Policy::I, SyncStrategy::Proactive);
        let b = small(Policy::I, SyncStrategy::Proactive);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.payments, b.payments);
    }

    #[test]
    fn payment_thinning_matches_availability() {
        // α = 0.5: roughly half the candidates should fail.
        let r = small(Policy::I, SyncStrategy::Proactive);
        let total = r.payments + r.failed_candidates;
        let frac = r.payments as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "payment success fraction {frac}");
    }

    #[test]
    fn transfers_dominate_peer_load() {
        // §6.2: "under all configurations, transfers dominate peer load."
        for policy in [Policy::I, Policy::III] {
            let r = small(policy, SyncStrategy::Proactive);
            let transfers = r.counts.get(Op::Transfer);
            for op in [Op::Purchase, Op::Issue, Op::Renewal, Op::DowntimeRenewal] {
                assert!(
                    transfers > r.counts.get(op),
                    "{policy:?}: transfers {transfers} vs {op:?} {}",
                    r.counts.get(op)
                );
            }
        }
    }

    #[test]
    fn policy_iii_never_broker_transfers_and_policy_i_never_deposits() {
        let r1 = small(Policy::I, SyncStrategy::Proactive);
        assert_eq!(r1.counts.get(Op::Deposit), 0, "policy I never deposits");
        assert!(r1.counts.get(Op::DowntimeTransfer) > 0, "policy I uses broker transfers");

        let r3 = small(Policy::III, SyncStrategy::Proactive);
        assert_eq!(r3.counts.get(Op::DowntimeTransfer), 0, "policy III avoids broker transfers");
        assert!(r3.counts.get(Op::Deposit) > 0, "policy III deposits offline coins");
    }

    #[test]
    fn sync_strategy_controls_sync_and_check_ops() {
        let pro = small(Policy::I, SyncStrategy::Proactive);
        assert!(pro.counts.get(Op::Sync) > 0);
        assert_eq!(pro.counts.get(Op::Check), 0);

        let lazy = small(Policy::I, SyncStrategy::Lazy);
        assert_eq!(lazy.counts.get(Op::Sync), 0);
        assert!(lazy.counts.get(Op::Check) > 0);
        assert!(lazy.counts.get(Op::LazySync) <= lazy.counts.get(Op::Check));
    }

    #[test]
    fn lazy_sync_reduces_broker_load() {
        let pro = small(Policy::I, SyncStrategy::Proactive);
        let lazy = small(Policy::I, SyncStrategy::Lazy);
        let w = MicroWeights::TABLE3;
        assert!(
            lazy.broker_cpu(w) < pro.broker_cpu(w),
            "lazy {} < proactive {}",
            lazy.broker_cpu(w),
            pro.broker_cpu(w)
        );
    }

    #[test]
    fn majority_of_load_on_peers() {
        // "the majority of the load is supported by the peers" (§6.2).
        let r = small(Policy::I, SyncStrategy::Proactive);
        let w = MicroWeights::TABLE3;
        assert!(r.broker_cpu_share(w) < 0.5, "broker share {}", r.broker_cpu_share(w));
        assert!(r.broker_comm_share() < 0.5);
    }

    #[test]
    fn one_sync_per_join_event() {
        // Syncs should be close to the expected number of join events:
        // with µ = ν = 2h over 2 days, each peer toggles ~24 times, half
        // of them joins.
        let r = small(Policy::I, SyncStrategy::Proactive);
        let syncs = r.counts.get(Op::Sync) as f64;
        let expect = 50.0 * 12.0; // 50 peers × ~12 joins
        assert!((syncs - expect).abs() / expect < 0.3, "syncs {syncs} vs ~{expect}");
    }

    #[test]
    fn coins_returned_to_their_owner_become_reissuable() {
        // When a transfer's payee happens to be the coin's owner, the coin
        // becomes self-held again and can be spent by *issue* — so issues
        // outnumber purchases over a long enough run.
        let mut cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 21);
        cfg.horizon = whopay_sim::SimTime::from_days(6);
        let r = run(&cfg);
        assert!(
            r.counts.get(Op::Issue) > r.counts.get(Op::Purchase),
            "issues {} should exceed purchases {}",
            r.counts.get(Op::Issue),
            r.counts.get(Op::Purchase)
        );
    }

    #[test]
    fn obs_events_reconcile_with_cost_model() {
        use std::sync::Arc;
        use whopay_obs::{Metrics, Obs, Role};

        let cfg = SimConfig::small_test(Policy::I, SyncStrategy::Lazy, 99);
        let metrics = Arc::new(Metrics::new());
        let r = run_with_obs(&cfg, &Obs::with_metrics(metrics.clone()));
        let report = metrics.report();

        // One Role::Peer event per counted operation, per kind.
        for (op, n) in r.counts.iter() {
            let row = metrics.op_snapshot(Role::Peer, op.obs_kind());
            assert_eq!(row.count, n, "{op:?} event count");
        }
        // Role-level message totals are exactly the cost-model loads.
        assert_eq!(report.role_messages(Role::Broker) as f64, r.broker_comm());
        assert_eq!(report.role_messages(Role::Peer) as f64, r.peers_comm_total());
        // And an instrumented run leaves the outcome untouched.
        let plain = run(&cfg);
        assert_eq!(plain.counts, r.counts);
        assert_eq!(plain.payments, r.payments);
    }

    #[test]
    fn renewals_happen_for_long_held_coins() {
        // With a 2-day horizon and 3-day renewal period there are few
        // renewals; stretch the horizon to see them.
        let mut cfg = SimConfig::small_test(Policy::III, SyncStrategy::Proactive, 7);
        cfg.horizon = whopay_sim::SimTime::from_days(8);
        let r = run(&cfg);
        assert!(
            r.counts.get(Op::Renewal) + r.counts.get(Op::DowntimeRenewal) > 0,
            "coins held past 3 days must renew"
        );
    }
}

#[cfg(test)]
mod centralized_tests {
    use super::*;
    use crate::policy::Policy;

    #[test]
    fn centralized_baseline_routes_everything_through_the_broker() {
        let mut cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 31);
        cfg.centralized = true;
        let r = run(&cfg);
        assert_eq!(r.counts.get(Op::Transfer), 0, "no owner-served transfers");
        assert_eq!(r.counts.get(Op::Renewal), 0, "no owner-served renewals");
        assert_eq!(r.counts.get(Op::Sync), 0, "owners keep no state to sync");
        assert!(r.counts.get(Op::DowntimeTransfer) > 0, "central transfers happen");

        // The broker's share of total load is dramatically higher than in
        // the peer-to-peer system — the paper's scalability argument.
        let w = MicroWeights::TABLE3;
        let mut p2p_cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 31);
        p2p_cfg.payer_must_be_online = cfg.payer_must_be_online;
        let p2p = run(&p2p_cfg);
        assert!(
            r.broker_cpu_share(w) > 3.0 * p2p.broker_cpu_share(w),
            "centralized share {} vs whopay {}",
            r.broker_cpu_share(w),
            p2p.broker_cpu_share(w)
        );
    }
}

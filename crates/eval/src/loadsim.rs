//! The discrete-event load simulator of §6, rebuilt for scale.
//!
//! Peers churn through the [`whopay_sim::lifecycle`] state machine
//! (the paper's exponential on/off sessions by default); candidate
//! payments arrive as Poisson processes and succeed iff the randomly
//! chosen payee is connected; coins are renewed every three days;
//! spending follows the configured policy; owners resynchronize
//! proactively (one sync per join) or lazily (a check per owner-handled
//! request). The simulator counts coarse-grained operations, which the
//! cost model ([`crate::cost`]) turns into the CPU and communication
//! loads of Figures 2–11.
//!
//! # Engine layout
//!
//! The seed engine ([`crate::legacy`]) kept one boxed object per peer
//! and coin; this engine is built for 10⁵–10⁶ peers:
//!
//! * **Arenas.** Peers and coins live in struct-of-arrays arenas
//!   addressed by `u32` handles. Wallets and unissued stacks are
//!   intrusive linked lists threaded through the coin arena (a coin is
//!   in exactly one of: a wallet, an unissued stack, the free list), so
//!   a payment is a handful of array writes with no allocation.
//!   Deposited coins are recycled through a free list.
//! * **Epoch guards.** Each coin carries an epoch bumped on every
//!   renewal (re)scheduling; a popped `RenewalDue` whose epoch doesn't
//!   match the coin's is stale and dropped. This replaces the seed
//!   engine's time-equality guard and stays correct across slot
//!   recycling.
//! * **Calendar queue.** Events sit in [`whopay_sim::EventQueue`], the
//!   O(1)-amortized calendar queue (see `crates/sim/src/queue.rs`).
//! * **Partitioned runner.** [`run_partitioned`] splits the peers into
//!   K independent sub-simulations (payments stay within a partition)
//!   on scoped worker threads — `WHOPAY_SIM_THREADS` caps the pool —
//!   sharing one [`BrokerLoad`] accumulator, and merges the results
//!   deterministically.
//!
//! # Determinism contract
//!
//! * `run(cfg)` is a pure function of `cfg` (same seed ⇒ identical
//!   [`RunResult`]), and — with the life-cycle extension disabled —
//!   consumes the random stream draw-for-draw identically to
//!   [`crate::legacy::run`], so the two engines produce *equal*
//!   results (`tests/arena_equiv.rs`).
//! * `run_partitioned(cfg, k)` depends only on `cfg` and `k`, never on
//!   the worker-thread count: partitions have independent RNG streams
//!   and results merge in partition order
//!   (`tests/partitioned.rs`).
//! * `run_partitioned(cfg, 1)` *is* `run(cfg)`: a single partition
//!   keeps the original seed and population.

use std::sync::atomic::{AtomicU64, Ordering};

use whopay_obs::{Event as ObsEvent, Obs, Role, TraceContext};
use whopay_sim::dist::Exponential;
use whopay_sim::{sim_rng, EventQueue, LifecycleConfig, LifecycleState, SimTime};

use crate::config::SimConfig;
use crate::cost::{broker_messages, broker_micro, peer_messages, peer_micro, MicroWeights};
use crate::ops::{Op, OpCounts};
use crate::policy::{PaymentMethod, SyncStrategy};

/// Null handle for intrusive links.
const NONE: u32 = u32::MAX;
/// `holder` sentinel: the coin sits with its owner (spendable by issue).
const HOLDER_SELF: u32 = u32::MAX;
/// `holder` sentinel: the coin was redeemed and its slot is recyclable.
const HOLDER_DEPOSITED: u32 = u32::MAX - 1;

/// Coin flag: the holder missed a renewal while offline.
const F_NEEDS_RENEWAL: u8 = 1 << 0;
/// Coin flag: the broker last touched the coin (the owner's local
/// binding is stale until it checks).
const F_DIRTY_FOR_OWNER: u8 = 1 << 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The peer's life-cycle advances to its next state.
    Advance(u32),
    /// A candidate payment by the peer.
    Payment(u32),
    /// A coin's renewal period elapsed (stale when the epoch mismatches).
    RenewalDue { coin: u32, epoch: u32 },
}

/// Peer state, struct-of-arrays: one lane per field, indexed by peer
/// handle.
#[derive(Debug, Default)]
struct PeerArena {
    state: Vec<LifecycleState>,
    /// Head/tail of the wallet list (coins held), oldest first.
    wallet_head: Vec<u32>,
    wallet_tail: Vec<u32>,
    /// Head of the unissued stack (self-held owned coins), LIFO.
    unissued_head: Vec<u32>,
}

impl PeerArena {
    fn with_capacity(n: usize) -> Self {
        PeerArena {
            state: Vec::with_capacity(n),
            wallet_head: Vec::with_capacity(n),
            wallet_tail: Vec::with_capacity(n),
            unissued_head: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, state: LifecycleState) {
        self.state.push(state);
        self.wallet_head.push(NONE);
        self.wallet_tail.push(NONE);
        self.unissued_head.push(NONE);
    }

    fn connected(&self, p: u32) -> bool {
        self.state[p as usize].is_connected()
    }
}

/// Coin state, struct-of-arrays. `next`/`prev` thread the coin through
/// whichever list it is on — its holder's wallet, its owner's unissued
/// stack, or the free list; membership is mutually exclusive, so one
/// link pair serves all three.
#[derive(Debug, Default)]
struct CoinArena {
    owner: Vec<u32>,
    /// Holding peer, or [`HOLDER_SELF`] / [`HOLDER_DEPOSITED`].
    holder: Vec<u32>,
    /// Renewal-scheduling epoch; bumped on every (re)schedule and on
    /// slot recycling, so stale `RenewalDue` events drop out.
    epoch: Vec<u32>,
    flags: Vec<u8>,
    next: Vec<u32>,
    prev: Vec<u32>,
    /// Head of the free list of deposited (recyclable) slots.
    free_head: u32,
}

impl CoinArena {
    fn new() -> Self {
        CoinArena { free_head: NONE, ..Default::default() }
    }

    fn flag(&self, ci: u32, f: u8) -> bool {
        self.flags[ci as usize] & f != 0
    }

    fn set_flag(&mut self, ci: u32, f: u8, on: bool) {
        if on {
            self.flags[ci as usize] |= f;
        } else {
            self.flags[ci as usize] &= !f;
        }
    }

    /// Allocates a coin slot: recycles a deposited slot (bumping its
    /// epoch so pending renewals for the dead coin stay dead) or grows
    /// the arena.
    fn alloc(&mut self, owner: u32) -> u32 {
        if self.free_head != NONE {
            let ci = self.free_head;
            self.free_head = self.next[ci as usize];
            self.owner[ci as usize] = owner;
            self.holder[ci as usize] = HOLDER_SELF;
            self.epoch[ci as usize] = self.epoch[ci as usize].wrapping_add(1);
            self.flags[ci as usize] = 0;
            self.next[ci as usize] = NONE;
            self.prev[ci as usize] = NONE;
            ci
        } else {
            let ci = u32::try_from(self.owner.len()).expect("more than u32::MAX coins");
            self.owner.push(owner);
            self.holder.push(HOLDER_SELF);
            self.epoch.push(0);
            self.flags.push(0);
            self.next.push(NONE);
            self.prev.push(NONE);
            ci
        }
    }

    /// Returns a deposited coin's slot to the free list.
    fn free(&mut self, ci: u32) {
        self.holder[ci as usize] = HOLDER_DEPOSITED;
        self.prev[ci as usize] = NONE;
        self.next[ci as usize] = self.free_head;
        self.free_head = ci;
    }
}

/// The outcome of one simulation run (or a deterministic merge of
/// partitioned sub-runs, see [`RunResult::merged`]).
///
/// `PartialEq` compares every field exactly (including the f64
/// availability), so tests can assert that parallel and serial sweeps
/// produce bit-identical outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Number of peers simulated.
    pub n_peers: usize,
    /// Peer availability α.
    pub availability: f64,
    /// Global operation counts (each operation counted once; the cost
    /// model splits it between broker and peers).
    pub counts: OpCounts,
    /// Actual payments completed.
    pub payments: u64,
    /// Candidate payments that failed (payee offline).
    pub failed_candidates: u64,
    /// Discrete events processed (queue pops) — the unit of the
    /// throughput benchmark (`bench_loadsim_json`).
    pub events: u64,
}

impl RunResult {
    /// Broker CPU load under the given micro-op weights.
    pub fn broker_cpu(&self, w: MicroWeights) -> f64 {
        self.counts.iter().map(|(op, n)| n as f64 * w.cost(broker_micro(op))).sum()
    }

    /// Total peer CPU load under the given weights.
    pub fn peers_cpu_total(&self, w: MicroWeights) -> f64 {
        self.counts.iter().map(|(op, n)| n as f64 * w.cost(peer_micro(op))).sum()
    }

    /// Average per-peer CPU load.
    pub fn peer_cpu_avg(&self, w: MicroWeights) -> f64 {
        self.peers_cpu_total(w) / self.n_peers as f64
    }

    /// Broker communication load (messages on broker links).
    pub fn broker_comm(&self) -> f64 {
        self.counts.iter().map(|(op, n)| (n * broker_messages(op)) as f64).sum()
    }

    /// Total peer communication load (peer endpoint touches).
    pub fn peers_comm_total(&self) -> f64 {
        self.counts.iter().map(|(op, n)| (n * peer_messages(op)) as f64).sum()
    }

    /// Average per-peer communication load.
    pub fn peer_comm_avg(&self) -> f64 {
        self.peers_comm_total() / self.n_peers as f64
    }

    /// Broker-to-average-peer CPU load ratio (Figures 8).
    pub fn cpu_ratio(&self, w: MicroWeights) -> f64 {
        self.broker_cpu(w) / self.peer_cpu_avg(w)
    }

    /// Broker-to-average-peer communication load ratio (Figure 9).
    pub fn comm_ratio(&self) -> f64 {
        self.broker_comm() / self.peer_comm_avg()
    }

    /// Broker share of total CPU load (Figure 10).
    pub fn broker_cpu_share(&self, w: MicroWeights) -> f64 {
        let b = self.broker_cpu(w);
        b / (b + self.peers_cpu_total(w))
    }

    /// Broker share of total communication load (Figure 11).
    pub fn broker_comm_share(&self) -> f64 {
        let b = self.broker_comm();
        b / (b + self.peers_comm_total())
    }

    /// Merges partitioned sub-results in order: counts and totals sum,
    /// availability is shared (all partitions run the same µ/ν). A
    /// single-element merge is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn merged(parts: &[RunResult]) -> RunResult {
        assert!(!parts.is_empty(), "cannot merge zero partitions");
        let mut out = RunResult {
            n_peers: 0,
            availability: parts[0].availability,
            counts: OpCounts::new(),
            payments: 0,
            failed_candidates: 0,
            events: 0,
        };
        for part in parts {
            out.n_peers += part.n_peers;
            out.counts.merge(&part.counts);
            out.payments += part.payments;
            out.failed_candidates += part.failed_candidates;
            out.events += part.events;
        }
        out
    }
}

/// The broker-load accumulator partitioned sub-simulations share: one
/// atomic counter per §6.2 operation. Each partition flushes its counts
/// on completion; addition is commutative, so the totals are identical
/// for every thread schedule.
#[derive(Debug, Default)]
pub struct BrokerLoad {
    ops: [AtomicU64; 10],
}

impl BrokerLoad {
    /// An all-zero accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flushes one partition's operation counts into the accumulator.
    pub fn record(&self, counts: &OpCounts) {
        for (i, (_, n)) in counts.iter().enumerate() {
            self.ops[i].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The accumulated operation counts.
    pub fn snapshot(&self) -> OpCounts {
        let mut counts = OpCounts::new();
        for (i, op) in Op::ALL.into_iter().enumerate() {
            counts.add(op, self.ops[i].load(Ordering::Relaxed));
        }
        counts
    }

    /// Accumulated broker communication load (messages on broker links),
    /// the quantity the §6 curves track against peer count.
    pub fn broker_comm(&self) -> f64 {
        self.snapshot().iter().map(|(op, n)| (n * broker_messages(op)) as f64).sum()
    }
}

/// Runs one simulation to completion.
pub fn run(cfg: &SimConfig) -> RunResult {
    run_with_obs(cfg, &Obs::disabled())
}

/// [`run`] with an observability context.
///
/// Each simulated operation emits events in the §6.2 cost-model units:
/// a [`Role::Broker`] event carrying [`broker_messages`]`(op)` messages
/// when the broker participates, and always a [`Role::Peer`] event
/// carrying [`peer_messages`]`(op)` messages (bytes stay 0 — the
/// simulator models message counts, not payloads). Aggregated into a
/// metrics registry, `role_messages(Broker)` equals
/// [`RunResult::broker_comm`] and `role_messages(Peer)` equals
/// [`RunResult::peers_comm_total`] exactly, and the per-kind
/// [`Role::Peer`] event counts reproduce [`RunResult::counts`].
pub fn run_with_obs(cfg: &SimConfig, obs: &Obs) -> RunResult {
    LoadSim::new(cfg, obs, None).run()
}

/// The worker-thread budget for partitioned runs: `WHOPAY_SIM_THREADS`
/// when set (minimum 1), else the host's available parallelism.
///
/// Thread count never changes results — it only bounds concurrency
/// (see [`run_partitioned_threads`]).
pub fn sim_threads() -> usize {
    std::env::var("WHOPAY_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Splits `cfg` into `partitions` independent sub-configurations: the
/// population divides as evenly as possible (remainders go to the first
/// partitions) and each partition gets its own seed derived from
/// `cfg.seed` by a SplitMix64 mix — except a single partition, which
/// keeps the original seed so `run_partitioned(cfg, 1)` *is* `run(cfg)`.
pub fn partition_configs(cfg: &SimConfig, partitions: usize) -> Vec<SimConfig> {
    assert!(partitions > 0, "need at least one partition");
    let base = cfg.n_peers / partitions;
    let rem = cfg.n_peers % partitions;
    (0..partitions)
        .map(|p| {
            let mut sub = cfg.clone();
            sub.n_peers = base + usize::from(p < rem);
            if partitions > 1 {
                sub.seed = splitmix64(cfg.seed ^ (p as u64 + 1).wrapping_mul(GOLDEN));
            }
            sub
        })
        .collect()
}

pub(crate) const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: decorrelates per-partition seeds.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `cfg` as `partitions` independent sub-simulations on up to
/// [`sim_threads`] scoped worker threads and merges the results.
///
/// Payments stay within a partition (each sub-simulation is a closed
/// population), partitions share one [`BrokerLoad`] accumulator, and
/// the merge happens in partition order — so the outcome is a pure
/// function of `cfg` and `partitions`.
pub fn run_partitioned(cfg: &SimConfig, partitions: usize) -> RunResult {
    run_partitioned_threads(cfg, partitions, sim_threads(), &Obs::disabled())
}

/// [`run_partitioned`] with an explicit thread budget and observability
/// context. Results are identical for every `threads` value (the
/// partition determinism suite pins `threads = 1` against `threads = K`
/// bit-for-bit); obs events are tagged with their partition index.
pub fn run_partitioned_threads(
    cfg: &SimConfig,
    partitions: usize,
    threads: usize,
    obs: &Obs,
) -> RunResult {
    let configs = partition_configs(cfg, partitions);
    let load = BrokerLoad::new();
    let workers = threads.max(1).min(partitions);
    let results: Vec<RunResult> = if workers == 1 {
        configs.iter().enumerate().map(|(p, sub)| run_partition(sub, p as u32, &load, obs)).collect()
    } else {
        let mut slots: Vec<Option<RunResult>> = (0..partitions).map(|_| None).collect();
        std::thread::scope(|scope| {
            let configs = &configs;
            let load = &load;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut p = w;
                        while p < configs.len() {
                            out.push((p, run_partition(&configs[p], p as u32, load, obs)));
                            p += workers;
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (p, result) in handle.join().expect("sim worker panicked") {
                    slots[p] = Some(result);
                }
            }
        });
        slots.into_iter().map(|s| s.expect("every partition ran")).collect()
    };
    let merged = RunResult::merged(&results);
    debug_assert_eq!(load.snapshot(), merged.counts, "accumulator and merge must agree");
    merged
}

fn run_partition(cfg: &SimConfig, partition: u32, load: &BrokerLoad, obs: &Obs) -> RunResult {
    let result = LoadSim::new(cfg, obs, Some(partition)).run();
    load.record(&result.counts);
    result
}

struct LoadSim<'a> {
    cfg: &'a SimConfig,
    obs: &'a Obs,
    /// Set when running as a partitioned sub-simulation: tags obs events.
    partition: Option<u32>,
    lifecycle: LifecycleConfig,
    rng: rand::rngs::StdRng,
    queue: EventQueue<Event>,
    payment_dist: Exponential,
    peers: PeerArena,
    coins: CoinArena,
    counts: OpCounts,
    payments: u64,
    failed_candidates: u64,
    events: u64,
}

impl<'a> LoadSim<'a> {
    fn new(cfg: &'a SimConfig, obs: &'a Obs, partition: Option<u32>) -> Self {
        let lifecycle = cfg.lifecycle();
        let mut rng = sim_rng(cfg.seed);
        let mut queue = EventQueue::new();
        let payment_dist = Exponential::from_mean(cfg.payment_mean);
        let mut peers = PeerArena::with_capacity(cfg.n_peers);
        for i in 0..cfg.n_peers {
            let (state, first) = lifecycle.sample_start(&mut rng);
            queue.schedule(SimTime::ZERO + first, Event::Advance(i as u32));
            queue
                .schedule(SimTime::ZERO + payment_dist.sample_time(&mut rng), Event::Payment(i as u32));
            peers.push(state);
        }
        LoadSim {
            cfg,
            obs,
            partition,
            lifecycle,
            rng,
            queue,
            payment_dist,
            peers,
            coins: CoinArena::new(),
            counts: OpCounts::new(),
            payments: 0,
            failed_candidates: 0,
            events: 0,
        }
    }

    fn run(mut self) -> RunResult {
        while let Some((_t, ev)) = self.queue.pop_until(self.cfg.horizon) {
            self.events += 1;
            match ev {
                Event::Advance(p) => self.handle_advance(p),
                Event::Payment(p) => self.handle_payment(p),
                Event::RenewalDue { coin, epoch } => self.handle_renewal_due(coin, epoch),
            }
        }
        RunResult {
            n_peers: self.cfg.n_peers,
            availability: self.cfg.availability(),
            counts: self.counts,
            payments: self.payments,
            failed_candidates: self.failed_candidates,
            events: self.events,
        }
    }

    fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Counts one operation, and reports it to the observability context
    /// in cost-model units (see [`run_with_obs`]). Each simulated
    /// operation is one trace: the peer side is the root span, the
    /// broker's share (when the op touches the broker) a child of it.
    fn note(&mut self, op: Op) {
        self.counts.bump(op);
        if self.obs.enabled() {
            let kind = op.obs_kind();
            let root = TraceContext::root();
            let broker = broker_messages(op);
            let tag = |mut ev: ObsEvent, partition: Option<u32>| {
                if let Some(p) = partition {
                    ev = ev.with_partition(p);
                }
                ev
            };
            if broker > 0 {
                self.obs.observe(tag(
                    ObsEvent::new(Role::Broker, kind).with_traffic(broker, 0).with_trace(root.child()),
                    self.partition,
                ));
            }
            self.obs.observe(tag(
                ObsEvent::new(Role::Peer, kind).with_traffic(peer_messages(op), 0).with_trace(root),
                self.partition,
            ));
        }
    }

    /// The peer's life-cycle advances: Discovery → Pending → Connected →
    /// ChurnOut (zero-mean states skipped). Entering Connected is the
    /// join; every other entry draws its dwell and waits.
    fn handle_advance(&mut self, p: u32) {
        let next = self.lifecycle.next_state(self.peers.state[p as usize]);
        debug_assert!(self.peers.state[p as usize].can_transition(next));
        self.peers.state[p as usize] = next;
        let dwell = self.lifecycle.sample_dwell(next, &mut self.rng);
        self.queue.schedule_in(dwell, Event::Advance(p));
        if next.is_connected() {
            self.on_join(p);
        }
    }

    /// A peer connects: proactive sync ("exactly one synchronization is
    /// performed for each peer join event") and catch-up renewals for
    /// coins that fell due while it was away.
    ///
    /// The seed engine also walked every coin in the system here to
    /// clear the owner's dirty bits — O(total coins) per join, the scan
    /// that capped its scale. The bits it cleared are only ever *read*
    /// under lazy sync, where proactive syncs never fire, so dropping
    /// the scan leaves every observable unchanged (the differential
    /// suite pins this).
    fn on_join(&mut self, p: u32) {
        if self.cfg.sync == SyncStrategy::Proactive && !self.cfg.centralized {
            self.note(Op::Sync);
        }
        let now = self.now();
        let mut ci = self.peers.wallet_head[p as usize];
        while ci != NONE {
            let next = self.coins.next[ci as usize];
            if self.coins.flag(ci, F_NEEDS_RENEWAL) {
                self.renew_coin(ci, now);
            }
            ci = next;
        }
    }

    /// Candidate payment event: thin by payee availability (and payer
    /// availability if the ablation flag is set), then pay per policy.
    fn handle_payment(&mut self, payer: u32) {
        // Schedule the next candidate regardless of this one's outcome.
        let gap = self.payment_dist.sample_time(&mut self.rng);
        self.queue.schedule_in(gap, Event::Payment(payer));

        if self.cfg.payer_must_be_online && !self.peers.connected(payer) {
            self.failed_candidates += 1;
            return;
        }
        let payee = self.random_other_peer(payer);
        if !self.peers.connected(payee) {
            self.failed_candidates += 1;
            return;
        }

        let online_coin = self.find_wallet_coin(payer, true);
        let offline_coin = self.find_wallet_coin(payer, false);
        let has_unissued = self.peers.unissued_head[payer as usize] != NONE;
        let method =
            self.cfg.policy.choose(online_coin.is_some(), offline_coin.is_some(), has_unissued);
        let now = self.now();
        match method {
            PaymentMethod::TransferOnline => {
                let ci = online_coin.expect("method implies availability");
                self.owner_lazy_check(ci);
                self.note(Op::Transfer);
                self.move_coin(ci, payer, payee, now);
            }
            PaymentMethod::TransferOffline => {
                let ci = offline_coin.expect("method implies availability");
                self.note(Op::DowntimeTransfer);
                self.coins.set_flag(ci, F_DIRTY_FOR_OWNER, true);
                self.move_coin(ci, payer, payee, now);
            }
            PaymentMethod::IssueExisting => {
                let ci = self.unissued_pop(payer).expect("method implies availability");
                self.note(Op::Issue);
                self.issue_coin(ci, payee, now);
            }
            PaymentMethod::PurchaseAndIssue => {
                let ci = self.purchase_coin(payer);
                self.note(Op::Issue);
                self.issue_coin(ci, payee, now);
            }
            PaymentMethod::DepositThenPurchaseAndIssue => {
                let dep = offline_coin.expect("method implies availability");
                self.note(Op::Deposit);
                self.wallet_unlink(payer, dep);
                self.coins.free(dep);
                let ci = self.purchase_coin(payer);
                self.note(Op::Issue);
                self.issue_coin(ci, payee, now);
            }
        }
        self.payments += 1;
    }

    fn handle_renewal_due(&mut self, ci: u32, epoch: u32) {
        if self.coins.epoch[ci as usize] != epoch {
            return; // superseded by a later binding (or a recycled slot)
        }
        let holder = self.coins.holder[ci as usize];
        if holder == HOLDER_SELF || holder == HOLDER_DEPOSITED {
            return;
        }
        if self.peers.connected(holder) {
            let now = self.now();
            self.renew_coin(ci, now);
        } else {
            self.coins.set_flag(ci, F_NEEDS_RENEWAL, true);
        }
    }

    /// Renews a held coin via its owner if online, else via the broker
    /// (always via the central entity in centralized mode).
    fn renew_coin(&mut self, ci: u32, now: SimTime) {
        let owner = self.coins.owner[ci as usize];
        if !self.cfg.centralized && self.peers.connected(owner) {
            self.owner_lazy_check(ci);
            self.note(Op::Renewal);
        } else {
            self.note(Op::DowntimeRenewal);
            self.coins.set_flag(ci, F_DIRTY_FOR_OWNER, true);
        }
        self.coins.set_flag(ci, F_NEEDS_RENEWAL, false);
        self.schedule_renewal(ci, now);
    }

    /// Lazy synchronization: an online owner about to handle a request
    /// first checks the public binding list; if the broker moved the coin
    /// meanwhile, the owner adopts the fresh state.
    fn owner_lazy_check(&mut self, ci: u32) {
        if self.cfg.sync != SyncStrategy::Lazy {
            return;
        }
        self.note(Op::Check);
        if self.coins.flag(ci, F_DIRTY_FOR_OWNER) {
            self.note(Op::LazySync);
            self.coins.set_flag(ci, F_DIRTY_FOR_OWNER, false);
        }
    }

    fn purchase_coin(&mut self, owner: u32) -> u32 {
        self.note(Op::Purchase);
        self.coins.alloc(owner)
    }

    fn issue_coin(&mut self, ci: u32, payee: u32, now: SimTime) {
        debug_assert!(self.peers.connected(payee), "payee of an issue must be connected");
        self.coins.holder[ci as usize] = payee;
        self.wallet_push(payee, ci);
        self.schedule_renewal(ci, now);
    }

    fn move_coin(&mut self, ci: u32, from: u32, to: u32, now: SimTime) {
        debug_assert!(self.peers.connected(to), "payee of a transfer must be connected");
        self.wallet_unlink(from, ci);
        self.coins.set_flag(ci, F_NEEDS_RENEWAL, false);
        if to == self.coins.owner[ci as usize] {
            // The coin came home: the owner holds it again and can
            // re-issue it — the supply behind "issue an existing coin".
            self.coins.holder[ci as usize] = HOLDER_SELF;
            self.unissued_push(to, ci);
        } else {
            self.coins.holder[ci as usize] = to;
            self.wallet_push(to, ci);
            self.schedule_renewal(ci, now);
        }
    }

    fn schedule_renewal(&mut self, ci: u32, now: SimTime) {
        let epoch = self.coins.epoch[ci as usize].wrapping_add(1);
        self.coins.epoch[ci as usize] = epoch;
        self.queue.schedule(now + self.cfg.renewal_period, Event::RenewalDue { coin: ci, epoch });
    }

    /// A wallet coin of `peer` whose owner is online (`true`) or offline
    /// (`false`), if any. Scans from the tail so recently received coins
    /// are spent first (keeps wallets short without biasing availability).
    /// In centralized mode no owner ever serves transfers, so every coin
    /// reports as "owner offline" and the broker handles all spends.
    fn find_wallet_coin(&self, peer: u32, owner_online: bool) -> Option<u32> {
        let mut ci = self.peers.wallet_tail[peer as usize];
        while ci != NONE {
            let online = !self.cfg.centralized && self.peers.connected(self.coins.owner[ci as usize]);
            if online == owner_online {
                return Some(ci);
            }
            ci = self.coins.prev[ci as usize];
        }
        None
    }

    fn random_other_peer(&mut self, not: u32) -> u32 {
        loop {
            let p = rand::RngExt::random_range(&mut self.rng, 0..self.cfg.n_peers) as u32;
            if p != not {
                return p;
            }
        }
    }

    // ---- intrusive list plumbing ------------------------------------

    fn wallet_push(&mut self, p: u32, ci: u32) {
        let tail = self.peers.wallet_tail[p as usize];
        self.coins.prev[ci as usize] = tail;
        self.coins.next[ci as usize] = NONE;
        if tail == NONE {
            self.peers.wallet_head[p as usize] = ci;
        } else {
            self.coins.next[tail as usize] = ci;
        }
        self.peers.wallet_tail[p as usize] = ci;
    }

    fn wallet_unlink(&mut self, p: u32, ci: u32) {
        let prev = self.coins.prev[ci as usize];
        let next = self.coins.next[ci as usize];
        if prev == NONE {
            self.peers.wallet_head[p as usize] = next;
        } else {
            self.coins.next[prev as usize] = next;
        }
        if next == NONE {
            self.peers.wallet_tail[p as usize] = prev;
        } else {
            self.coins.prev[next as usize] = prev;
        }
        self.coins.prev[ci as usize] = NONE;
        self.coins.next[ci as usize] = NONE;
    }

    /// Unissued stacks are LIFO (matching the seed engine's `Vec`
    /// push/pop), singly linked through `next`.
    fn unissued_push(&mut self, p: u32, ci: u32) {
        self.coins.next[ci as usize] = self.peers.unissued_head[p as usize];
        self.coins.prev[ci as usize] = NONE;
        self.peers.unissued_head[p as usize] = ci;
    }

    fn unissued_pop(&mut self, p: u32) -> Option<u32> {
        let ci = self.peers.unissued_head[p as usize];
        if ci == NONE {
            return None;
        }
        self.peers.unissued_head[p as usize] = self.coins.next[ci as usize];
        self.coins.next[ci as usize] = NONE;
        Some(ci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    fn small(policy: Policy, sync: SyncStrategy) -> RunResult {
        run(&SimConfig::small_test(policy, sync, 99))
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small(Policy::I, SyncStrategy::Proactive);
        let b = small(Policy::I, SyncStrategy::Proactive);
        assert_eq!(a, b);
    }

    #[test]
    fn payment_thinning_matches_availability() {
        // α = 0.5: roughly half the candidates should fail.
        let r = small(Policy::I, SyncStrategy::Proactive);
        let total = r.payments + r.failed_candidates;
        let frac = r.payments as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "payment success fraction {frac}");
    }

    #[test]
    fn transfers_dominate_peer_load() {
        // §6.2: "under all configurations, transfers dominate peer load."
        for policy in [Policy::I, Policy::III] {
            let r = small(policy, SyncStrategy::Proactive);
            let transfers = r.counts.get(Op::Transfer);
            for op in [Op::Purchase, Op::Issue, Op::Renewal, Op::DowntimeRenewal] {
                assert!(
                    transfers > r.counts.get(op),
                    "{policy:?}: transfers {transfers} vs {op:?} {}",
                    r.counts.get(op)
                );
            }
        }
    }

    #[test]
    fn policy_iii_never_broker_transfers_and_policy_i_never_deposits() {
        let r1 = small(Policy::I, SyncStrategy::Proactive);
        assert_eq!(r1.counts.get(Op::Deposit), 0, "policy I never deposits");
        assert!(r1.counts.get(Op::DowntimeTransfer) > 0, "policy I uses broker transfers");

        let r3 = small(Policy::III, SyncStrategy::Proactive);
        assert_eq!(r3.counts.get(Op::DowntimeTransfer), 0, "policy III avoids broker transfers");
        assert!(r3.counts.get(Op::Deposit) > 0, "policy III deposits offline coins");
    }

    #[test]
    fn sync_strategy_controls_sync_and_check_ops() {
        let pro = small(Policy::I, SyncStrategy::Proactive);
        assert!(pro.counts.get(Op::Sync) > 0);
        assert_eq!(pro.counts.get(Op::Check), 0);

        let lazy = small(Policy::I, SyncStrategy::Lazy);
        assert_eq!(lazy.counts.get(Op::Sync), 0);
        assert!(lazy.counts.get(Op::Check) > 0);
        assert!(lazy.counts.get(Op::LazySync) <= lazy.counts.get(Op::Check));
    }

    #[test]
    fn lazy_sync_reduces_broker_load() {
        let pro = small(Policy::I, SyncStrategy::Proactive);
        let lazy = small(Policy::I, SyncStrategy::Lazy);
        let w = MicroWeights::TABLE3;
        assert!(
            lazy.broker_cpu(w) < pro.broker_cpu(w),
            "lazy {} < proactive {}",
            lazy.broker_cpu(w),
            pro.broker_cpu(w)
        );
    }

    #[test]
    fn majority_of_load_on_peers() {
        // "the majority of the load is supported by the peers" (§6.2).
        let r = small(Policy::I, SyncStrategy::Proactive);
        let w = MicroWeights::TABLE3;
        assert!(r.broker_cpu_share(w) < 0.5, "broker share {}", r.broker_cpu_share(w));
        assert!(r.broker_comm_share() < 0.5);
    }

    #[test]
    fn one_sync_per_join_event() {
        // Syncs should be close to the expected number of join events:
        // with µ = ν = 2h over 2 days, each peer toggles ~24 times, half
        // of them joins.
        let r = small(Policy::I, SyncStrategy::Proactive);
        let syncs = r.counts.get(Op::Sync) as f64;
        let expect = 50.0 * 12.0; // 50 peers × ~12 joins
        assert!((syncs - expect).abs() / expect < 0.3, "syncs {syncs} vs ~{expect}");
    }

    #[test]
    fn coins_returned_to_their_owner_become_reissuable() {
        // When a transfer's payee happens to be the coin's owner, the coin
        // becomes self-held again and can be spent by *issue* — so issues
        // outnumber purchases over a long enough run.
        let mut cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 21);
        cfg.horizon = whopay_sim::SimTime::from_days(6);
        let r = run(&cfg);
        assert!(
            r.counts.get(Op::Issue) > r.counts.get(Op::Purchase),
            "issues {} should exceed purchases {}",
            r.counts.get(Op::Issue),
            r.counts.get(Op::Purchase)
        );
    }

    #[test]
    fn deposited_coin_slots_are_recycled() {
        // Policy III deposits coins; the arena must reuse their slots
        // rather than growing without bound.
        let mut cfg = SimConfig::small_test(Policy::III, SyncStrategy::Proactive, 5);
        cfg.horizon = whopay_sim::SimTime::from_days(4);
        let obs = Obs::disabled();
        let sim = {
            let mut sim = LoadSim::new(&cfg, &obs, None);
            while let Some((_t, ev)) = sim.queue.pop_until(sim.cfg.horizon) {
                sim.events += 1;
                match ev {
                    Event::Advance(p) => sim.handle_advance(p),
                    Event::Payment(p) => sim.handle_payment(p),
                    Event::RenewalDue { coin, epoch } => sim.handle_renewal_due(coin, epoch),
                }
            }
            sim
        };
        let deposits = sim.counts.get(Op::Deposit);
        let purchases = sim.counts.get(Op::Purchase);
        assert!(deposits > 0, "policy III must deposit");
        // Live coins = purchases - deposits; the arena may only be larger
        // by however many slots sat on the free list when it last grew.
        let live = (purchases - deposits) as usize;
        assert!(
            sim.coins.owner.len() < purchases as usize && sim.coins.owner.len() >= live,
            "arena holds {} slots for {} purchases / {} live coins",
            sim.coins.owner.len(),
            purchases,
            live
        );
    }

    #[test]
    fn obs_events_reconcile_with_cost_model() {
        use std::sync::Arc;
        use whopay_obs::{Metrics, Obs, Role};

        let cfg = SimConfig::small_test(Policy::I, SyncStrategy::Lazy, 99);
        let metrics = Arc::new(Metrics::new());
        let r = run_with_obs(&cfg, &Obs::with_metrics(metrics.clone()));
        let report = metrics.report();

        // One Role::Peer event per counted operation, per kind.
        for (op, n) in r.counts.iter() {
            let row = metrics.op_snapshot(Role::Peer, op.obs_kind());
            assert_eq!(row.count, n, "{op:?} event count");
        }
        // Role-level message totals are exactly the cost-model loads.
        assert_eq!(report.role_messages(Role::Broker) as f64, r.broker_comm());
        assert_eq!(report.role_messages(Role::Peer) as f64, r.peers_comm_total());
        // And an instrumented run leaves the outcome untouched.
        let plain = run(&cfg);
        assert_eq!(plain, r);
    }

    #[test]
    fn renewals_happen_for_long_held_coins() {
        // With a 2-day horizon and 3-day renewal period there are few
        // renewals; stretch the horizon to see them.
        let mut cfg = SimConfig::small_test(Policy::III, SyncStrategy::Proactive, 7);
        cfg.horizon = whopay_sim::SimTime::from_days(8);
        let r = run(&cfg);
        assert!(
            r.counts.get(Op::Renewal) + r.counts.get(Op::DowntimeRenewal) > 0,
            "coins held past 3 days must renew"
        );
    }

    #[test]
    fn lifecycle_connecting_states_thin_payments() {
        // Discovery + pending time comes out of availability, and
        // connecting peers can neither pay nor be paid.
        let mut cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 42);
        cfg.discovery_mean = whopay_sim::SimTime::from_mins(60);
        cfg.pending_mean = whopay_sim::SimTime::from_mins(60);
        cfg.payer_must_be_online = true;
        let r = run(&cfg);
        let alpha = cfg.availability();
        assert!((alpha - 1.0 / 3.0).abs() < 1e-12);
        // Success fraction ≈ α² (payer and payee must both be connected).
        let frac = r.payments as f64 / (r.payments + r.failed_candidates) as f64;
        assert!((frac - alpha * alpha).abs() < 0.05, "success {frac} vs α² {}", alpha * alpha);
    }
}

#[cfg(test)]
mod centralized_tests {
    use super::*;
    use crate::policy::Policy;

    #[test]
    fn centralized_baseline_routes_everything_through_the_broker() {
        let mut cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 31);
        cfg.centralized = true;
        let r = run(&cfg);
        assert_eq!(r.counts.get(Op::Transfer), 0, "no owner-served transfers");
        assert_eq!(r.counts.get(Op::Renewal), 0, "no owner-served renewals");
        assert_eq!(r.counts.get(Op::Sync), 0, "owners keep no state to sync");
        assert!(r.counts.get(Op::DowntimeTransfer) > 0, "central transfers happen");

        // The broker's share of total load is dramatically higher than in
        // the peer-to-peer system — the paper's scalability argument.
        let w = MicroWeights::TABLE3;
        let mut p2p_cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 31);
        p2p_cfg.payer_must_be_online = cfg.payer_must_be_online;
        let p2p = run(&p2p_cfg);
        assert!(
            r.broker_cpu_share(w) > 3.0 * p2p.broker_cpu_share(w),
            "centralized share {} vs whopay {}",
            r.broker_cpu_share(w),
            p2p.broker_cpu_share(w)
        );
    }
}

//! The coarse-grained operations the load simulator counts.
//!
//! "The WhoPay system is built from the following coarse-grained
//! operations: coin purchases, issues, transfers, deposits, renewals,
//! downtime transfers, downtime renewals, synchronizations, checks, and
//! lazy synchronizations." (§6.2)

/// One coarse-grained protocol operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A peer buys a coin from the broker.
    Purchase,
    /// An owner issues a self-held coin to a payee.
    Issue,
    /// A holder transfers a coin via its (online) owner.
    Transfer,
    /// A holder redeems a coin at the broker.
    Deposit,
    /// A holder renews a coin via its (online) owner.
    Renewal,
    /// A holder transfers a coin via the broker (owner offline).
    DowntimeTransfer,
    /// A holder renews a coin via the broker (owner offline).
    DowntimeRenewal,
    /// Proactive synchronization on rejoin.
    Sync,
    /// Lazy-sync read of the public binding list by an owner.
    Check,
    /// Lazy-sync local state adoption after a check found fresher state.
    LazySync,
}

impl Op {
    /// All operations, in reporting order.
    pub const ALL: [Op; 10] = [
        Op::Purchase,
        Op::Issue,
        Op::Transfer,
        Op::Deposit,
        Op::Renewal,
        Op::DowntimeTransfer,
        Op::DowntimeRenewal,
        Op::Sync,
        Op::Check,
        Op::LazySync,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Op::Purchase => "purchases",
            Op::Issue => "issues",
            Op::Transfer => "transfers",
            Op::Deposit => "deposits",
            Op::Renewal => "renewals",
            Op::DowntimeTransfer => "downtime transfers",
            Op::DowntimeRenewal => "downtime renewals",
            Op::Sync => "syncs",
            Op::Check => "checks",
            Op::LazySync => "lazy syncs",
        }
    }

    /// The observability event kind for this operation (the first ten
    /// [`whopay_obs::OpKind`] variants are exactly the §6.2 operations).
    pub fn obs_kind(self) -> whopay_obs::OpKind {
        use whopay_obs::OpKind;
        match self {
            Op::Purchase => OpKind::Purchase,
            Op::Issue => OpKind::Issue,
            Op::Transfer => OpKind::Transfer,
            Op::Deposit => OpKind::Deposit,
            Op::Renewal => OpKind::Renewal,
            Op::DowntimeTransfer => OpKind::DowntimeTransfer,
            Op::DowntimeRenewal => OpKind::DowntimeRenewal,
            Op::Sync => OpKind::Sync,
            Op::Check => OpKind::Check,
            Op::LazySync => OpKind::LazySync,
        }
    }

    fn index(self) -> usize {
        match self {
            Op::Purchase => 0,
            Op::Issue => 1,
            Op::Transfer => 2,
            Op::Deposit => 3,
            Op::Renewal => 4,
            Op::DowntimeTransfer => 5,
            Op::DowntimeRenewal => 6,
            Op::Sync => 7,
            Op::Check => 8,
            Op::LazySync => 9,
        }
    }
}

/// A vector of operation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    counts: [u64; 10],
}

impl OpCounts {
    /// All-zero counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments one operation.
    pub fn bump(&mut self, op: Op) {
        self.counts[op.index()] += 1;
    }

    /// Adds `n` occurrences of one operation (bulk merge from a
    /// partition accumulator).
    pub fn add(&mut self, op: Op, n: u64) {
        self.counts[op.index()] += n;
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &OpCounts) {
        for (slot, v) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += v;
        }
    }

    /// Reads one count.
    pub fn get(&self, op: Op) -> u64 {
        self.counts[op.index()]
    }

    /// Total operations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(op, count)` in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (Op, u64)> + '_ {
        Op::ALL.iter().map(move |&op| (op, self.get(op)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut c = OpCounts::new();
        c.bump(Op::Transfer);
        c.bump(Op::Transfer);
        c.bump(Op::Sync);
        assert_eq!(c.get(Op::Transfer), 2);
        assert_eq!(c.get(Op::Sync), 1);
        assert_eq!(c.get(Op::Deposit), 0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn add_and_merge() {
        let mut a = OpCounts::new();
        a.add(Op::Purchase, 5);
        let mut b = OpCounts::new();
        b.add(Op::Purchase, 2);
        b.bump(Op::Check);
        a.merge(&b);
        assert_eq!(a.get(Op::Purchase), 7);
        assert_eq!(a.get(Op::Check), 1);
        assert_eq!(a.total(), 8);
    }

    #[test]
    fn iter_visits_all_ops_once() {
        let c = OpCounts::new();
        let ops: Vec<Op> = c.iter().map(|(op, _)| op).collect();
        assert_eq!(ops.len(), 10);
        assert_eq!(ops[0], Op::Purchase);
        assert_eq!(ops[9], Op::LazySync);
    }
}

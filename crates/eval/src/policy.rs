//! Spending policies (§6.1) and synchronization strategies.

/// A payment method the policy engine can choose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaymentMethod {
    /// Transfer a held coin whose owner is online, via the owner.
    TransferOnline,
    /// Transfer a held coin whose owner is offline, via the broker.
    TransferOffline,
    /// Issue a self-held owned coin.
    IssueExisting,
    /// Purchase a new coin from the broker and issue it.
    PurchaseAndIssue,
    /// Deposit a held offline coin, then purchase and issue a new one
    /// (policy III's conversion of offline coins into fresh owned coins).
    DepositThenPurchaseAndIssue,
}

/// The spending policies of §6.1.
///
/// Policies I ("user-centric") and III ("broker-centric") are specified in
/// the paper. Policy II is only described as "the middle ground" with no
/// preference order given (and its results were omitted as "less
/// interesting"), so we define the two missing quadrants as II.a and II.b.
///
/// Policies I and III differ along two axes: *when* to deal with offline
/// coins (before or after issuing one's own) and *how* (broker transfer
/// vs. deposit-and-repurchase). The four quadrants:
///
/// | | broker transfer | deposit + repurchase |
/// |---|---|---|
/// | offline coins first | **I** | **II.b** |
/// | own coins first | **II.a** | **III** |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// User-centric: get rid of received coins as fast as possible.
    /// Order: transfer online → transfer offline via broker → issue
    /// existing → purchase and issue.
    I,
    /// Middle ground, variant a: transfer online → issue existing →
    /// transfer offline via broker → purchase and issue.
    IIa,
    /// Middle ground, variant b: transfer online → deposit an offline
    /// coin and purchase+issue (if one is held) → issue existing →
    /// purchase and issue.
    IIb,
    /// Broker-centric: avoid the broker; deposit offline coins and buy
    /// fresh ones. Order: transfer online → issue existing →
    /// deposit-then-purchase (if an offline coin is held) → purchase and
    /// issue.
    III,
}

impl Policy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Policy::I => "policy I",
            Policy::IIa => "policy II.a",
            Policy::IIb => "policy II.b",
            Policy::III => "policy III",
        }
    }

    /// Chooses the payment method given what the payer has available.
    ///
    /// `has_online_coin` / `has_offline_coin` describe the wallet;
    /// `has_unissued_coin` describes self-held owned coins. Purchase is
    /// always possible, so a method is always returned.
    pub fn choose(
        self,
        has_online_coin: bool,
        has_offline_coin: bool,
        has_unissued_coin: bool,
    ) -> PaymentMethod {
        use PaymentMethod::*;
        if has_online_coin {
            return TransferOnline;
        }
        match self {
            Policy::I => {
                if has_offline_coin {
                    TransferOffline
                } else if has_unissued_coin {
                    IssueExisting
                } else {
                    PurchaseAndIssue
                }
            }
            Policy::IIa => {
                if has_unissued_coin {
                    IssueExisting
                } else if has_offline_coin {
                    TransferOffline
                } else {
                    PurchaseAndIssue
                }
            }
            Policy::IIb => {
                if has_offline_coin {
                    DepositThenPurchaseAndIssue
                } else if has_unissued_coin {
                    IssueExisting
                } else {
                    PurchaseAndIssue
                }
            }
            Policy::III => {
                if has_unissued_coin {
                    IssueExisting
                } else if has_offline_coin {
                    DepositThenPurchaseAndIssue
                } else {
                    PurchaseAndIssue
                }
            }
        }
    }
}

/// How owners resynchronize after downtime (§5.2 / §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncStrategy {
    /// Synchronize with the broker on every rejoin.
    Proactive,
    /// Check the public binding list only when a request arrives.
    Lazy,
}

impl SyncStrategy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SyncStrategy::Proactive => "proactive sync",
            SyncStrategy::Lazy => "lazy sync",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PaymentMethod::*;

    #[test]
    fn online_transfer_always_first() {
        for p in [Policy::I, Policy::IIa, Policy::IIb, Policy::III] {
            assert_eq!(p.choose(true, true, true), TransferOnline, "{p:?}");
        }
    }

    #[test]
    fn policy_i_prefers_shedding_offline_coins_via_broker() {
        assert_eq!(Policy::I.choose(false, true, true), TransferOffline);
        assert_eq!(Policy::I.choose(false, false, true), IssueExisting);
        assert_eq!(Policy::I.choose(false, false, false), PurchaseAndIssue);
    }

    #[test]
    fn policy_iii_converts_offline_coins_by_deposit() {
        assert_eq!(Policy::III.choose(false, true, true), IssueExisting);
        assert_eq!(Policy::III.choose(false, true, false), DepositThenPurchaseAndIssue);
        assert_eq!(Policy::III.choose(false, false, false), PurchaseAndIssue);
    }

    #[test]
    fn middle_policies_interleave() {
        assert_eq!(Policy::IIa.choose(false, true, true), IssueExisting);
        assert_eq!(Policy::IIa.choose(false, true, false), TransferOffline);
        assert_eq!(Policy::IIb.choose(false, true, true), DepositThenPurchaseAndIssue);
        assert_eq!(Policy::IIb.choose(false, false, true), IssueExisting);
    }

    #[test]
    fn four_policies_are_pairwise_distinct() {
        // The quadrant table: each policy behaves differently on at least
        // one wallet state.
        let policies = [Policy::I, Policy::IIa, Policy::IIb, Policy::III];
        for (i, a) in policies.iter().enumerate() {
            for b in &policies[i + 1..] {
                let mut differs = false;
                for offline in [true, false] {
                    for unissued in [true, false] {
                        if a.choose(false, offline, unissued) != b.choose(false, offline, unissued) {
                            differs = true;
                        }
                    }
                }
                assert!(differs, "{a:?} and {b:?} are indistinguishable");
            }
        }
    }

    #[test]
    fn iii_never_uses_broker_transfer() {
        for online in [false] {
            for offline in [true, false] {
                for unissued in [true, false] {
                    let m = Policy::III.choose(online, offline, unissued);
                    assert_ne!(m, TransferOffline);
                }
            }
        }
    }
}

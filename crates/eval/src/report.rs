//! Figure and table data generators.
//!
//! Each `figNN_*` function reproduces the data series behind one figure of
//! the paper's evaluation; the binaries in `whopay-bench` print them. All
//! sweeps fan their configurations across the shared [`VerifyPool`]
//! (sized by `WHOPAY_VPOOL_THREADS`), with results bit-identical to a
//! serial run at any width.

use std::sync::Arc;

use whopay_core::VerifyPool;
use whopay_obs::{Metrics, MetricsReport, Obs};
use whopay_sim::SimTime;

use crate::config::{setup_a, setup_b, SimConfig};
use crate::cost::MicroWeights;
use crate::loadsim::{run, run_with_obs, RunResult};
use crate::ops::Op;
use crate::policy::{Policy, SyncStrategy};

/// One data series: a label and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// The four configurations Figures 6–11 compare.
pub const FOUR_CONFIGS: [(Policy, SyncStrategy); 4] = [
    (Policy::I, SyncStrategy::Proactive),
    (Policy::I, SyncStrategy::Lazy),
    (Policy::III, SyncStrategy::Proactive),
    (Policy::III, SyncStrategy::Lazy),
];

/// Runs a batch of configurations through the shared verify pool
/// (`WHOPAY_VPOOL_THREADS` controls the width), preserving order.
///
/// Each run seeds its own RNG from `SimConfig::seed`, so the results are
/// bit-identical regardless of thread count — `run_batch` at any width
/// equals mapping [`run`] serially.
pub fn run_batch(cfgs: &[SimConfig]) -> Vec<RunResult> {
    run_batch_on(cfgs, &VerifyPool::from_env())
}

/// [`run_batch`] on an explicit pool (for callers that already sized one).
pub fn run_batch_on(cfgs: &[SimConfig], pool: &VerifyPool) -> Vec<RunResult> {
    pool.map(cfgs, run)
}

/// Runs one configuration with a fresh metrics registry attached and
/// returns the run outcome together with the per-operation metrics
/// report (counts, latency percentiles, and cost-model message totals
/// split broker vs. peer — see [`run_with_obs`] for the emission rules
/// the report reconciles under).
pub fn run_with_metrics(cfg: &SimConfig) -> (RunResult, MetricsReport) {
    let metrics = Arc::new(Metrics::new());
    let result = run_with_obs(cfg, &Obs::with_metrics(metrics.clone()));
    let report = metrics.report();
    (result, report)
}

/// A µ-sweep result: mean session length in hours plus the run.
#[derive(Debug)]
pub struct SweepPoint {
    /// Mean online session length in hours (the x-axis of Figs 2–9).
    pub mu_hours: f64,
    /// The simulation outcome.
    pub result: RunResult,
}

/// Runs Setup A for one (policy, sync) at ν = 2 h (the paper's median
/// downtime configuration — "we will only show the results for the median
/// downtime simulation").
pub fn sweep_setup_a(policy: Policy, sync: SyncStrategy) -> Vec<SweepPoint> {
    sweep_setup_a_nu(policy, sync, SimTime::from_hours(2))
}

/// Setup A with an explicit ν (for the short/long downtime ablations).
pub fn sweep_setup_a_nu(policy: Policy, sync: SyncStrategy, nu: SimTime) -> Vec<SweepPoint> {
    let cfgs = setup_a(policy, sync, nu);
    let results = run_batch(&cfgs);
    cfgs.iter()
        .zip(results)
        .map(|(cfg, result)| SweepPoint { mu_hours: cfg.mu.as_hours_f64(), result })
        .collect()
}

/// Setup B sweep (100–1000 peers) for one configuration.
pub fn sweep_setup_b(policy: Policy, sync: SyncStrategy) -> Vec<RunResult> {
    run_batch(&setup_b(policy, sync))
}

/// Figures 2 and 3: broker operation counts vs µ under policy I.
/// Series: purchases, downtime transfers, downtime renewals, and (under
/// proactive sync) syncs.
pub fn fig_broker_ops(sync: SyncStrategy) -> Vec<Series> {
    let sweep = sweep_setup_a(Policy::I, sync);
    let mut ops = vec![Op::Purchase, Op::DowntimeTransfer, Op::DowntimeRenewal];
    if sync == SyncStrategy::Proactive {
        ops.push(Op::Sync);
    }
    ops.into_iter()
        .map(|op| Series {
            label: op.label().to_string(),
            points: sweep.iter().map(|p| (p.mu_hours, p.result.counts.get(op) as f64)).collect(),
        })
        .collect()
}

/// Figures 4 and 5: average peer operation counts vs µ under policy I.
pub fn fig_peer_ops(sync: SyncStrategy) -> Vec<Series> {
    let sweep = sweep_setup_a(Policy::I, sync);
    let mut ops = vec![
        Op::Purchase,
        Op::Issue,
        Op::Transfer,
        Op::Renewal,
        Op::DowntimeTransfer,
        Op::DowntimeRenewal,
    ];
    match sync {
        SyncStrategy::Proactive => ops.push(Op::Sync),
        SyncStrategy::Lazy => ops.push(Op::Check),
    }
    ops.into_iter()
        .map(|op| Series {
            label: op.label().to_string(),
            points: sweep
                .iter()
                .map(|p| (p.mu_hours, p.result.counts.get(op) as f64 / p.result.n_peers as f64))
                .collect(),
        })
        .collect()
}

/// Figure 6: broker CPU load vs µ for the four configurations.
pub fn fig_broker_cpu(weights: MicroWeights) -> Vec<Series> {
    four_config_sweep(|r| r.broker_cpu(weights))
}

/// Figure 7: broker communication load vs µ for the four configurations.
pub fn fig_broker_comm() -> Vec<Series> {
    four_config_sweep(|r| r.broker_comm())
}

/// Figure 8: broker-to-average-peer CPU load ratio (low-availability
/// region: µ up to 6 h, like the paper's plot).
pub fn fig_cpu_ratio(weights: MicroWeights) -> Vec<Series> {
    truncate_mu(four_config_sweep(|r| r.cpu_ratio(weights)), 6.0)
}

/// Figure 9: broker-to-average-peer communication load ratio.
pub fn fig_comm_ratio() -> Vec<Series> {
    truncate_mu(four_config_sweep(|r| r.comm_ratio()), 6.0)
}

/// Figure 10: broker share of total CPU load vs number of peers.
pub fn fig_cpu_scaling(weights: MicroWeights) -> Vec<Series> {
    four_config_scaling(move |r| r.broker_cpu_share(weights))
}

/// Figure 11: broker share of total communication load vs number of
/// peers.
pub fn fig_comm_scaling() -> Vec<Series> {
    four_config_scaling(|r| r.broker_comm_share())
}

fn four_config_sweep(metric: impl Fn(&RunResult) -> f64 + Copy) -> Vec<Series> {
    FOUR_CONFIGS
        .iter()
        .map(|&(policy, sync)| {
            let sweep = sweep_setup_a(policy, sync);
            Series {
                label: format!("{} + {}", policy.label(), sync.label()),
                points: sweep.iter().map(|p| (p.mu_hours, metric(&p.result))).collect(),
            }
        })
        .collect()
}

fn four_config_scaling(metric: impl Fn(&RunResult) -> f64 + Copy) -> Vec<Series> {
    FOUR_CONFIGS
        .iter()
        .map(|&(policy, sync)| {
            let results = sweep_setup_b(policy, sync);
            Series {
                label: format!("{} + {}", policy.label(), sync.label()),
                points: results.iter().map(|r| (r.n_peers as f64, metric(r))).collect(),
            }
        })
        .collect()
}

fn truncate_mu(mut series: Vec<Series>, max_x: f64) -> Vec<Series> {
    for s in &mut series {
        s.points.retain(|&(x, _)| x <= max_x);
    }
    series
}

/// Renders series as an aligned text table: one row per x, one column per
/// series.
pub fn render_table(x_label: &str, series: &[Series]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    write!(out, "{x_label:>12}").unwrap();
    for s in series {
        write!(out, "  {:>24}", s.label).unwrap();
    }
    out.push('\n');
    let rows = series.first().map_or(0, |s| s.points.len());
    for i in 0..rows {
        let x = series[0].points[i].0;
        write!(out, "{x:>12.2}").unwrap();
        for s in series {
            let y = s.points.get(i).map_or(f64::NAN, |p| p.1);
            if y.abs() >= 1000.0 || (y != 0.0 && y.abs() < 0.01) {
                write!(out, "  {y:>24.3e}").unwrap();
            } else {
                write!(out, "  {y:>24.4}").unwrap();
            }
        }
        out.push('\n');
    }
    out
}

/// Renders series as CSV (`x,label1,label2,…`).
pub fn render_csv(x_label: &str, series: &[Series]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    write!(out, "{x_label}").unwrap();
    for s in series {
        write!(out, ",{}", s.label).unwrap();
    }
    out.push('\n');
    let rows = series.first().map_or(0, |s| s.points.len());
    for i in 0..rows {
        write!(out, "{}", series[0].points[i].0).unwrap();
        for s in series {
            write!(out, ",{}", s.points.get(i).map_or(f64::NAN, |p| p.1)).unwrap();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_shapes_output() {
        let series = vec![
            Series { label: "a".into(), points: vec![(1.0, 2.0), (2.0, 3.0)] },
            Series { label: "b".into(), points: vec![(1.0, 20.0), (2.0, 30.0)] },
        ];
        let table = render_table("x", &series);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains('b'));
        assert!(lines[1].trim_start().starts_with("1.00"));
    }

    #[test]
    fn render_csv_round_trips_numbers() {
        let series = vec![Series { label: "y".into(), points: vec![(0.25, 7.5)] }];
        let csv = render_csv("mu", &series);
        assert_eq!(csv, "mu,y\n0.25,7.5\n");
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_serial() {
        let mut cfgs = setup_a(Policy::I, SyncStrategy::Proactive, SimTime::from_hours(2));
        cfgs.truncate(3);
        for cfg in &mut cfgs {
            cfg.n_peers = 20;
            cfg.horizon = SimTime::from_hours(48);
        }
        let serial: Vec<RunResult> = cfgs.iter().map(run).collect();
        for threads in [1usize, 2, 4] {
            let pool = whopay_core::VerifyPool::new(threads);
            assert_eq!(run_batch_on(&cfgs, &pool), serial, "threads={threads}");
        }
    }

    #[test]
    fn truncate_keeps_low_mu_points() {
        let s = vec![Series { label: "s".into(), points: vec![(1.0, 1.0), (8.0, 2.0)] }];
        let t = truncate_mu(s, 6.0);
        assert_eq!(t[0].points, vec![(1.0, 1.0)]);
    }
}

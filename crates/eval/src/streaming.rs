//! Relay-payment streaming over micropay hash chains (§7 workload).
//!
//! The coin-level simulator ([`crate::loadsim`]) models discrete
//! payments; this module models the *streaming* workload the PayWord
//! extension exists for — El Tor-style pay-per-interval relay traffic: a
//! client opens a [`ChainCommitment`](whopay_core::ChainCommitment)
//! against a relay and drips one hash tick per traffic interval until
//! its fee budget (the chain capacity) runs out, while the relay
//! settles at the broker every `settle_every` unsettled units
//! (`RedeemChain`) and immediately on session teardown.
//!
//! The engine reuses the PR 8 arena idioms: struct-of-arrays session
//! and peer arenas addressed by `u32` handles, epoch-guarded tick
//! events over the calendar [`EventQueue`], free-list slot recycling,
//! and a partitioned parallel runner for 10⁵–10⁶-peer populations.
//!
//! # What is modelled
//!
//! * **Sessions** — per-peer Poisson session attempts; an attempt opens
//!   a chain iff the client is connected, idle, and draws a connected
//!   relay (one outgoing stream per client — the rate limit of §7's
//!   "one chain per payer/payee pair").
//! * **Rate limits** — exactly one tick (one unit) per `tick_interval`
//!   while the session lives; a tick is a single SHA-256 verification
//!   on the relay, so ticks dominate event volume the way transfers
//!   dominate coin load.
//! * **Budget exhaustion** — a session closes after `budget` ticks
//!   (the chain is spent to capacity; the commitment's max fee).
//! * **Mid-stream churn** — when the client or the relay leaves the
//!   connected state, every session it anchors aborts; the relay
//!   settles the outstanding balance on the way out, so churn never
//!   strands value (the broker's replay memos make the matching
//!   wire-level retry idempotent — see `tests/chaos.rs`).
//! * **Periodic settlement** — the relay redeems at the broker once the
//!   unsettled balance reaches `settle_every`, mirroring
//!   [`MicropayReceiver::settlement_due`](whopay_core::MicropayReceiver).
//!
//! # Determinism contract
//!
//! [`run_stream`] is a pure function of its [`StreamConfig`] (same seed
//! ⇒ identical [`StreamResult`]); [`run_stream_partitioned`] depends
//! only on the config and the partition count, never the worker-thread
//! count — the same contract (and the same SplitMix64 sub-seeding) as
//! the coin simulator.
//!
//! # Observability
//!
//! With a metrics-carrying [`Obs`], a run maintains the `micropay.*`
//! counters the wire-level host endpoint uses (`micropay.opens`,
//! `micropay.ticks`, `micropay.units`, `micropay.redemptions`) and a
//! `micropay.payments_per_sec_milli` histogram: one sample per
//! redemption, the settled window's payment rate in milli-payments per
//! simulated second (1 tick / 30 s ≈ 33). Counters flush once per
//! (partition) run, so partitioned totals are exact.

use std::sync::Arc;

use whopay_obs::{Counter, Histogram, Obs};
use whopay_sim::dist::Exponential;
use whopay_sim::{sim_rng, EventQueue, LifecycleConfig, LifecycleState, SimTime};

use crate::loadsim::{splitmix64, GOLDEN};

/// Null handle for intrusive links and "no session".
const NONE: u32 = u32::MAX;

/// Configuration of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of peers (every peer is both a potential client and relay).
    pub n_peers: usize,
    /// Mean online session length µ.
    pub mu: SimTime,
    /// Mean offline session length ν.
    pub nu: SimTime,
    /// Mean gap between a peer's streaming-session attempts.
    pub session_mean: SimTime,
    /// Traffic interval: exactly one tick (one unit) per interval while
    /// a session streams — the rate limit.
    pub tick_interval: SimTime,
    /// Chain capacity: the fee budget, in units, of one session.
    pub budget: u64,
    /// The relay redeems once this many units are unsettled.
    pub settle_every: u64,
    /// Simulated horizon.
    pub horizon: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl StreamConfig {
    /// El Tor-flavoured defaults: a tick per 30-second traffic
    /// interval, a 120-unit budget (an hour of streaming to the max
    /// fee), settlement every 32 units, session attempts every 10
    /// minutes, the paper's µ = ν = 2 h churn.
    pub fn relay_defaults(n_peers: usize, seed: u64) -> Self {
        StreamConfig {
            n_peers,
            mu: SimTime::from_hours(2),
            nu: SimTime::from_hours(2),
            session_mean: SimTime::from_mins(10),
            tick_interval: SimTime::from_secs(30),
            budget: 120,
            settle_every: 32,
            horizon: SimTime::from_hours(6),
            seed,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small_test(seed: u64) -> Self {
        let mut cfg = Self::relay_defaults(64, seed);
        cfg.horizon = SimTime::from_hours(4);
        cfg
    }

    /// The peer life-cycle this configuration induces (on/off churn;
    /// streaming sessions ride on top of it).
    pub fn lifecycle(&self) -> LifecycleConfig {
        LifecycleConfig::on_off(self.mu, self.nu)
    }

    /// Long-run connected fraction α = µ/(µ+ν).
    pub fn availability(&self) -> f64 {
        self.lifecycle().availability()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The peer's life-cycle advances to its next state.
    Advance(u32),
    /// A streaming-session attempt by the peer.
    SessionStart(u32),
    /// The session's next tick (stale when the epoch mismatches).
    Tick { session: u32, epoch: u32 },
}

/// Peer state, struct-of-arrays.
#[derive(Debug, Default)]
struct PeerArena {
    state: Vec<LifecycleState>,
    /// The peer's outgoing session, or [`NONE`] (one stream per client).
    out_session: Vec<u32>,
    /// Head of the list of sessions this peer relays.
    relay_head: Vec<u32>,
}

impl PeerArena {
    fn with_capacity(n: usize) -> Self {
        PeerArena {
            state: Vec::with_capacity(n),
            out_session: Vec::with_capacity(n),
            relay_head: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, state: LifecycleState) {
        self.state.push(state);
        self.out_session.push(NONE);
        self.relay_head.push(NONE);
    }

    fn connected(&self, p: u32) -> bool {
        self.state[p as usize].is_connected()
    }
}

/// Session state, struct-of-arrays. `relay_next`/`relay_prev` thread
/// the session through its relay's list (or the free list once closed —
/// membership is exclusive, so one link pair serves both).
#[derive(Debug, Default)]
struct SessionArena {
    client: Vec<u32>,
    relay: Vec<u32>,
    /// Units ticked so far (≤ budget).
    paid: Vec<u64>,
    /// Units already redeemed at the broker.
    settled: Vec<u64>,
    /// Simulated time of the last settlement (or the open).
    settle_mark: Vec<SimTime>,
    /// Tick-scheduling epoch; bumped on close so in-flight tick events
    /// for a dead (or recycled) session drop out.
    epoch: Vec<u32>,
    relay_next: Vec<u32>,
    relay_prev: Vec<u32>,
    free_head: u32,
}

impl SessionArena {
    fn new() -> Self {
        SessionArena { free_head: NONE, ..Default::default() }
    }

    /// Allocates a session slot, recycling a closed one if available
    /// (its epoch was bumped at close, so stale ticks stay dead).
    fn alloc(&mut self, client: u32, relay: u32, now: SimTime) -> u32 {
        if self.free_head != NONE {
            let s = self.free_head;
            self.free_head = self.relay_next[s as usize];
            self.client[s as usize] = client;
            self.relay[s as usize] = relay;
            self.paid[s as usize] = 0;
            self.settled[s as usize] = 0;
            self.settle_mark[s as usize] = now;
            self.relay_next[s as usize] = NONE;
            self.relay_prev[s as usize] = NONE;
            s
        } else {
            let s = u32::try_from(self.client.len()).expect("more than u32::MAX sessions");
            self.client.push(client);
            self.relay.push(relay);
            self.paid.push(0);
            self.settled.push(0);
            self.settle_mark.push(now);
            self.epoch.push(0);
            self.relay_next.push(NONE);
            self.relay_prev.push(NONE);
            s
        }
    }

    /// Returns a closed session's slot to the free list.
    fn free(&mut self, s: u32) {
        self.client[s as usize] = NONE;
        self.relay_prev[s as usize] = NONE;
        self.relay_next[s as usize] = self.free_head;
        self.free_head = s;
    }
}

/// The outcome of one streaming run (or a deterministic merge of
/// partitioned sub-runs). Every tick moves exactly one unit, so
/// `ticks == settled_units + unsettled_units` — value conservation —
/// holds for every run and every merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamResult {
    /// Number of peers simulated.
    pub n_peers: usize,
    /// Chains opened (`MicropayOpen` ops).
    pub sessions_opened: u64,
    /// Sessions that spent their whole budget.
    pub sessions_exhausted: u64,
    /// Sessions torn down by client or relay churn.
    pub sessions_aborted: u64,
    /// Session attempts skipped: client offline or already streaming.
    pub attempts_blocked: u64,
    /// Session attempts that drew an offline relay.
    pub attempts_failed: u64,
    /// Hash ticks delivered (`MicropayTick` ops; one unit each).
    pub ticks: u64,
    /// Broker redemptions (`RedeemChain` ops).
    pub redemptions: u64,
    /// Units credited by those redemptions.
    pub settled_units: u64,
    /// Units still outstanding on live sessions at the horizon.
    pub unsettled_units: u64,
    /// Discrete events processed (queue pops) — the unit of the
    /// throughput benchmark (`bench_micropay_json`).
    pub events: u64,
}

impl StreamResult {
    /// Units moved per redemption: the aggregation factor the PayWord
    /// extension buys (one broker op per this many payments).
    pub fn units_per_redemption(&self) -> f64 {
        self.settled_units as f64 / self.redemptions.max(1) as f64
    }

    /// Merges partitioned sub-results in partition order. A
    /// single-element merge is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn merged(parts: &[StreamResult]) -> StreamResult {
        assert!(!parts.is_empty(), "cannot merge zero partitions");
        let mut out = StreamResult {
            n_peers: 0,
            sessions_opened: 0,
            sessions_exhausted: 0,
            sessions_aborted: 0,
            attempts_blocked: 0,
            attempts_failed: 0,
            ticks: 0,
            redemptions: 0,
            settled_units: 0,
            unsettled_units: 0,
            events: 0,
        };
        for part in parts {
            out.n_peers += part.n_peers;
            out.sessions_opened += part.sessions_opened;
            out.sessions_exhausted += part.sessions_exhausted;
            out.sessions_aborted += part.sessions_aborted;
            out.attempts_blocked += part.attempts_blocked;
            out.attempts_failed += part.attempts_failed;
            out.ticks += part.ticks;
            out.redemptions += part.redemptions;
            out.settled_units += part.settled_units;
            out.unsettled_units += part.unsettled_units;
            out.events += part.events;
        }
        out
    }
}

/// Runs one streaming simulation to completion.
pub fn run_stream(cfg: &StreamConfig) -> StreamResult {
    run_stream_with_obs(cfg, &Obs::disabled())
}

/// [`run_stream`] with an observability context: maintains the
/// `micropay.*` counters and the per-redemption payments/sec histogram
/// when `obs` carries a metrics registry (see the module docs). The
/// result is identical with or without instrumentation.
pub fn run_stream_with_obs(cfg: &StreamConfig, obs: &Obs) -> StreamResult {
    StreamSim::new(cfg, obs).run()
}

/// Splits `cfg` into `partitions` independent sub-configurations, the
/// same way [`crate::loadsim::partition_configs`] splits the coin
/// simulator: the population divides as evenly as possible, each
/// partition gets a SplitMix64-derived seed, and a single partition
/// keeps the original seed so `run_stream_partitioned(cfg, 1)` *is*
/// `run_stream(cfg)`.
pub fn partition_stream_configs(cfg: &StreamConfig, partitions: usize) -> Vec<StreamConfig> {
    assert!(partitions > 0, "need at least one partition");
    let base = cfg.n_peers / partitions;
    let rem = cfg.n_peers % partitions;
    (0..partitions)
        .map(|p| {
            let mut sub = cfg.clone();
            sub.n_peers = base + usize::from(p < rem);
            if partitions > 1 {
                sub.seed = splitmix64(cfg.seed ^ (p as u64 + 1).wrapping_mul(GOLDEN));
            }
            sub
        })
        .collect()
}

/// Runs `cfg` as `partitions` independent sub-simulations (sessions
/// stay within a partition) on up to [`crate::loadsim::sim_threads`]
/// scoped worker threads and merges the results in partition order.
pub fn run_stream_partitioned(cfg: &StreamConfig, partitions: usize) -> StreamResult {
    run_stream_partitioned_threads(cfg, partitions, crate::loadsim::sim_threads(), &Obs::disabled())
}

/// [`run_stream_partitioned`] with an explicit thread budget and
/// observability context. Results are identical for every `threads`
/// value; metric counters flush once per partition, so the aggregated
/// `micropay.*` totals equal the merged result exactly.
pub fn run_stream_partitioned_threads(
    cfg: &StreamConfig,
    partitions: usize,
    threads: usize,
    obs: &Obs,
) -> StreamResult {
    let configs = partition_stream_configs(cfg, partitions);
    let workers = threads.max(1).min(partitions);
    let results: Vec<StreamResult> = if workers == 1 {
        configs.iter().map(|sub| run_stream_with_obs(sub, obs)).collect()
    } else {
        let mut slots: Vec<Option<StreamResult>> = (0..partitions).map(|_| None).collect();
        std::thread::scope(|scope| {
            let configs = &configs;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut p = w;
                        while p < configs.len() {
                            out.push((p, run_stream_with_obs(&configs[p], obs)));
                            p += workers;
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (p, result) in handle.join().expect("stream worker panicked") {
                    slots[p] = Some(result);
                }
            }
        });
        slots.into_iter().map(|s| s.expect("every partition ran")).collect()
    };
    StreamResult::merged(&results)
}

/// The `micropay.*` instruments, resolved once per run so the hot path
/// touches atomics, not the registry's name map.
struct Meters {
    opens: Arc<Counter>,
    ticks: Arc<Counter>,
    units: Arc<Counter>,
    redemptions: Arc<Counter>,
    rate: Arc<Histogram>,
}

struct StreamSim<'a> {
    cfg: &'a StreamConfig,
    lifecycle: LifecycleConfig,
    rng: rand::rngs::StdRng,
    queue: EventQueue<Event>,
    session_dist: Exponential,
    peers: PeerArena,
    sessions: SessionArena,
    meters: Option<Meters>,
    result: StreamResult,
}

impl<'a> StreamSim<'a> {
    fn new(cfg: &'a StreamConfig, obs: &Obs) -> Self {
        assert!(cfg.budget > 0, "a zero-budget session could never tick");
        assert!(cfg.settle_every > 0, "settlement threshold must be positive");
        let lifecycle = cfg.lifecycle();
        let mut rng = sim_rng(cfg.seed);
        let mut queue = EventQueue::new();
        let session_dist = Exponential::from_mean(cfg.session_mean);
        let mut peers = PeerArena::with_capacity(cfg.n_peers);
        for i in 0..cfg.n_peers {
            let (state, first) = lifecycle.sample_start(&mut rng);
            queue.schedule(SimTime::ZERO + first, Event::Advance(i as u32));
            queue.schedule(
                SimTime::ZERO + session_dist.sample_time(&mut rng),
                Event::SessionStart(i as u32),
            );
            peers.push(state);
        }
        let meters = obs.metrics().map(|m| Meters {
            opens: m.counter("micropay.opens"),
            ticks: m.counter("micropay.ticks"),
            units: m.counter("micropay.units"),
            redemptions: m.counter("micropay.redemptions"),
            rate: m.histogram("micropay.payments_per_sec_milli"),
        });
        StreamSim {
            cfg,
            lifecycle,
            rng,
            queue,
            session_dist,
            peers,
            sessions: SessionArena::new(),
            meters,
            result: StreamResult {
                n_peers: cfg.n_peers,
                sessions_opened: 0,
                sessions_exhausted: 0,
                sessions_aborted: 0,
                attempts_blocked: 0,
                attempts_failed: 0,
                ticks: 0,
                redemptions: 0,
                settled_units: 0,
                unsettled_units: 0,
                events: 0,
            },
        }
    }

    fn run(mut self) -> StreamResult {
        while let Some((_t, ev)) = self.queue.pop_until(self.cfg.horizon) {
            self.result.events += 1;
            match ev {
                Event::Advance(p) => self.handle_advance(p),
                Event::SessionStart(p) => self.handle_session_start(p),
                Event::Tick { session, epoch } => self.handle_tick(session, epoch),
            }
        }
        // Sessions alive at the horizon hold their outstanding balance;
        // with the final settlements they would conserve value exactly.
        for s in 0..self.sessions.client.len() {
            if self.sessions.client[s] != NONE {
                self.result.unsettled_units += self.sessions.paid[s] - self.sessions.settled[s];
            }
        }
        if let Some(m) = &self.meters {
            m.opens.add(self.result.sessions_opened);
            m.ticks.add(self.result.ticks);
            m.units.add(self.result.ticks);
            m.redemptions.add(self.result.redemptions);
        }
        self.result
    }

    fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Life-cycle advance. Leaving the connected state aborts every
    /// session the peer anchors, as client or relay: the counterpart is
    /// gone mid-stream, the relay settles what it holds, and value
    /// leaves with the books balanced.
    fn handle_advance(&mut self, p: u32) {
        let was_connected = self.peers.connected(p);
        let next = self.lifecycle.next_state(self.peers.state[p as usize]);
        debug_assert!(self.peers.state[p as usize].can_transition(next));
        self.peers.state[p as usize] = next;
        let dwell = self.lifecycle.sample_dwell(next, &mut self.rng);
        self.queue.schedule_in(dwell, Event::Advance(p));
        if was_connected && !next.is_connected() {
            let out = self.peers.out_session[p as usize];
            if out != NONE {
                self.abort_session(out);
            }
            let mut s = self.peers.relay_head[p as usize];
            while s != NONE {
                let next_s = self.sessions.relay_next[s as usize];
                self.abort_session(s);
                s = next_s;
            }
        }
    }

    /// A session attempt: open a chain iff the client is connected and
    /// idle and the drawn relay is connected.
    fn handle_session_start(&mut self, client: u32) {
        let gap = self.session_dist.sample_time(&mut self.rng);
        self.queue.schedule_in(gap, Event::SessionStart(client));

        if !self.peers.connected(client) || self.peers.out_session[client as usize] != NONE {
            self.result.attempts_blocked += 1;
            return;
        }
        let relay = self.random_other_peer(client);
        if !self.peers.connected(relay) {
            self.result.attempts_failed += 1;
            return;
        }
        let now = self.now();
        let s = self.sessions.alloc(client, relay, now);
        self.peers.out_session[client as usize] = s;
        self.relay_push(relay, s);
        self.result.sessions_opened += 1;
        let epoch = self.sessions.epoch[s as usize];
        self.queue.schedule_in(self.cfg.tick_interval, Event::Tick { session: s, epoch });
    }

    /// One traffic interval elapsed: one unit flows as one hash tick.
    fn handle_tick(&mut self, s: u32, epoch: u32) {
        if self.sessions.epoch[s as usize] != epoch {
            return; // session closed (or slot recycled) meanwhile
        }
        self.sessions.paid[s as usize] += 1;
        self.result.ticks += 1;
        let paid = self.sessions.paid[s as usize];
        if paid - self.sessions.settled[s as usize] >= self.cfg.settle_every {
            self.settle(s);
        }
        if paid == self.cfg.budget {
            // Budget exhausted: the chain is spent to capacity.
            self.result.sessions_exhausted += 1;
            self.settle(s);
            self.close_session(s);
        } else {
            self.queue.schedule_in(self.cfg.tick_interval, Event::Tick { session: s, epoch });
        }
    }

    /// The relay redeems the session's outstanding balance at the
    /// broker (one `RedeemChain` for the whole window — the aggregation
    /// that keeps the broker off the per-tick path).
    fn settle(&mut self, s: u32) {
        let outstanding = self.sessions.paid[s as usize] - self.sessions.settled[s as usize];
        if outstanding == 0 {
            return;
        }
        let now = self.now();
        self.result.redemptions += 1;
        self.result.settled_units += outstanding;
        if let Some(m) = &self.meters {
            let window_ms = (now - self.sessions.settle_mark[s as usize]).as_millis().max(1);
            // milli-payments per simulated second of the settled window.
            m.rate.record_nanos(outstanding * 1_000_000 / window_ms);
        }
        self.sessions.settled[s as usize] = self.sessions.paid[s as usize];
        self.sessions.settle_mark[s as usize] = now;
    }

    /// Mid-stream churn teardown: settle what the relay holds, then
    /// close.
    fn abort_session(&mut self, s: u32) {
        self.result.sessions_aborted += 1;
        self.settle(s);
        self.close_session(s);
    }

    fn close_session(&mut self, s: u32) {
        debug_assert_eq!(self.sessions.paid[s as usize], self.sessions.settled[s as usize]);
        self.sessions.epoch[s as usize] = self.sessions.epoch[s as usize].wrapping_add(1);
        let client = self.sessions.client[s as usize];
        self.peers.out_session[client as usize] = NONE;
        self.relay_unlink(self.sessions.relay[s as usize], s);
        self.sessions.free(s);
    }

    fn random_other_peer(&mut self, not: u32) -> u32 {
        loop {
            let p = rand::RngExt::random_range(&mut self.rng, 0..self.cfg.n_peers) as u32;
            if p != not {
                return p;
            }
        }
    }

    // ---- relay-list plumbing ----------------------------------------

    fn relay_push(&mut self, relay: u32, s: u32) {
        let head = self.peers.relay_head[relay as usize];
        self.sessions.relay_prev[s as usize] = NONE;
        self.sessions.relay_next[s as usize] = head;
        if head != NONE {
            self.sessions.relay_prev[head as usize] = s;
        }
        self.peers.relay_head[relay as usize] = s;
    }

    fn relay_unlink(&mut self, relay: u32, s: u32) {
        let prev = self.sessions.relay_prev[s as usize];
        let next = self.sessions.relay_next[s as usize];
        if prev == NONE {
            self.peers.relay_head[relay as usize] = next;
        } else {
            self.sessions.relay_next[prev as usize] = next;
        }
        if next != NONE {
            self.sessions.relay_prev[next as usize] = prev;
        }
        self.sessions.relay_prev[s as usize] = NONE;
        self.sessions.relay_next[s as usize] = NONE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = StreamConfig::small_test(7);
        assert_eq!(run_stream(&cfg), run_stream(&cfg));
    }

    #[test]
    fn value_is_conserved() {
        // Every tick moves one unit, and every unit is either settled at
        // the broker or still outstanding on a live session.
        for seed in [1, 2, 3] {
            let r = run_stream(&StreamConfig::small_test(seed));
            assert!(r.ticks > 0, "seed {seed}: no traffic");
            assert_eq!(r.ticks, r.settled_units + r.unsettled_units, "seed {seed}");
        }
    }

    #[test]
    fn churn_aborts_and_budget_exhausts_sessions() {
        let r = run_stream(&StreamConfig::small_test(11));
        assert!(r.sessions_aborted > 0, "µ=2h churn must cut some streams");
        assert!(r.sessions_exhausted > 0, "hour-long budgets must run dry in 4h");
        assert!(r.attempts_failed > 0, "α=0.5 must draw some offline relays");
        assert!(r.attempts_blocked > 0, "busy or offline clients must skip attempts");
    }

    #[test]
    fn settlement_aggregates_many_ticks_per_broker_op() {
        // The whole point of the PayWord path: broker ops ≪ payments.
        let r = run_stream(&StreamConfig::small_test(13));
        assert!(r.redemptions < r.ticks / 8, "{} redemptions for {} ticks", r.redemptions, r.ticks);
        // No redemption window exceeds the threshold by more than the
        // final partial windows allow on average.
        assert!(r.units_per_redemption() <= 32.0 + 1.0);
        assert!(r.units_per_redemption() > 4.0, "windows should batch meaningfully");
    }

    #[test]
    fn partitioned_is_thread_count_invariant_and_merges_exactly() {
        let cfg = StreamConfig::small_test(17);
        let serial = run_stream_partitioned_threads(&cfg, 4, 1, &Obs::disabled());
        let parallel = run_stream_partitioned_threads(&cfg, 4, 4, &Obs::disabled());
        assert_eq!(serial, parallel);
        assert_eq!(serial.n_peers, cfg.n_peers);
        assert_eq!(serial.ticks, serial.settled_units + serial.unsettled_units);
        // One partition is the plain run.
        assert_eq!(run_stream_partitioned_threads(&cfg, 1, 1, &Obs::disabled()), run_stream(&cfg));
    }

    #[test]
    fn obs_counters_reconcile_with_the_result() {
        use whopay_obs::Metrics;

        let cfg = StreamConfig::small_test(19);
        let metrics = Arc::new(Metrics::new());
        let r = run_stream_with_obs(&cfg, &Obs::with_metrics(metrics.clone()));
        let report = metrics.report();
        assert_eq!(report.counters.get("micropay.opens").copied(), Some(r.sessions_opened));
        assert_eq!(report.counters.get("micropay.ticks").copied(), Some(r.ticks));
        assert_eq!(report.counters.get("micropay.units").copied(), Some(r.ticks));
        assert_eq!(report.counters.get("micropay.redemptions").copied(), Some(r.redemptions));
        let hist = report.histograms.get("micropay.payments_per_sec_milli").expect("histogram");
        assert_eq!(hist.count, r.redemptions, "one rate sample per redemption");
        // 1 tick / 30 s ≈ 33 milli-payments/sec; the mean sample should
        // sit near the rate limit.
        let mean = hist.mean_nanos;
        assert!((20.0..=45.0).contains(&mean), "mean rate {mean} milli-payments/sec");
        // Instrumentation never changes the outcome.
        assert_eq!(r, run_stream(&cfg));
    }

    #[test]
    fn session_slots_are_recycled() {
        let cfg = StreamConfig::small_test(23);
        let obs = Obs::disabled();
        let sim = {
            let mut sim = StreamSim::new(&cfg, &obs);
            while let Some((_t, ev)) = sim.queue.pop_until(sim.cfg.horizon) {
                sim.result.events += 1;
                match ev {
                    Event::Advance(p) => sim.handle_advance(p),
                    Event::SessionStart(p) => sim.handle_session_start(p),
                    Event::Tick { session, epoch } => sim.handle_tick(session, epoch),
                }
            }
            sim
        };
        let opened = sim.result.sessions_opened;
        let closed = sim.result.sessions_exhausted + sim.result.sessions_aborted;
        assert!(closed > 0, "sessions must close for recycling to matter");
        assert!(
            (sim.sessions.client.len() as u64) < opened,
            "arena holds {} slots for {} opened sessions",
            sim.sessions.client.len(),
            opened
        );
    }
}

//! Differential suite: the arena engine ([`whopay_eval::loadsim`])
//! must produce *equal* [`RunResult`]s to the seed per-peer-object
//! engine ([`whopay_eval::legacy`]) for every configuration the paper
//! sweeps — the two consume the random stream draw-for-draw
//! identically, so any divergence is a bug, not noise.

use whopay_eval::config::SimConfig;
use whopay_eval::policy::{Policy, SyncStrategy};
use whopay_eval::{legacy, loadsim};

#[test]
fn engines_agree_across_policies_and_sync_strategies() {
    for policy in [Policy::I, Policy::IIa, Policy::IIb, Policy::III] {
        for sync in [SyncStrategy::Proactive, SyncStrategy::Lazy] {
            for seed in [7u64, 99, 0x5EED] {
                let cfg = SimConfig::small_test(policy, sync, seed);
                let new = loadsim::run(&cfg);
                let old = legacy::run(&cfg);
                assert_eq!(new, old, "{policy:?}/{sync:?} seed {seed}");
            }
        }
    }
}

#[test]
fn engines_agree_with_payer_gating_and_long_horizons() {
    let mut cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 3);
    cfg.payer_must_be_online = true;
    cfg.horizon = whopay_sim::SimTime::from_days(8); // plenty of renewals
    assert_eq!(loadsim::run(&cfg), legacy::run(&cfg));
}

#[test]
fn engines_agree_in_centralized_mode() {
    let mut cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 31);
    cfg.centralized = true;
    assert_eq!(loadsim::run(&cfg), legacy::run(&cfg));
}

#[test]
fn engines_agree_at_paper_scale() {
    // The paper's own operating point: 1000 peers, shortened horizon to
    // keep the legacy engine's O(coins)-per-join scan test-budget-sized.
    let mut cfg = SimConfig::paper_defaults(Policy::I, SyncStrategy::Proactive);
    cfg.horizon = whopay_sim::SimTime::from_hours(12);
    assert_eq!(loadsim::run(&cfg), legacy::run(&cfg));
}

#[test]
fn legacy_engine_rejects_lifecycle_extension() {
    let mut cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 1);
    cfg.discovery_mean = whopay_sim::SimTime::from_mins(10);
    let err = std::panic::catch_unwind(|| legacy::run(&cfg));
    assert!(err.is_err(), "legacy engine must refuse lifecycle configs");
}

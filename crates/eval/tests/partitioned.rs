//! Determinism contract of the partitioned runner:
//!
//! * one partition *is* the serial run (same seed, same population);
//! * the outcome depends only on `(cfg, partitions)`, never the
//!   worker-thread count — one thread is bit-identical to many;
//! * running each partition's configuration serially through
//!   [`loadsim::run`] and merging in order reproduces the parallel
//!   result exactly.

use whopay_eval::config::SimConfig;
use whopay_eval::policy::{Policy, SyncStrategy};
use whopay_eval::{loadsim, BrokerLoad, RunResult};
use whopay_obs::Obs;

fn cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, seed);
    cfg.n_peers = 200;
    cfg
}

#[test]
fn one_partition_is_the_serial_run() {
    let cfg = cfg(77);
    assert_eq!(loadsim::run_partitioned(&cfg, 1), loadsim::run(&cfg));
}

#[test]
fn thread_count_never_changes_the_outcome() {
    let cfg = cfg(78);
    let obs = Obs::disabled();
    let serial = loadsim::run_partitioned_threads(&cfg, 4, 1, &obs);
    for threads in [2, 4, 8] {
        let parallel = loadsim::run_partitioned_threads(&cfg, 4, threads, &obs);
        assert_eq!(parallel, serial, "threads = {threads}");
    }
}

#[test]
fn parallel_run_equals_serial_per_partition_merge() {
    let cfg = cfg(79);
    let parts: Vec<RunResult> = loadsim::partition_configs(&cfg, 5).iter().map(loadsim::run).collect();
    assert_eq!(RunResult::merged(&parts), loadsim::run_partitioned(&cfg, 5));
}

#[test]
fn partitions_split_the_population_exactly() {
    let cfg = cfg(80); // 200 peers
    let subs = loadsim::partition_configs(&cfg, 7);
    assert_eq!(subs.iter().map(|c| c.n_peers).sum::<usize>(), 200);
    assert!(subs.iter().all(|c| c.n_peers == 200 / 7 || c.n_peers == 200 / 7 + 1));
    // Seeds decorrelate across partitions…
    let mut seeds: Vec<u64> = subs.iter().map(|c| c.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 7, "per-partition seeds must be distinct");
    // …but a single partition keeps the original seed.
    assert_eq!(loadsim::partition_configs(&cfg, 1)[0].seed, cfg.seed);
}

#[test]
fn broker_load_accumulator_matches_merged_counts() {
    let cfg = cfg(81);
    let load = BrokerLoad::new();
    let parts: Vec<RunResult> = loadsim::partition_configs(&cfg, 3)
        .iter()
        .map(|sub| {
            let r = loadsim::run(sub);
            load.record(&r.counts);
            r
        })
        .collect();
    let merged = RunResult::merged(&parts);
    assert_eq!(load.snapshot(), merged.counts);
    assert_eq!(load.broker_comm(), merged.broker_comm());
}

#[test]
fn partitioned_obs_events_carry_partition_tags() {
    use std::sync::Arc;
    use whopay_obs::{MemoryRecorder, Obs, Tracer};

    let cfg = cfg(82);
    let recorder = Arc::new(MemoryRecorder::new());
    let obs = Obs::with_tracer(Tracer::new(recorder.clone()));
    let r = loadsim::run_partitioned_threads(&cfg, 3, 2, &obs);
    let events = recorder.events();
    assert!(!events.is_empty(), "instrumented run must emit");
    assert!(
        events.iter().all(|e| matches!(e.partition, Some(p) if p < 3)),
        "every event is attributed to one of the 3 partitions"
    );
    // Tagged emission leaves the outcome untouched.
    assert_eq!(r, loadsim::run_partitioned(&cfg, 3));
}

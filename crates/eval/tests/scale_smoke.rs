//! Release-only scale smoke: a pinned-seed 100k-peer partitioned run
//! must complete inside the CI budget and land on its pinned aggregate.
//!
//! Ignored by default (a 100k-peer world is far too slow under the
//! debug profile); `scripts/ci.sh` runs it with
//! `cargo test --release -- --ignored`.

use whopay_eval::config::SimConfig;
use whopay_eval::policy::{Policy, SyncStrategy};
use whopay_eval::{loadsim, RunResult};
use whopay_sim::SimTime;

fn smoke_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_defaults(Policy::I, SyncStrategy::Proactive);
    cfg.n_peers = 100_000;
    cfg.horizon = SimTime::from_hours(2);
    cfg.seed = 0x5CA1E;
    cfg
}

#[test]
#[ignore = "release-only scale smoke (run via scripts/ci.sh)"]
fn hundred_thousand_peers_complete_within_budget() {
    let start = std::time::Instant::now();
    let r: RunResult = loadsim::run_partitioned(&smoke_cfg(), 8);
    let elapsed = start.elapsed();

    assert_eq!(r.n_peers, 100_000);
    assert!(r.payments > 0 && r.events > 1_000_000, "events {} payments {}", r.events, r.payments);
    // Success fraction tracks α² = 0.25 (payer and payee gating at 50%).
    let frac = r.payments as f64 / (r.payments + r.failed_candidates) as f64;
    assert!((frac - 0.25).abs() < 0.02, "success fraction {frac}");
    // The CI budget is 30 s; leave headroom for slow hosts.
    assert!(elapsed.as_secs() < 30, "smoke took {elapsed:?}, budget is 30 s");
}

//! Shape tests: the paper's qualitative claims about Figures 2–11,
//! checked on scaled-down sweeps (200 peers, 4 simulated days) so they
//! run in test time. EXPERIMENTS.md records the full-scale numbers.

use whopay_eval::config::SimConfig;
use whopay_eval::{loadsim, MicroWeights, Op, Policy, RunResult, SyncStrategy};
use whopay_sim::SimTime;

/// A scaled-down Setup A sweep at ν = 2 h.
fn mini_sweep(policy: Policy, sync: SyncStrategy) -> Vec<(f64, RunResult)> {
    [15u64, 60, 240, 960, 1920]
        .into_iter()
        .map(|mu_min| {
            let mut cfg = SimConfig::paper_defaults(policy, sync);
            cfg.n_peers = 200;
            cfg.horizon = SimTime::from_days(4);
            cfg.mu = SimTime::from_mins(mu_min);
            let r = loadsim::run(&cfg);
            (mu_min as f64 / 60.0, r)
        })
        .collect()
}

fn series(sweep: &[(f64, RunResult)], op: Op) -> Vec<u64> {
    sweep.iter().map(|(_, r)| r.counts.get(op)).collect()
}

fn strictly_increasing(v: &[u64]) -> bool {
    v.windows(2).all(|w| w[0] < w[1])
}

fn strictly_decreasing(v: &[u64]) -> bool {
    v.windows(2).all(|w| w[0] > w[1])
}

fn rises_then_falls(v: &[u64]) -> bool {
    let peak = v.iter().enumerate().max_by_key(|(_, &x)| x).map(|(i, _)| i).unwrap();
    peak > 0 && peak < v.len() - 1
}

#[test]
fn fig2_shapes_policy_i_proactive() {
    let sweep = mini_sweep(Policy::I, SyncStrategy::Proactive);
    assert!(
        strictly_increasing(&series(&sweep, Op::Purchase)),
        "purchases rise with availability: {:?}",
        series(&sweep, Op::Purchase)
    );
    assert!(
        strictly_decreasing(&series(&sweep, Op::Sync)),
        "syncs fall with availability: {:?}",
        series(&sweep, Op::Sync)
    );
    assert!(
        rises_then_falls(&series(&sweep, Op::DowntimeTransfer)),
        "downtime transfers rise then fall: {:?}",
        series(&sweep, Op::DowntimeTransfer)
    );
    assert!(
        rises_then_falls(&series(&sweep, Op::DowntimeRenewal)),
        "downtime renewals rise then fall: {:?}",
        series(&sweep, Op::DowntimeRenewal)
    );
}

#[test]
fn fig4_transfers_dominate_and_peer_load_rises() {
    let sweep = mini_sweep(Policy::I, SyncStrategy::Proactive);
    let w = MicroWeights::TABLE3;
    let peer_loads: Vec<f64> = sweep.iter().map(|(_, r)| r.peer_cpu_avg(w)).collect();
    assert!(
        peer_loads.windows(2).all(|x| x[0] < x[1]),
        "average peer load rises with availability: {peer_loads:?}"
    );
    for (_, r) in &sweep[1..] {
        let transfers = r.counts.get(Op::Transfer);
        for op in [Op::Purchase, Op::Issue, Op::Renewal, Op::DowntimeTransfer, Op::DowntimeRenewal] {
            assert!(transfers >= r.counts.get(op), "transfers dominate: {op:?}");
        }
    }
}

#[test]
fn fig6_lazy_sync_cuts_broker_load_at_every_point() {
    let pro = mini_sweep(Policy::I, SyncStrategy::Proactive);
    let lazy = mini_sweep(Policy::I, SyncStrategy::Lazy);
    let w = MicroWeights::TABLE3;
    for ((mu, p), (_, l)) in pro.iter().zip(&lazy) {
        assert!(
            l.broker_cpu(w) < p.broker_cpu(w),
            "lazy < proactive at mu={mu}: {} vs {}",
            l.broker_cpu(w),
            p.broker_cpu(w)
        );
    }
}

#[test]
fn fig8_ratio_falls_about_an_order_of_magnitude_per_decade() {
    let sweep = mini_sweep(Policy::I, SyncStrategy::Proactive);
    let w = MicroWeights::TABLE3;
    let first = sweep.first().unwrap().1.cpu_ratio(w);
    let last = sweep.last().unwrap().1.cpu_ratio(w);
    assert!(first > 10.0 * last, "ratio collapses with availability: {first} → {last}");
}

#[test]
fn fig10_broker_share_is_flat_in_system_size() {
    let w = MicroWeights::TABLE3;
    let shares: Vec<f64> = [50usize, 100, 200, 400]
        .into_iter()
        .map(|n| {
            let mut cfg = SimConfig::paper_defaults(Policy::I, SyncStrategy::Proactive);
            cfg.n_peers = n;
            cfg.horizon = SimTime::from_days(4);
            loadsim::run(&cfg).broker_cpu_share(w)
        })
        .collect();
    let (min, max) = shares.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &s| (lo.min(s), hi.max(s)));
    assert!(max - min < 0.02, "share band is narrow: {shares:?}");
    assert!(max < 0.10, "broker handles well under 10%: {shares:?}");
}

//! Deterministic fault injection for the in-memory fabric.
//!
//! A [`FaultInjector`] sits inside [`Network::request_into`] and decides,
//! per attempted delivery, whether to drop, duplicate, corrupt, or delay
//! the exchange, or whether a partition window blocks the link entirely.
//! Decisions are a pure function of `(plan, seed, event id)`: the draws
//! for delivery `k` are derived by keyed hashing of the seed and `k`, not
//! by walking a sequential RNG stream. The schedule for any event is
//! therefore independent of how many decisions were made before it, of
//! payload contents, and of which faults actually trigger — which is what
//! lets the event queue evaluate fates for a batch up front and reach the
//! identical schedule at any `WHOPAY_NET_THREADS` worker count (the
//! `fault_props` suite pins this).
//!
//! Fault semantics against the fabric's accounting invariants:
//!
//! * **Drop** / **Partition** — the request never reaches the target: no
//!   traffic is counted and a failed `NetRequest` event (no traffic) is
//!   emitted, exactly like the existing offline path.
//! * **Timeout** — the delay/reorder model of a synchronous fabric: the
//!   request is delivered and *applied*, both directions are counted,
//!   but the response arrives after the caller gave up — the caller sees
//!   an error and an empty buffer. This is the fault that makes
//!   non-idempotent handlers observable.
//! * **Duplicate** — a retransmission: the handler runs twice with the
//!   same request (four messages counted); the caller sees the second
//!   response. Idempotent handlers return identical responses.
//! * **Corrupt** — a single bit flip, in the request before delivery or
//!   in the response after accounting. Strict decoders surface this as a
//!   malformed-message rejection; flips that land inside signature
//!   material surface as verification failures.
//!
//! [`Network::request_into`]: crate::Network::request_into

use std::collections::HashMap;

use whopay_obs::Metrics;

use crate::network::EndpointId;

/// Per-fault-kind probabilities in `[0, 1]`, applied per delivery.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRates {
    /// Probability the request is silently lost.
    pub drop: f64,
    /// Probability the request is delivered twice.
    pub duplicate: f64,
    /// Probability of a single bit flip (request or response).
    pub corrupt: f64,
    /// Probability the response is delayed past the caller's patience.
    pub timeout: f64,
}

impl FaultRates {
    /// The same probability for every fault kind.
    pub fn uniform(p: f64) -> Self {
        FaultRates { drop: p, duplicate: p, corrupt: p, timeout: p }
    }
}

/// A scheduled partition: the link between `a` and `b` (both directions)
/// is severed for deliveries numbered `from..until` (the delivery counter
/// increments on every [`FaultInjector::decide`] call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One side of the severed link.
    pub a: EndpointId,
    /// The other side.
    pub b: EndpointId,
    /// First delivery index the window covers.
    pub from: u64,
    /// First delivery index past the window.
    pub until: u64,
}

impl PartitionWindow {
    fn blocks(&self, from: EndpointId, to: EndpointId, delivery: u64) -> bool {
        delivery >= self.from
            && delivery < self.until
            && ((self.a == from && self.b == to) || (self.a == to && self.b == from))
    }
}

/// The seed-independent part of a fault schedule: default rates, per-link
/// and per-`wire_kind` overrides, and partition windows.
///
/// Rate resolution is most-specific-wins: a `(from, to)` link override
/// beats a message-kind override beats the default.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    default: FaultRates,
    links: HashMap<(EndpointId, EndpointId), FaultRates>,
    kinds: HashMap<&'static str, FaultRates>,
    partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// A plan with no faults at all.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the default rates applied to every delivery.
    pub fn with_default(mut self, rates: FaultRates) -> Self {
        self.default = rates;
        self
    }

    /// Overrides the rates for one directed link.
    pub fn link(mut self, from: EndpointId, to: EndpointId, rates: FaultRates) -> Self {
        self.links.insert((from, to), rates);
        self
    }

    /// Overrides the rates for one classified message kind (the
    /// [`wire_kind`]-style label the network's classifier returns).
    ///
    /// [`wire_kind`]: crate::Classifier
    pub fn kind(mut self, label: &'static str, rates: FaultRates) -> Self {
        self.kinds.insert(label, rates);
        self
    }

    /// Adds a partition window severing the `a`–`b` link for deliveries
    /// `from..until`.
    pub fn partition(mut self, a: EndpointId, b: EndpointId, from: u64, until: u64) -> Self {
        self.partitions.push(PartitionWindow { a, b, from, until });
        self
    }

    fn rates_for(&self, from: EndpointId, to: EndpointId, kind: Option<&'static str>) -> FaultRates {
        if let Some(rates) = self.links.get(&(from, to)) {
            return *rates;
        }
        if let Some(rates) = kind.and_then(|k| self.kinds.get(k)) {
            return *rates;
        }
        self.default
    }

    fn partitioned(&self, from: EndpointId, to: EndpointId, delivery: u64) -> bool {
        self.partitions.iter().any(|w| w.blocks(from, to, delivery))
    }
}

/// What the injector decided to do to one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Request lost in flight.
    Drop,
    /// Request delivered twice.
    Duplicate,
    /// One bit flipped; `in_request` selects the direction, `bit` the
    /// position (reduced modulo the payload's bit length at apply time).
    Corrupt {
        /// Flip the request (before delivery) or the response (after).
        in_request: bool,
        /// Raw bit-position draw.
        bit: u64,
    },
    /// Response delayed past the caller's patience (delivered + applied).
    Timeout,
    /// A partition window blocked the link.
    Partition,
}

/// One injected fault, recorded in the injector's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Delivery index the fault hit.
    pub delivery: u64,
    /// Sender.
    pub from: EndpointId,
    /// Target.
    pub to: EndpointId,
    /// What was injected.
    pub kind: FaultKind,
    /// The classified message kind, when a classifier was installed.
    pub wire_kind: Option<&'static str>,
}

/// Counters over everything the injector did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Deliveries examined.
    pub decisions: u64,
    /// Requests dropped.
    pub drops: u64,
    /// Requests duplicated.
    pub duplicates: u64,
    /// Bit flips applied to requests.
    pub corrupt_requests: u64,
    /// Bit flips applied to responses.
    pub corrupt_responses: u64,
    /// Responses timed out after delivery.
    pub timeouts: u64,
    /// Deliveries blocked by a partition window.
    pub partitions: u64,
}

impl FaultStats {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.drops
            + self.duplicates
            + self.corrupt_requests
            + self.corrupt_responses
            + self.timeouts
            + self.partitions
    }

    /// Exports the counters into a metrics registry under `net.fault.*`
    /// (mirroring `Network::export_breakdown`).
    pub fn export_metrics(&self, metrics: &Metrics) {
        metrics.counter("net.fault.decisions").add(self.decisions);
        metrics.counter("net.fault.drops").add(self.drops);
        metrics.counter("net.fault.duplicates").add(self.duplicates);
        metrics.counter("net.fault.corrupt_requests").add(self.corrupt_requests);
        metrics.counter("net.fault.corrupt_responses").add(self.corrupt_responses);
        metrics.counter("net.fault.timeouts").add(self.timeouts);
        metrics.counter("net.fault.partitions").add(self.partitions);
    }
}

/// Number of keyed draws derived per decision, fault or no fault.
const DRAWS_PER_DECISION: usize = 6;

/// One step of the splitmix64 sequence — the keyed generator behind
/// per-event draws. Chosen for its full-avalanche finalizer: consecutive
/// event ids decorrelate completely, and the vendored RNG stays out of
/// the schedule's dependency set.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The draws for one delivery, as a pure function of `(seed, event id)`.
fn keyed_draws(seed: u64, event: u64) -> [u64; DRAWS_PER_DECISION] {
    // Mix the event id through an odd multiplier before xoring with the
    // seed so that (seed, event) pairs along either axis land in distinct
    // splitmix streams.
    let mut state = seed ^ event.wrapping_mul(0xA076_1D64_78BD_642F);
    let mut draws = [0u64; DRAWS_PER_DECISION];
    for d in &mut draws {
        *d = splitmix64(&mut state);
    }
    draws
}

/// The seeded decision engine: a [`FaultPlan`] plus a draw seed, a
/// delivery counter, per-kind counters, and a full history of injected
/// faults (for reconciling against `TrafficStats` and obs failures).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    deliveries: u64,
    stats: FaultStats,
    history: Vec<InjectedFault>,
}

impl FaultInjector {
    /// Builds an injector for `plan`, seeded deterministically.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector { plan, seed, deliveries: 0, stats: FaultStats::default(), history: Vec::new() }
    }

    /// Decides the fate of the next delivery in sequence, numbering it
    /// with the internal delivery counter. Equivalent to
    /// [`FaultInjector::decide_event`] at the current counter value.
    pub fn decide(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        kind: Option<&'static str>,
    ) -> Option<FaultKind> {
        let delivery = self.deliveries;
        self.deliveries += 1;
        self.decide_event(delivery, from, to, kind)
    }

    /// Decides the fate of the delivery numbered `delivery`. The draws are
    /// keyed on `(seed, delivery)` — not on how many decisions came before
    /// — so callers that evaluate a batch of events out of order (or
    /// across worker threads) reach the same schedule as a sequential
    /// evaluation. At most one fault fires per delivery, in fixed priority
    /// order: partition, drop, corrupt, duplicate, timeout.
    pub fn decide_event(
        &mut self,
        delivery: u64,
        from: EndpointId,
        to: EndpointId,
        kind: Option<&'static str>,
    ) -> Option<FaultKind> {
        self.stats.decisions += 1;
        let draws = keyed_draws(self.seed, delivery);
        let rates = self.plan.rates_for(from, to, kind);
        let fault = if self.plan.partitioned(from, to, delivery) {
            Some(FaultKind::Partition)
        } else if chance(draws[0], rates.drop) {
            Some(FaultKind::Drop)
        } else if chance(draws[1], rates.corrupt) {
            Some(FaultKind::Corrupt { in_request: draws[4] & 1 == 0, bit: draws[5] })
        } else if chance(draws[2], rates.duplicate) {
            Some(FaultKind::Duplicate)
        } else if chance(draws[3], rates.timeout) {
            Some(FaultKind::Timeout)
        } else {
            None
        };
        if let Some(f) = fault {
            match f {
                FaultKind::Drop => self.stats.drops += 1,
                FaultKind::Duplicate => self.stats.duplicates += 1,
                FaultKind::Corrupt { in_request: true, .. } => self.stats.corrupt_requests += 1,
                FaultKind::Corrupt { in_request: false, .. } => self.stats.corrupt_responses += 1,
                FaultKind::Timeout => self.stats.timeouts += 1,
                FaultKind::Partition => self.stats.partitions += 1,
            }
            self.history.push(InjectedFault { delivery, from, to, kind: f, wire_kind: kind });
        }
        fault
    }

    /// Counters over everything injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Every injected fault, in delivery order.
    pub fn history(&self) -> &[InjectedFault] {
        &self.history
    }

    /// Deliveries examined so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }
}

/// Maps a raw draw to a uniform `[0, 1)` value and compares against `p`
/// (the 53-bit mantissa construction the vendored RNG uses).
pub(crate) fn chance(draw: u64, p: f64) -> bool {
    p > 0.0 && ((draw >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

/// Flips one bit of `buf` in place (`bit` reduced modulo the bit length;
/// empty buffers are left untouched).
pub fn flip_bit(buf: &mut [u8], bit: u64) {
    if buf.is_empty() {
        return;
    }
    let i = (bit % (buf.len() as u64 * 8)) as usize;
    buf[i / 8] ^= 1 << (i % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::new().with_default(FaultRates::uniform(0.2));
        let mut a = FaultInjector::new(plan.clone(), 42);
        let mut b = FaultInjector::new(plan, 42);
        for i in 0..500 {
            let from = EndpointId::from_index(i % 3);
            let to = EndpointId::from_index((i + 1) % 3);
            assert_eq!(a.decide(from, to, None), b.decide(from, to, None));
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.history(), b.history());
        assert!(a.stats().total() > 0, "20% rates over 500 deliveries inject something");
    }

    #[test]
    fn draws_key_on_event_id_not_call_order() {
        // Deciding the same event ids in a different order yields the
        // same per-event fate — the property that makes the schedule
        // thread-count invariant.
        let plan = FaultPlan::new().with_default(FaultRates::uniform(0.3));
        let from = EndpointId::from_index(0);
        let to = EndpointId::from_index(1);
        let mut forward = FaultInjector::new(plan.clone(), 99);
        let mut backward = FaultInjector::new(plan, 99);
        let fwd: Vec<_> = (0..200).map(|i| forward.decide_event(i, from, to, None)).collect();
        let mut bwd: Vec<_> =
            (0..200).rev().map(|i| (i, backward.decide_event(i, from, to, None))).collect();
        bwd.sort_by_key(|(i, _)| *i);
        assert_eq!(fwd, bwd.into_iter().map(|(_, f)| f).collect::<Vec<_>>());
        assert_eq!(forward.stats(), backward.stats());
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(), 7);
        for _ in 0..100 {
            assert_eq!(inj.decide(EndpointId::from_index(0), EndpointId::from_index(1), None), None);
        }
        assert_eq!(inj.stats().total(), 0);
        assert_eq!(inj.stats().decisions, 100);
    }

    #[test]
    fn partition_window_blocks_both_directions_exactly() {
        let a = EndpointId::from_index(0);
        let b = EndpointId::from_index(1);
        let c = EndpointId::from_index(2);
        let plan = FaultPlan::new().partition(a, b, 2, 4);
        let mut inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.decide(a, b, None), None); // delivery 0
        assert_eq!(inj.decide(b, a, None), None); // delivery 1
        assert_eq!(inj.decide(a, b, None), Some(FaultKind::Partition)); // 2
        assert_eq!(inj.decide(b, a, None), Some(FaultKind::Partition)); // 3
        assert_eq!(inj.decide(a, c, None), None); // 4: other link never blocked
        assert_eq!(inj.decide(a, b, None), None); // 5: window over
        assert_eq!(inj.stats().partitions, 2);
    }

    #[test]
    fn link_override_beats_kind_override_beats_default() {
        let a = EndpointId::from_index(0);
        let b = EndpointId::from_index(1);
        let plan = FaultPlan::new()
            .with_default(FaultRates::uniform(1.0))
            .kind("ping", FaultRates::default())
            .link(a, b, FaultRates { drop: 1.0, ..FaultRates::default() });
        assert_eq!(plan.rates_for(a, b, Some("ping")).drop, 1.0);
        assert_eq!(plan.rates_for(b, a, Some("ping")), FaultRates::default());
        assert_eq!(plan.rates_for(b, a, None), FaultRates::uniform(1.0));
    }

    #[test]
    fn flip_bit_is_an_involution_and_handles_empty() {
        let mut buf = vec![0u8; 4];
        flip_bit(&mut buf, 77);
        assert_ne!(buf, vec![0u8; 4]);
        flip_bit(&mut buf, 77);
        assert_eq!(buf, vec![0u8; 4]);
        let mut empty: Vec<u8> = Vec::new();
        flip_bit(&mut empty, 5);
        assert!(empty.is_empty());
    }
}

//! An i3-style anonymous indirection layer.
//!
//! The owner-anonymous coin extension (paper §5.2, approach 3) removes the
//! owner identity from coins and replaces it with a *handle*: "the coin
//! owner registers a trigger on this handle so that all messages sent to
//! this handle will be forwarded to itself. These handles act as
//! pseudonyms for the coin owner."
//!
//! [`IndirectionLayer`] models exactly that: an opaque 32-byte [`Handle`],
//! a trigger table mapping handles to endpoints, and request forwarding
//! that accounts for the extra relay hop. The payee-visible API never
//! exposes the resolved endpoint, mirroring i3's anonymity property.

use std::collections::HashMap;

use rand::Rng;
use whopay_obs::{Obs, OpKind, Role, TraceContext, TRACE_TRAILER_LEN};

use crate::network::{EndpointId, Network, RequestError};
use crate::retry::{Classify, RetryPolicy};

/// An opaque indirection handle (an i3 trigger identifier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(pub [u8; 32]);

impl Handle {
    /// Derives a handle from arbitrary identifying bytes (e.g. a coin
    /// public key), via a fixed-width copy/truncate. Callers wanting
    /// unlinkability should pass fresh random bytes instead.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut h = [0u8; 32];
        let n = bytes.len().min(32);
        h[..n].copy_from_slice(&bytes[..n]);
        Handle(h)
    }

    /// A fresh random handle.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        let mut h = [0u8; 32];
        rng.fill_bytes(&mut h);
        Handle(h)
    }
}

/// Errors from indirect requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndirectionError {
    /// No trigger registered on this handle.
    DanglingHandle(Handle),
    /// The trigger resolved, but delivery failed.
    Delivery(RequestError),
}

impl std::fmt::Display for IndirectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndirectionError::DanglingHandle(_) => f.write_str("no trigger registered on handle"),
            IndirectionError::Delivery(e) => write!(f, "delivery failed: {e}"),
        }
    }
}

impl std::error::Error for IndirectionError {}

/// The trigger table: handle → forwarding target.
#[derive(Debug, Default)]
pub struct IndirectionLayer {
    triggers: HashMap<Handle, EndpointId>,
}

impl IndirectionLayer {
    /// An empty layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a trigger: messages to `handle` will be
    /// forwarded to `target`.
    pub fn register_trigger(&mut self, handle: Handle, target: EndpointId) {
        self.triggers.insert(handle, target);
    }

    /// Removes a trigger, returning its previous target.
    pub fn remove_trigger(&mut self, handle: Handle) -> Option<EndpointId> {
        self.triggers.remove(&handle)
    }

    /// Number of live triggers.
    pub fn trigger_count(&self) -> usize {
        self.triggers.len()
    }

    /// Sends a request to whatever endpoint the handle's trigger points at,
    /// without revealing that endpoint to the caller.
    ///
    /// Accounts one extra relay hop per direction on top of the normal
    /// request/response traffic, modelling the i3 server in the middle.
    ///
    /// # Errors
    ///
    /// [`IndirectionError::DanglingHandle`] if no trigger exists;
    /// [`IndirectionError::Delivery`] if the resolved endpoint is offline
    /// or unknown.
    pub fn request_via(
        &self,
        net: &mut Network,
        from: EndpointId,
        handle: Handle,
        request: Vec<u8>,
    ) -> Result<Vec<u8>, IndirectionError> {
        let mut response = Vec::new();
        self.request_via_into(net, from, handle, &request, &mut response)?;
        Ok(response)
    }

    /// The allocation-lean form of [`IndirectionLayer::request_via`]: the
    /// forwarded payload is borrowed rather than owned per hop, and the
    /// response lands in a caller-reused buffer. Relay accounting is
    /// identical.
    ///
    /// # Errors
    ///
    /// Same as [`IndirectionLayer::request_via`].
    pub fn request_via_into(
        &self,
        net: &mut Network,
        from: EndpointId,
        handle: Handle,
        request: &[u8],
        response: &mut Vec<u8>,
    ) -> Result<(), IndirectionError> {
        let target = *self.triggers.get(&handle).ok_or(IndirectionError::DanglingHandle(handle))?;
        net.account_relay(request.len());
        net.request_into(from, target, request, response).map_err(IndirectionError::Delivery)?;
        net.account_relay(response.len());
        Ok(())
    }

    /// Whether a trigger resolves to an *online* endpoint — the anonymous
    /// analogue of "is the coin owner online?".
    pub fn is_reachable(&self, net: &Network, handle: Handle) -> bool {
        self.triggers.get(&handle).is_some_and(|&t| net.is_online(t))
    }

    /// [`IndirectionLayer::request_via_into`] wrapped in a
    /// [`RetryPolicy`]: transient delivery faults (lost / timed-out /
    /// partitioned) are retried with backoff, while fatal outcomes —
    /// dangling handles, offline or unknown targets, re-entrant cycles —
    /// return immediately.
    ///
    /// # Errors
    ///
    /// The last error once the policy gives up, or the first fatal one.
    #[allow(clippy::too_many_arguments)]
    pub fn request_via_retry<R: Rng>(
        &self,
        net: &mut Network,
        from: EndpointId,
        handle: Handle,
        request: &[u8],
        response: &mut Vec<u8>,
        policy: &RetryPolicy,
        rng: &mut R,
    ) -> Result<(), IndirectionError> {
        policy.run(rng, |_| self.request_via_into(net, from, handle, request, response))
    }

    /// [`IndirectionLayer::request_via_retry`] with causal tracing: each
    /// attempt runs under its own span, carries that span's
    /// [`TraceContext`] as a frame trailer, and — when a transient fault
    /// kills an attempt — the next one is parented under it and tagged
    /// with the fault's `Classify` label, so the retry chain
    /// reconstructs from the event stream. With a disabled `obs` this is
    /// byte-for-byte `request_via_retry` (no trailer, no allocation).
    ///
    /// # Errors
    ///
    /// Same as [`IndirectionLayer::request_via_retry`].
    #[allow(clippy::too_many_arguments)]
    pub fn request_via_traced<R: Rng>(
        &self,
        net: &mut Network,
        from: EndpointId,
        handle: Handle,
        request: &[u8],
        response: &mut Vec<u8>,
        policy: &RetryPolicy,
        rng: &mut R,
        obs: &Obs,
    ) -> Result<(), IndirectionError> {
        if !obs.enabled() {
            return self.request_via_retry(net, from, handle, request, response, policy, rng);
        }
        let mut framed = Vec::with_capacity(request.len() + TRACE_TRAILER_LEN);
        framed.extend_from_slice(request);
        let mut prev: Option<(TraceContext, &'static str)> = None;
        policy.run(rng, |attempt| {
            let mut span = match prev {
                Some((ctx, label)) => {
                    let mut s = obs.child_span(Role::Client, OpKind::NetRequest, &ctx);
                    s.mark_retry(attempt, label);
                    s
                }
                None => obs.span(Role::Client, OpKind::NetRequest),
            };
            framed.truncate(request.len());
            if let Some(ctx) = span.context() {
                ctx.append_to(&mut framed);
            }
            let result = self.request_via_into(net, from, handle, &framed, response);
            match &result {
                Ok(()) => {
                    // Traffic is attributed before stripping any server
                    // trailer, matching the transport's own accounting.
                    span.add_traffic(2, (framed.len() + response.len()) as u64);
                    if let Some((_, payload_len)) = TraceContext::strip(response) {
                        response.truncate(payload_len);
                    }
                }
                Err(e) => {
                    prev = span.context().map(|ctx| (ctx, e.label()));
                    span.fail(e.label());
                }
            }
            span.finish();
            result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_hides_target() {
        let mut net = Network::new();
        let owner = net.register("owner", |req: &[u8]| {
            let mut v = req.to_vec();
            v.reverse();
            v
        });
        let payer = net.register("payer", |_: &[u8]| Vec::new());
        let mut i3 = IndirectionLayer::new();
        let handle = Handle::from_bytes(b"coin-under-this-handle");
        i3.register_trigger(handle, owner);

        let resp = i3.request_via(&mut net, payer, handle, b"abc".to_vec()).unwrap();
        assert_eq!(resp, b"cba");
        // Two protocol messages plus two relay hops.
        assert_eq!(net.stats().messages, 4);
        assert_eq!(net.relay_hops(), 2);
    }

    #[test]
    fn dangling_handle_errors() {
        let mut net = Network::new();
        let payer = net.register("payer", |_: &[u8]| Vec::new());
        let i3 = IndirectionLayer::new();
        let handle = Handle::from_bytes(b"nope");
        assert!(matches!(
            i3.request_via(&mut net, payer, handle, vec![]),
            Err(IndirectionError::DanglingHandle(_))
        ));
    }

    #[test]
    fn offline_target_is_a_delivery_error() {
        let mut net = Network::new();
        let owner = net.register("owner", |req: &[u8]| req.to_vec());
        let payer = net.register("payer", |_: &[u8]| Vec::new());
        let mut i3 = IndirectionLayer::new();
        let handle = Handle::from_bytes(b"h");
        i3.register_trigger(handle, owner);
        net.set_online(owner, false);
        assert!(!i3.is_reachable(&net, handle));
        assert!(matches!(
            i3.request_via(&mut net, payer, handle, vec![]),
            Err(IndirectionError::Delivery(RequestError::Offline(_)))
        ));
    }

    #[test]
    fn triggers_can_be_retargeted_and_removed() {
        let mut net = Network::new();
        let a = net.register("a", |_: &[u8]| b"a".to_vec());
        let b = net.register("b", |_: &[u8]| b"b".to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        let mut i3 = IndirectionLayer::new();
        let handle = Handle::from_bytes(b"h");
        i3.register_trigger(handle, a);
        assert_eq!(i3.request_via(&mut net, client, handle, vec![]).unwrap(), b"a");
        i3.register_trigger(handle, b);
        assert_eq!(i3.request_via(&mut net, client, handle, vec![]).unwrap(), b"b");
        assert_eq!(i3.remove_trigger(handle), Some(b));
        assert_eq!(i3.trigger_count(), 0);
    }

    #[test]
    fn random_handles_differ() {
        let mut rng = rand::rng();
        assert_ne!(Handle::random(&mut rng), Handle::random(&mut rng));
    }

    #[test]
    fn traced_relay_chains_retry_spans_and_strips_trailers() {
        use std::sync::Arc;

        use rand::SeedableRng;
        use whopay_obs::{MemoryRecorder, Outcome, Tracer};

        use crate::faults::{FaultInjector, FaultPlan, FaultRates};

        let mut net = Network::new();
        let owner = net.register("owner", |req: &[u8]| req.to_vec());
        let payer = net.register("payer", |_: &[u8]| Vec::new());
        let mut i3 = IndirectionLayer::new();
        let handle = Handle::from_bytes(b"traced");
        i3.register_trigger(handle, owner);
        let rates = FaultRates { drop: 0.4, duplicate: 0.0, corrupt: 0.0, timeout: 0.0 };
        net.install_faults(FaultInjector::new(FaultPlan::new().with_default(rates), 42));

        let recorder = Arc::new(MemoryRecorder::new());
        let obs = Obs::with_tracer(Tracer::new(recorder.clone()));
        let policy = RetryPolicy::new(16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut response = Vec::new();
        for _ in 0..50 {
            if i3
                .request_via_traced(
                    &mut net,
                    payer,
                    handle,
                    b"ping",
                    &mut response,
                    &policy,
                    &mut rng,
                    &obs,
                )
                .is_ok()
            {
                // The echo handler returned payload + trailer; the traced
                // relay must hand back the bare payload.
                assert_eq!(response, b"ping");
            }
        }

        let events = recorder.events();
        let retried: Vec<_> = events.iter().filter(|e| e.retry.is_some()).collect();
        assert!(!retried.is_empty(), "drop rate 0.4 over 50 calls must force retries");
        for attempt in &retried {
            let trace = attempt.trace.expect("retry attempts are traced");
            assert_eq!(attempt.retry.unwrap().after, "lost");
            // The attempt is parented under the failed attempt it replaces.
            let predecessor = events
                .iter()
                .find(|e| e.trace.is_some_and(|t| t.span_id == trace.parent_span_id))
                .expect("predecessor span recorded");
            assert_eq!(predecessor.outcome, Outcome::Error);
            assert_eq!(predecessor.trace.unwrap().trace_id, trace.trace_id);
        }
    }
}

#![warn(missing_docs)]

//! Deterministic in-memory networking for the WhoPay reproduction.
//!
//! The paper evaluates WhoPay by simulation, and its protocols are plain
//! request/response exchanges between peers, the broker, and the judge.
//! This crate provides the substrate those protocols run on:
//!
//! * [`Network`] — an in-memory message fabric with registered
//!   endpoints, per-endpoint and global traffic accounting
//!   ([`TrafficStats`]), online/offline churn control, and deterministic
//!   delivery. Protocol code is written sans-IO (handlers consume a request
//!   and produce a response); the fabric counts every message and byte so
//!   experiments can report communication load measured from the *real*
//!   protocol implementation, not just the paper's per-op constants.
//! * [`indirection`] — an i3-style trigger/forwarding table used by the
//!   owner-anonymous coin extension (§5.2, approach 3): owners register
//!   triggers on opaque handles; payers send to the handle and cannot tell
//!   the owner from a forwarder.
//! * [`queue`] — the event-queue delivery path: [`Network::submit`]
//!   enqueues requests, [`Network::drain`] delivers them via a worker
//!   pool sized by `WHOPAY_NET_THREADS` (default 1, which is
//!   bit-identical to the synchronous path). Endpoints registered with
//!   [`Network::register_parallel`] may execute on worker threads.
//! * [`faults`] — a deterministic, seed-driven fault injector
//!   ([`FaultPlan`] / [`FaultInjector`]) that drops, duplicates,
//!   corrupts, delays, or partitions deliveries on the fabric, with
//!   per-link and per-kind overrides and `net.fault.*` counters.
//! * [`retry`] — the resilience layer: [`ErrorClass`] / [`Classify`]
//!   split failures into retryable vs fatal, and [`RetryPolicy`] wraps
//!   fallible calls in bounded exponential backoff with RNG-drawn
//!   jitter and a per-call deadline budget.
//!
//! # Example
//!
//! ```
//! use whopay_net::Network;
//!
//! let mut net = Network::new();
//! let echo = net.register("echo", |req: &[u8]| {
//!     let mut out = b"echo: ".to_vec();
//!     out.extend_from_slice(req);
//!     out
//! });
//! let client = net.register("client", |_req: &[u8]| Vec::new());
//! let reply = net.request(client, echo, b"hi".to_vec()).unwrap();
//! assert_eq!(reply, b"echo: hi");
//! assert_eq!(net.stats().messages, 2); // request + response
//! ```

pub mod faults;
pub mod indirection;
mod network;
pub mod queue;
pub mod retry;
mod stats;
pub mod tamper;

pub use faults::{
    flip_bit, FaultInjector, FaultKind, FaultPlan, FaultRates, FaultStats, InjectedFault,
    PartitionWindow,
};
pub use indirection::{Handle, IndirectionLayer};
pub use network::{Classifier, EndpointId, Network, ParallelHandler, RequestError};
pub use queue::{Delivery, EventId, NET_THREADS_ENV};
pub use retry::{Classify, ErrorClass, RetryPolicy, RetryStats};
pub use stats::{TrafficBreakdown, TrafficStats};
pub use tamper::{InjectedTamper, TamperInjector, TamperPlan, TamperTarget};

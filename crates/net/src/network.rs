//! The in-memory request/response fabric.

use std::fmt;
use std::time::Instant;

use whopay_obs::{Event, Metrics, Obs, OpKind, Role, TraceContext};

use crate::faults::{flip_bit, FaultInjector, FaultKind, FaultStats};
use crate::queue::{
    net_threads_from_env, run_item, Delivery, Envelope, EventId, Fate, WorkItem, WorkRecord,
};
use crate::retry::Classify;
use crate::stats::{TrafficBreakdown, TrafficStats};

/// Identifies a registered endpoint on a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(u64);

impl EndpointId {
    /// The raw numeric id.
    pub fn index(self) -> u64 {
        self.0
    }

    /// In-crate constructor for tests and fixtures.
    #[cfg(test)]
    pub(crate) fn from_index(i: u64) -> Self {
        EndpointId(i)
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Why a request could not be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// No endpoint with that id exists.
    UnknownEndpoint(EndpointId),
    /// The target endpoint is currently offline (peer churn).
    Offline(EndpointId),
    /// The target is already handling a request on this call stack —
    /// a protocol cycle (e.g. an owner transferring through itself).
    /// Classified fatal: resending the identical request re-enters the
    /// same cycle, so the retry layer never retries it.
    ReentrantCall(EndpointId),
    /// An injected fault dropped the request in flight (transient).
    Lost(EndpointId),
    /// The request was delivered and applied, but the response was
    /// delayed past the caller's patience (transient; the target's state
    /// may have changed).
    TimedOut(EndpointId),
    /// A scheduled partition window blocked the link (transient).
    Partitioned(EndpointId),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::UnknownEndpoint(id) => write!(f, "unknown endpoint {id}"),
            RequestError::Offline(id) => write!(f, "endpoint {id} is offline"),
            RequestError::ReentrantCall(id) => write!(f, "re-entrant request to endpoint {id}"),
            RequestError::Lost(id) => write!(f, "request to endpoint {id} lost in flight"),
            RequestError::TimedOut(id) => write!(f, "request to endpoint {id} timed out"),
            RequestError::Partitioned(id) => write!(f, "link to endpoint {id} partitioned"),
        }
    }
}

impl std::error::Error for RequestError {}

/// A request handler: consumes the request payload, may issue nested
/// requests through the network it is handed, and writes its response
/// into the caller-provided buffer (which arrives cleared and keeps its
/// capacity across deliveries, so steady-state handlers that encode with
/// `encode_into` allocate nothing on the wire).
pub type Handler = Box<dyn FnMut(&mut Network, &[u8], &mut Vec<u8>)>;

/// A `Send` request handler for endpoints registered via
/// [`Network::register_parallel`]: no `&mut Network` access (and hence no
/// nested requests), which is what lets [`Network::drain`] run it on a
/// worker thread while the coordinator owns the fabric.
pub type ParallelHandler = Box<dyn FnMut(&[u8], &mut Vec<u8>) + Send>;

/// Maps a request payload to a stable message-kind label for the
/// per-kind traffic breakdown (installed via [`Network::set_classifier`]).
pub type Classifier = Box<dyn Fn(&[u8]) -> &'static str>;

struct EndpointSlot {
    name: String,
    online: bool,
    /// Role reported on observability events for requests this endpoint
    /// serves (defaults to [`Role::Client`]).
    role: Role,
    /// `None` while the handler is executing (re-entrancy guard).
    handler: Option<Handler>,
    /// The `Send` handler of a parallel endpoint (`None` while executing,
    /// or while lent to a drain worker).
    parallel: Option<ParallelHandler>,
    /// Whether this endpoint registered via
    /// [`Network::register_parallel`] (distinguishes a lent-out parallel
    /// handler from a classic endpoint mid-dispatch).
    is_parallel: bool,
    sent: TrafficStats,
    received: TrafficStats,
}

/// A deterministic in-memory message fabric.
///
/// Endpoints register a handler; [`Network::request`] synchronously routes
/// a request to the target's handler and returns its response, counting
/// both directions in the traffic statistics. Handlers receive `&mut
/// Network` and may issue nested requests (the fabric temporarily parks the
/// running handler, so cycles are detected rather than deadlocking).
pub struct Network {
    endpoints: Vec<EndpointSlot>,
    global: TrafficStats,
    /// Extra per-message hops attributed to relays (e.g. i3 forwarding).
    relay_hops: u64,
    /// Observability context: emits one `NetRequest` event per delivery.
    obs: Obs,
    /// Optional message-kind classifier feeding the breakdown.
    classifier: Option<Classifier>,
    /// Per-kind traffic split (populated only while a classifier is set).
    breakdown: TrafficBreakdown,
    /// Optional deterministic fault injector consulted per delivery.
    faults: Option<FaultInjector>,
    /// Events submitted via [`Network::submit`], awaiting a drain.
    queue: Vec<Envelope>,
    /// Next event id handed out by [`Network::submit`].
    next_event: u64,
    /// Worker count for [`Network::drain`] (1 = synchronous semantics).
    drain_threads: usize,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("endpoints", &self.endpoints.len())
            .field("global", &self.global)
            .field("relay_hops", &self.relay_hops)
            .field("obs", &self.obs)
            .field("classified", &self.classifier.is_some())
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Network {
            endpoints: Vec::new(),
            global: TrafficStats::default(),
            relay_hops: 0,
            obs: Obs::disabled(),
            classifier: None,
            breakdown: TrafficBreakdown::new(),
            faults: None,
            queue: Vec::new(),
            next_event: 0,
            drain_threads: net_threads_from_env(),
        }
    }

    /// Installs a fault injector: from now on every delivery attempted
    /// through [`Network::request`] / [`Network::request_into`] consults
    /// it (see [`crate::faults`] for the exact fault semantics).
    pub fn install_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Removes the fault injector, returning it (with its history) so a
    /// harness can drain remaining work fault-free and still reconcile.
    pub fn clear_faults(&mut self) -> Option<FaultInjector> {
        self.faults.take()
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Counters of injected faults (all zero when no injector is
    /// installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    /// Exports the fault counters into a metrics registry under
    /// `net.fault.*`.
    pub fn export_fault_metrics(&self, metrics: &Metrics) {
        self.fault_stats().export_metrics(metrics);
    }

    /// Attaches an observability context. Every delivered request then
    /// reports one [`OpKind::NetRequest`] event (2 messages, request +
    /// response bytes, delivery latency) attributed to the *serving*
    /// endpoint's [`Role`]; failed deliveries report error events with no
    /// traffic. This is the transport-level view of the same bytes the
    /// protocol layer attributes to its operations — reconcile against
    /// one layer at a time.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Installs a message-kind classifier. From then on every delivered
    /// request and its response are recorded in the per-kind
    /// [`TrafficBreakdown`] under the label returned for the request
    /// payload (relay hops record under `"relay"`).
    pub fn set_classifier(&mut self, classify: impl Fn(&[u8]) -> &'static str + 'static) {
        self.classifier = Some(Box::new(classify));
    }

    /// The per-kind traffic split. Empty unless a classifier is set;
    /// installed before any traffic flows, its [`TrafficBreakdown::total`]
    /// equals [`Network::stats`].
    pub fn breakdown(&self) -> &TrafficBreakdown {
        &self.breakdown
    }

    /// Exports the per-kind breakdown into a metrics registry as named
    /// counters (`net.<kind>.messages` / `net.<kind>.bytes`).
    pub fn export_breakdown(&self, metrics: &Metrics) {
        for (kind, stats) in self.breakdown.iter() {
            metrics.counter(&format!("net.{kind}.messages")).add(stats.messages);
            metrics.counter(&format!("net.{kind}.bytes")).add(stats.bytes);
        }
    }

    /// Declares the protocol role an endpoint serves, for observability
    /// event attribution (defaults to [`Role::Client`]).
    ///
    /// # Panics
    ///
    /// Panics if the endpoint does not exist.
    pub fn set_role(&mut self, id: EndpointId, role: Role) {
        self.slot_mut(id).role = role;
    }

    /// Registers an endpoint with a simple payload-to-payload handler.
    pub fn register<F>(&mut self, name: &str, mut handler: F) -> EndpointId
    where
        F: FnMut(&[u8]) -> Vec<u8> + 'static,
    {
        self.register_with_net(name, move |_net, req| handler(req))
    }

    /// Registers an endpoint whose handler may issue nested requests.
    ///
    /// The handler allocates a fresh response per call; hot-path services
    /// should prefer [`Network::register_writer`], which reuses the
    /// delivery buffer instead.
    pub fn register_with_net<F>(&mut self, name: &str, mut handler: F) -> EndpointId
    where
        F: FnMut(&mut Network, &[u8]) -> Vec<u8> + 'static,
    {
        self.register_writer(name, move |net, req, out| {
            let resp = handler(net, req);
            out.extend_from_slice(&resp);
        })
    }

    /// Registers an endpoint whose handler writes its response into a
    /// reused buffer — the allocation-lean registration. The buffer
    /// arrives cleared; its capacity persists across deliveries.
    pub fn register_writer<F>(&mut self, name: &str, handler: F) -> EndpointId
    where
        F: FnMut(&mut Network, &[u8], &mut Vec<u8>) + 'static,
    {
        let id = EndpointId(self.endpoints.len() as u64);
        self.endpoints.push(EndpointSlot {
            name: name.to_string(),
            online: true,
            role: Role::Client,
            handler: Some(Box::new(handler)),
            parallel: None,
            is_parallel: false,
            sent: TrafficStats::default(),
            received: TrafficStats::default(),
        });
        id
    }

    /// Registers an endpoint whose handler is `Send` and takes no network
    /// access: [`Network::drain`] can then run its deliveries on a worker
    /// thread, concurrently with other parallel endpoints. Synchronous
    /// [`Network::request`] calls to the endpoint still work (delivered
    /// inline); the handler itself can never issue nested requests.
    pub fn register_parallel<F>(&mut self, name: &str, handler: F) -> EndpointId
    where
        F: FnMut(&[u8], &mut Vec<u8>) + Send + 'static,
    {
        let id = EndpointId(self.endpoints.len() as u64);
        self.endpoints.push(EndpointSlot {
            name: name.to_string(),
            online: true,
            role: Role::Client,
            handler: None,
            parallel: Some(Box::new(handler)),
            is_parallel: true,
            sent: TrafficStats::default(),
            received: TrafficStats::default(),
        });
        id
    }

    /// Marks an endpoint online or offline. Requests to an offline endpoint
    /// fail with [`RequestError::Offline`] — this is how peer churn reaches
    /// the protocol layer.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint does not exist.
    pub fn set_online(&mut self, id: EndpointId, online: bool) {
        self.slot_mut(id).online = online;
    }

    /// Whether the endpoint is currently online.
    pub fn is_online(&self, id: EndpointId) -> bool {
        self.endpoints.get(id.0 as usize).is_some_and(|s| s.online)
    }

    /// The registration name of an endpoint (diagnostics only).
    pub fn name(&self, id: EndpointId) -> Option<&str> {
        self.endpoints.get(id.0 as usize).map(|s| s.name.as_str())
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Sends `request` from `from` to `to` and returns the response.
    ///
    /// Both the request and the response are counted, against the global
    /// stats and against each endpoint's sent/received counters.
    ///
    /// # Errors
    ///
    /// * [`RequestError::UnknownEndpoint`] if `to` was never registered.
    /// * [`RequestError::Offline`] if `to` is offline.
    /// * [`RequestError::ReentrantCall`] if `to` is already on the current
    ///   handling stack.
    pub fn request(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        request: Vec<u8>,
    ) -> Result<Vec<u8>, RequestError> {
        let mut response = Vec::new();
        self.request_into(from, to, &request, &mut response)?;
        Ok(response)
    }

    /// The allocation-lean form of [`Network::request`]: the request is a
    /// borrowed slice and the response is written into `response` (cleared
    /// first, capacity preserved). Callers that hold a recycled buffer —
    /// e.g. one taken from the codec's pool — complete a full round trip
    /// with zero wire-layer allocations. Accounting (global stats,
    /// per-endpoint counters, per-kind breakdown, observability events) is
    /// identical to [`Network::request`].
    ///
    /// # Errors
    ///
    /// Same as [`Network::request`].
    pub fn request_into(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        request: &[u8],
        response: &mut Vec<u8>,
    ) -> Result<(), RequestError> {
        if to.0 as usize >= self.endpoints.len() {
            return Err(RequestError::UnknownEndpoint(to));
        }
        if !self.endpoints[to.0 as usize].online {
            let err = RequestError::Offline(to);
            self.observe_failure(to, err.label(), request);
            return Err(err);
        }
        let fault = match self.faults.as_mut() {
            Some(inj) => {
                let kind = self.classifier.as_ref().map(|classify| classify(request));
                inj.decide(from, to, kind)
            }
            None => None,
        };
        self.deliver_with_fault(from, to, request, response, fault)
    }

    /// Applies one already-decided fault fate to a delivery — the shared
    /// tail of [`Network::request_into`] and the queue's inline drain
    /// path, so both produce identical semantics for the same fate.
    fn deliver_with_fault(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        request: &[u8],
        response: &mut Vec<u8>,
        fault: Option<FaultKind>,
    ) -> Result<(), RequestError> {
        match fault {
            None => self.deliver(from, to, request, response),
            Some(FaultKind::Partition) => {
                let err = RequestError::Partitioned(to);
                self.observe_failure(to, err.label(), request);
                Err(err)
            }
            Some(FaultKind::Drop) => {
                let err = RequestError::Lost(to);
                self.observe_failure(to, err.label(), request);
                Err(err)
            }
            Some(FaultKind::Corrupt { in_request: true, bit }) => {
                let mut corrupted = request.to_vec();
                flip_bit(&mut corrupted, bit);
                self.deliver(from, to, &corrupted, response)
            }
            Some(FaultKind::Corrupt { in_request: false, bit }) => {
                self.deliver(from, to, request, response)?;
                flip_bit(response, bit);
                Ok(())
            }
            Some(FaultKind::Duplicate) => {
                // The request reaches the target twice; the caller sees the
                // second response. Both deliveries are fully accounted.
                self.deliver(from, to, request, response)?;
                self.deliver(from, to, request, response)
            }
            Some(FaultKind::Timeout) => {
                // The request was delivered and applied, but the response is
                // modelled as arriving too late: the caller gets nothing.
                self.deliver(from, to, request, response)?;
                response.clear();
                let err = RequestError::TimedOut(to);
                self.observe_failure(to, err.label(), request);
                Err(err)
            }
        }
    }

    /// One fully-accounted delivery: takes the handler (re-entrancy
    /// guard), counts traffic both ways, invokes the handler, and emits
    /// the obs event. Shared by the clean path and every fault flavour
    /// that still reaches the target.
    fn deliver(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        request: &[u8],
        response: &mut Vec<u8>,
    ) -> Result<(), RequestError> {
        enum Took {
            Classic(Handler),
            Parallel(ParallelHandler),
        }
        let slot = &mut self.endpoints[to.0 as usize];
        let took = if slot.is_parallel {
            slot.parallel.take().map(Took::Parallel)
        } else {
            slot.handler.take().map(Took::Classic)
        };
        let Some(mut took) = took else {
            let err = RequestError::ReentrantCall(to);
            self.observe_failure(to, err.label(), request);
            return Err(err);
        };

        let start = if self.obs.enabled() { Some(Instant::now()) } else { None };
        let kind = self.classifier.as_ref().map(|classify| classify(request));

        self.account(from, to, request.len());
        if let Some(kind) = kind {
            self.breakdown.record(kind, request.len());
        }
        response.clear();
        match &mut took {
            Took::Classic(handler) => handler(self, request, response),
            Took::Parallel(handler) => handler(request, response),
        }
        self.account(to, from, response.len());
        if let Some(kind) = kind {
            self.breakdown.record(kind, response.len());
        }

        match took {
            Took::Classic(handler) => self.endpoints[to.0 as usize].handler = Some(handler),
            Took::Parallel(handler) => self.endpoints[to.0 as usize].parallel = Some(handler),
        }

        if let Some(start) = start {
            let mut event = Event::new(self.endpoints[to.0 as usize].role, OpKind::NetRequest)
                .with_traffic(2, (request.len() + response.len()) as u64)
                .with_duration(start.elapsed());
            if let Some(kind) = kind {
                event = event.with_detail(kind);
            }
            // A traced request parents the delivery event under the
            // sender's span, so the wire hop shows up in the span tree.
            if let Some((ctx, _)) = TraceContext::strip(request) {
                event = event.with_trace(ctx.child());
            }
            self.obs.observe(event);
        }
        Ok(())
    }

    // --- event queue ---

    /// Worker count [`Network::drain`] fans deliveries across (resolved
    /// from `WHOPAY_NET_THREADS` at construction; at least 1).
    pub fn drain_threads(&self) -> usize {
        self.drain_threads.max(1)
    }

    /// Overrides the drain worker count (`0` re-resolves from the
    /// environment). At 1 the drain is bit-identical to a synchronous
    /// [`Network::request_into`] loop over the queue.
    pub fn set_drain_threads(&mut self, threads: usize) {
        self.drain_threads = if threads == 0 { net_threads_from_env() } else { threads };
    }

    /// Events currently queued for the next [`Network::drain`].
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a request for the next [`Network::drain`] and returns its
    /// event id. Nothing is delivered, decided, or accounted yet — fault
    /// fates are drawn at drain time, in submission order.
    pub fn submit(&mut self, from: EndpointId, to: EndpointId, request: Vec<u8>) -> EventId {
        let event = EventId(self.next_event);
        self.next_event += 1;
        self.queue.push(Envelope { event, from, to, request });
        event
    }

    /// Delivers every queued event and returns the outcomes in submission
    /// order (see [`crate::queue`] for the phase structure and ordering
    /// guarantees). Fault decisions are drawn up front in submission
    /// order, so the schedule for a given seed is identical at any
    /// [`Network::drain_threads`] count.
    pub fn drain(&mut self) -> Vec<Delivery> {
        let mut envelopes = std::mem::take(&mut self.queue);
        if envelopes.is_empty() {
            return Vec::new();
        }
        // Phase 1: resolve every event's fate in submission order.
        let fates: Vec<Fate> = envelopes
            .iter()
            .map(|env| {
                if env.to.0 as usize >= self.endpoints.len() {
                    return Fate::Fail(RequestError::UnknownEndpoint(env.to));
                }
                if !self.endpoints[env.to.0 as usize].online {
                    return Fate::Fail(RequestError::Offline(env.to));
                }
                let kind = self.classifier.as_ref().map(|classify| classify(&env.request));
                let fault = match self.faults.as_mut() {
                    Some(inj) => inj.decide(env.from, env.to, kind),
                    None => None,
                };
                Fate::Deliver { fault, kind }
            })
            .collect();

        // Phase 2a: fan parallel-endpoint deliveries across workers.
        let threads = self.drain_threads();
        let mut records: Vec<Option<WorkRecord>> = (0..envelopes.len()).map(|_| None).collect();
        if threads > 1 {
            let mut groups: Vec<(usize, Vec<WorkItem>)> = Vec::new();
            for (index, (env, fate)) in envelopes.iter_mut().zip(&fates).enumerate() {
                let Fate::Deliver { fault, .. } = fate else { continue };
                // Drop/partition never reach a handler; corrupt, duplicate
                // and timeout semantics are applied inside the worker.
                if matches!(fault, Some(FaultKind::Drop | FaultKind::Partition)) {
                    continue;
                }
                let slot_index = env.to.0 as usize;
                if !self.endpoints[slot_index].is_parallel {
                    continue;
                }
                let trace = TraceContext::strip(&env.request).map(|(ctx, _)| ctx);
                let item = WorkItem {
                    index,
                    to: env.to,
                    request: std::mem::take(&mut env.request),
                    fault: *fault,
                    trace,
                };
                match groups.iter_mut().find(|(s, _)| *s == slot_index) {
                    Some((_, items)) => items.push(item),
                    None => groups.push((slot_index, vec![item])),
                }
            }
            let mut taken: Vec<(usize, ParallelHandler, Vec<WorkItem>)> = Vec::new();
            for (slot_index, items) in groups {
                match self.endpoints[slot_index].parallel.take() {
                    Some(handler) => taken.push((slot_index, handler, items)),
                    None => {
                        for item in items {
                            records[item.index] = Some(WorkRecord {
                                index: item.index,
                                legs: Vec::new(),
                                result: Err(RequestError::ReentrantCall(item.to)),
                                trace: item.trace,
                            });
                        }
                    }
                }
            }
            let timed = self.obs.enabled();
            let workers = threads.min(taken.len()).max(1);
            let mut buckets: Vec<Vec<(usize, ParallelHandler, Vec<WorkItem>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, group) in taken.into_iter().enumerate() {
                buckets[i % workers].push(group);
            }
            let produced: Vec<Vec<(usize, ParallelHandler, Vec<WorkRecord>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = buckets
                        .into_iter()
                        .map(|bucket| {
                            scope.spawn(move || {
                                bucket
                                    .into_iter()
                                    .map(|(slot_index, mut handler, items)| {
                                        let recs: Vec<WorkRecord> = items
                                            .into_iter()
                                            .map(|item| run_item(&mut handler, item, timed))
                                            .collect();
                                        (slot_index, handler, recs)
                                    })
                                    .collect()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("drain worker panicked")).collect()
                });
            for (slot_index, handler, recs) in produced.into_iter().flatten() {
                self.endpoints[slot_index].parallel = Some(handler);
                for rec in recs {
                    let index = rec.index;
                    records[index] = Some(rec);
                }
            }
        }

        // Phases 2b + 3: remaining deliveries inline, and all accounting,
        // in submission order.
        let mut deliveries = Vec::with_capacity(envelopes.len());
        for (index, (env, fate)) in envelopes.into_iter().zip(fates).enumerate() {
            let result = match fate {
                Fate::Fail(err) => {
                    // The synchronous path reports unknown endpoints
                    // without an obs event; mirror that exactly.
                    if !matches!(err, RequestError::UnknownEndpoint(_)) {
                        self.observe_failure(env.to, err.label(), &env.request);
                    }
                    Err(err)
                }
                Fate::Deliver { fault, kind } => match records[index].take() {
                    Some(rec) => {
                        self.replay_record(env.from, env.to, kind, &rec);
                        rec.result
                    }
                    None => {
                        let mut buf = Vec::new();
                        self.deliver_with_fault(env.from, env.to, &env.request, &mut buf, fault)
                            .map(|()| buf)
                    }
                },
            };
            deliveries.push(Delivery { event: env.event, from: env.from, to: env.to, result });
        }
        deliveries
    }

    /// Replays a worker's delivery record into the shared counters and
    /// obs stream — the same accounting [`Network::deliver`] performs,
    /// applied on the coordinator in submission order so totals and event
    /// streams stay deterministic across thread counts.
    fn replay_record(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        kind: Option<&'static str>,
        rec: &WorkRecord,
    ) {
        for leg in &rec.legs {
            self.account(from, to, leg.request_len);
            if let Some(kind) = kind {
                self.breakdown.record(kind, leg.request_len);
            }
            self.account(to, from, leg.response_len);
            if let Some(kind) = kind {
                self.breakdown.record(kind, leg.response_len);
            }
            if self.obs.enabled() {
                let mut event = Event::new(self.endpoints[to.0 as usize].role, OpKind::NetRequest)
                    .with_traffic(2, (leg.request_len + leg.response_len) as u64)
                    .with_duration(leg.duration);
                if let Some(kind) = kind {
                    event = event.with_detail(kind);
                }
                if let Some(ctx) = &rec.trace {
                    event = event.with_trace(ctx.child());
                }
                self.obs.observe(event);
            }
        }
        if let Err(err) = &rec.result {
            self.observe_failure_ctx(to, err.label(), rec.trace.as_ref());
        }
    }

    /// Reports an undeliverable request (no traffic was counted); a
    /// traced request tags the failure with its causal context, so fault
    /// impacts land inside the right span tree.
    fn observe_failure(&self, to: EndpointId, why: &'static str, request: &[u8]) {
        let ctx = TraceContext::strip(request).map(|(ctx, _)| ctx);
        self.observe_failure_ctx(to, why, ctx.as_ref());
    }

    /// [`Network::observe_failure`] with the causal context already
    /// stripped (the queue path extracts it before handing the request
    /// bytes to a worker).
    fn observe_failure_ctx(&self, to: EndpointId, why: &'static str, ctx: Option<&TraceContext>) {
        if self.obs.enabled() {
            let mut event = Event::new(self.endpoints[to.0 as usize].role, OpKind::NetRequest)
                .failed()
                .with_detail(why);
            if let Some(ctx) = ctx {
                event = event.with_trace(ctx.child());
            }
            self.obs.observe(event);
        }
    }

    /// Records one extra relay hop for a message of `len` bytes (used by
    /// the indirection layer to account for i3 forwarding).
    pub fn account_relay(&mut self, len: usize) {
        self.relay_hops = self.relay_hops.saturating_add(1);
        self.global.record(len);
        if self.classifier.is_some() {
            self.breakdown.record("relay", len);
        }
    }

    /// Global traffic statistics.
    pub fn stats(&self) -> TrafficStats {
        self.global
    }

    /// Total relay hops accounted via [`Network::account_relay`].
    pub fn relay_hops(&self) -> u64 {
        self.relay_hops
    }

    /// Messages/bytes sent by an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint does not exist.
    pub fn sent_stats(&self, id: EndpointId) -> TrafficStats {
        self.endpoints[id.0 as usize].sent
    }

    /// Messages/bytes received by an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint does not exist.
    pub fn received_stats(&self, id: EndpointId) -> TrafficStats {
        self.endpoints[id.0 as usize].received
    }

    /// Combined sent + received stats for an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint does not exist.
    pub fn endpoint_stats(&self, id: EndpointId) -> TrafficStats {
        self.sent_stats(id).merged(self.received_stats(id))
    }

    /// Resets all counters (endpoints and handlers are preserved).
    pub fn reset_stats(&mut self) {
        self.global = TrafficStats::default();
        self.relay_hops = 0;
        self.breakdown.clear();
        for slot in &mut self.endpoints {
            slot.sent = TrafficStats::default();
            slot.received = TrafficStats::default();
        }
    }

    fn account(&mut self, from: EndpointId, to: EndpointId, len: usize) {
        self.global.record(len);
        if let Some(slot) = self.endpoints.get_mut(from.0 as usize) {
            slot.sent.record(len);
        }
        if let Some(slot) = self.endpoints.get_mut(to.0 as usize) {
            slot.received.record(len);
        }
    }

    fn slot_mut(&mut self, id: EndpointId) -> &mut EndpointSlot {
        &mut self.endpoints[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_counts_both_directions() {
        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        let resp = net.request(client, server, vec![1, 2, 3]).unwrap();
        assert_eq!(resp, vec![1, 2, 3]);
        assert_eq!(net.stats(), TrafficStats { messages: 2, bytes: 6 });
        assert_eq!(net.sent_stats(client).messages, 1);
        assert_eq!(net.received_stats(client).messages, 1);
        assert_eq!(net.endpoint_stats(server).messages, 2);
    }

    #[test]
    fn offline_endpoints_reject_requests() {
        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.set_online(server, false);
        assert_eq!(net.request(client, server, vec![1]), Err(RequestError::Offline(server)));
        net.set_online(server, true);
        assert!(net.request(client, server, vec![1]).is_ok());
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let mut net = Network::new();
        let client = net.register("client", |_: &[u8]| Vec::new());
        let ghost = EndpointId(99);
        assert_eq!(net.request(client, ghost, vec![]), Err(RequestError::UnknownEndpoint(ghost)));
    }

    #[test]
    fn nested_requests_work() {
        // A forwards to B, which answers; both legs are counted.
        let mut net = Network::new();
        let b = net.register("b", |req: &[u8]| {
            let mut out = req.to_vec();
            out.push(b'!');
            out
        });
        let a = net.register_with_net("a", move |net, req| {
            net.request(EndpointId(99), b, req.to_vec()).unwrap_or_default()
        });
        let client = net.register("client", |_: &[u8]| Vec::new());
        // client -> a -> b
        let resp = net.request(client, a, b"x".to_vec()).unwrap();
        assert_eq!(resp, b"x!");
        assert_eq!(net.stats().messages, 4);
    }

    #[test]
    fn reentrant_request_detected() {
        let mut net = Network::new();
        // Endpoint that calls itself.
        let id_holder = std::rc::Rc::new(std::cell::Cell::new(EndpointId(0)));
        let id_clone = id_holder.clone();
        let selfish = net.register_with_net("selfish", move |net, req| {
            match net.request(id_clone.get(), id_clone.get(), req.to_vec()) {
                Err(RequestError::ReentrantCall(_)) => b"cycle".to_vec(),
                other => panic!("expected cycle, got {other:?}"),
            }
        });
        id_holder.set(selfish);
        let client = net.register("client", |_: &[u8]| Vec::new());
        assert_eq!(net.request(client, selfish, vec![]).unwrap(), b"cycle");
    }

    #[test]
    fn reset_clears_counters_but_keeps_endpoints() {
        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.request(client, server, vec![0; 8]).unwrap();
        net.reset_stats();
        assert_eq!(net.stats(), TrafficStats::default());
        assert!(net.request(client, server, vec![1]).is_ok());
    }

    #[test]
    fn classified_breakdown_reconciles_with_global_stats() {
        let mut net = Network::new();
        net.set_classifier(|req: &[u8]| if req.first() == Some(&1) { "ping" } else { "other" });
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.request(client, server, vec![1, 1]).unwrap();
        net.request(client, server, vec![2]).unwrap();
        assert_eq!(net.breakdown().get("ping").messages, 2);
        assert_eq!(net.breakdown().get("other").messages, 2);
        assert_eq!(net.breakdown().total(), net.stats());
        net.reset_stats();
        assert!(net.breakdown().is_empty());
    }

    #[test]
    fn obs_reports_one_net_request_event_per_delivery() {
        use std::sync::Arc;
        use whopay_obs::{MemoryRecorder, Outcome, Tracer};

        let recorder = Arc::new(MemoryRecorder::new());
        let mut net = Network::new();
        net.set_obs(Obs::with_tracer(Tracer::new(recorder.clone())));
        let server = net.register("server", |req: &[u8]| req.to_vec());
        net.set_role(server, Role::Broker);
        let client = net.register("client", |_: &[u8]| Vec::new());

        net.request(client, server, vec![0; 5]).unwrap();
        net.set_online(server, false);
        let _ = net.request(client, server, vec![0; 5]);

        let events = recorder.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].role, Role::Broker);
        assert_eq!(events[0].op, OpKind::NetRequest);
        assert_eq!(events[0].messages, 2);
        assert_eq!(events[0].bytes, 10);
        assert_eq!(events[1].outcome, Outcome::Error);
        assert_eq!(events[1].messages, 0, "undelivered requests carry no traffic");
    }

    #[test]
    fn breakdown_exports_as_named_counters() {
        let mut net = Network::new();
        net.set_classifier(|_: &[u8]| "ping");
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.request(client, server, vec![0; 3]).unwrap();

        let metrics = Metrics::new();
        net.export_breakdown(&metrics);
        let report = metrics.report();
        assert_eq!(report.counters["net.ping.messages"], 2);
        assert_eq!(report.counters["net.ping.bytes"], 6);
    }

    #[test]
    fn request_into_reuses_buffer_and_counts_identically() {
        let mut net = Network::new();
        let server = net.register_writer("server", |_net, req, out| {
            out.extend_from_slice(req);
            out.push(b'!');
        });
        let client = net.register("client", |_: &[u8]| Vec::new());

        let mut resp = Vec::with_capacity(64);
        let ptr = resp.as_ptr();
        net.request_into(client, server, b"hi", &mut resp).unwrap();
        assert_eq!(resp, b"hi!");
        net.request_into(client, server, b"stale content replaced", &mut resp).unwrap();
        assert_eq!(resp, b"stale content replaced!");
        assert_eq!(resp.as_ptr(), ptr, "round trips reuse the caller's buffer");
        assert_eq!(net.stats(), TrafficStats { messages: 4, bytes: 2 + 3 + 22 + 23 });
    }

    #[test]
    fn request_and_request_into_account_the_same() {
        let mut a = Network::new();
        let mut b = Network::new();
        for net in [&mut a, &mut b] {
            net.set_classifier(|_: &[u8]| "ping");
            let server = net.register("server", |req: &[u8]| req.to_vec());
            let client = net.register("client", |_: &[u8]| Vec::new());
            net.set_role(server, Role::Broker);
            let _ = (server, client);
        }
        a.request(EndpointId(1), EndpointId(0), vec![7; 9]).unwrap();
        let mut resp = Vec::new();
        b.request_into(EndpointId(1), EndpointId(0), &[7; 9], &mut resp).unwrap();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.breakdown().get("ping"), b.breakdown().get("ping"));
        assert_eq!(a.sent_stats(EndpointId(1)), b.sent_stats(EndpointId(1)));
        assert_eq!(a.received_stats(EndpointId(0)), b.received_stats(EndpointId(0)));
    }

    #[test]
    fn names_are_kept_for_diagnostics() {
        let mut net = Network::new();
        let id = net.register("broker", |_: &[u8]| Vec::new());
        assert_eq!(net.name(id), Some("broker"));
        assert_eq!(net.name(EndpointId(42)), None);
    }

    #[test]
    fn dropped_requests_carry_no_traffic() {
        use crate::faults::{FaultPlan, FaultRates};

        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.install_faults(FaultInjector::new(
            FaultPlan::new().with_default(FaultRates { drop: 1.0, ..FaultRates::default() }),
            7,
        ));
        assert_eq!(net.request(client, server, vec![0; 5]), Err(RequestError::Lost(server)));
        assert_eq!(net.stats(), TrafficStats::default(), "lost requests count no traffic");
        assert_eq!(net.fault_stats().drops, 1);

        let injector = net.clear_faults().expect("injector was installed");
        assert_eq!(injector.history().len(), 1);
        assert!(net.request(client, server, vec![0; 5]).is_ok(), "cleared faults stop injecting");
    }

    #[test]
    fn timeouts_apply_the_request_but_starve_the_caller() {
        use crate::faults::{FaultPlan, FaultRates};
        use std::sync::Arc;
        use whopay_obs::{MemoryRecorder, Outcome, Tracer};

        let recorder = Arc::new(MemoryRecorder::new());
        let mut net = Network::new();
        net.set_obs(Obs::with_tracer(Tracer::new(recorder.clone())));
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.install_faults(FaultInjector::new(
            FaultPlan::new().with_default(FaultRates { timeout: 1.0, ..FaultRates::default() }),
            7,
        ));

        let mut resp = vec![1, 2, 3];
        let err = net.request_into(client, server, &[0; 5], &mut resp);
        assert_eq!(err, Err(RequestError::TimedOut(server)));
        assert!(resp.is_empty(), "the late response never reaches the caller");
        // The request *was* delivered and applied, so both legs are counted.
        assert_eq!(net.stats(), TrafficStats { messages: 2, bytes: 10 });

        let events = recorder.take();
        assert_eq!(events.len(), 2, "one delivery event plus one failure event");
        assert_eq!(events[0].outcome, Outcome::Ok);
        assert_eq!(events[0].messages, 2);
        assert_eq!(events[1].outcome, Outcome::Error);
        assert_eq!(events[1].messages, 0, "the failure event carries no traffic");
    }

    #[test]
    fn duplicates_deliver_twice_and_count_four_messages() {
        use crate::faults::{FaultPlan, FaultRates};
        use std::cell::Cell;
        use std::rc::Rc;

        let calls = Rc::new(Cell::new(0u32));
        let seen = calls.clone();
        let mut net = Network::new();
        let server = net.register("server", move |req: &[u8]| {
            seen.set(seen.get() + 1);
            req.to_vec()
        });
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.install_faults(FaultInjector::new(
            FaultPlan::new().with_default(FaultRates { duplicate: 1.0, ..FaultRates::default() }),
            7,
        ));

        let resp = net.request(client, server, vec![0; 5]).unwrap();
        assert_eq!(resp, vec![0; 5]);
        assert_eq!(calls.get(), 2, "the handler ran once per delivered copy");
        assert_eq!(net.stats(), TrafficStats { messages: 4, bytes: 20 });
        assert_eq!(net.fault_stats().duplicates, 1);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        use crate::faults::{FaultPlan, FaultRates};

        let mut net = Network::new();
        // Echo server: a corrupted request comes straight back, so the
        // caller can count the damage regardless of which side was hit.
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.install_faults(FaultInjector::new(
            FaultPlan::new().with_default(FaultRates { corrupt: 1.0, ..FaultRates::default() }),
            7,
        ));

        let resp = net.request(client, server, vec![0u8; 8]).unwrap();
        let flipped: u32 = resp.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit differs from the original payload");
        let stats = net.fault_stats();
        assert_eq!(stats.corrupt_requests + stats.corrupt_responses, 1);
    }

    #[test]
    fn partition_windows_sever_the_link_and_then_heal() {
        use crate::faults::FaultPlan;

        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        // Deliveries 0 and 1 are blocked; delivery 2 goes through.
        net.install_faults(FaultInjector::new(FaultPlan::new().partition(client, server, 0, 2), 7));

        assert_eq!(net.request(client, server, vec![1]), Err(RequestError::Partitioned(server)));
        assert_eq!(net.request(client, server, vec![1]), Err(RequestError::Partitioned(server)));
        assert!(net.request(client, server, vec![1]).is_ok(), "the window closes");
        assert_eq!(net.fault_stats().partitions, 2);
    }

    #[test]
    fn fault_metrics_export_under_expected_names() {
        use crate::faults::{FaultPlan, FaultRates};

        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.install_faults(FaultInjector::new(
            FaultPlan::new().with_default(FaultRates { drop: 1.0, ..FaultRates::default() }),
            7,
        ));
        let _ = net.request(client, server, vec![1]);

        let metrics = Metrics::new();
        net.export_fault_metrics(&metrics);
        let report = metrics.report();
        assert_eq!(report.counters["net.fault.decisions"], 1);
        assert_eq!(report.counters["net.fault.drops"], 1);
    }

    #[test]
    fn reentrant_calls_fail_fatally_and_are_never_retried() {
        use crate::retry::{ErrorClass, RetryPolicy};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::cell::Cell;
        use std::rc::Rc;

        let mut net = Network::new();
        // The server calls itself while handling — a protocol cycle. The
        // nested call runs under a retry policy; the dedicated
        // ReentrantCall variant is classified fatal, so the cycle is
        // attempted exactly once instead of being retried to exhaustion.
        let policy = Rc::new(RetryPolicy::new(5));
        let inner_policy = policy.clone();
        let server_slot = Rc::new(Cell::new(EndpointId(0)));
        let server_id = server_slot.clone();
        let server = net.register_writer("server", move |net, _req, out| {
            let me = server_id.get();
            let mut rng = StdRng::seed_from_u64(7);
            let mut inner = Vec::new();
            let nested = inner_policy.run(&mut rng, |_| net.request_into(me, me, b"cycle", &mut inner));
            assert_eq!(nested, Err(RequestError::ReentrantCall(me)));
            out.push(1);
        });
        server_slot.set(server);
        let client = net.register("client", |_: &[u8]| Vec::new());

        assert_eq!(RequestError::ReentrantCall(server).class(), ErrorClass::Fatal);
        assert_eq!(RequestError::ReentrantCall(server).label(), "reentrant call");
        net.request(client, server, b"go".to_vec()).unwrap();
        let stats = policy.stats();
        assert_eq!(stats.attempts, 1, "a fatal reentrant call is attempted exactly once");
        assert_eq!(stats.fatal, 1);
        assert_eq!(stats.retries, 0);
    }
}

//! The in-memory request/response fabric.

use std::fmt;

use crate::stats::TrafficStats;

/// Identifies a registered endpoint on a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct EndpointId(u64);

impl EndpointId {
    /// The raw numeric id.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Why a request could not be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// No endpoint with that id exists.
    UnknownEndpoint(EndpointId),
    /// The target endpoint is currently offline (peer churn).
    Offline(EndpointId),
    /// The target is already handling a request on this call stack —
    /// a protocol cycle (e.g. an owner transferring through itself).
    ReentrantCall(EndpointId),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::UnknownEndpoint(id) => write!(f, "unknown endpoint {id}"),
            RequestError::Offline(id) => write!(f, "endpoint {id} is offline"),
            RequestError::ReentrantCall(id) => write!(f, "re-entrant request to endpoint {id}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// A request handler: consumes the request payload, may issue nested
/// requests through the network it is handed, and produces a response.
pub type Handler = Box<dyn FnMut(&mut Network, &[u8]) -> Vec<u8>>;

struct EndpointSlot {
    name: String,
    online: bool,
    /// `None` while the handler is executing (re-entrancy guard).
    handler: Option<Handler>,
    sent: TrafficStats,
    received: TrafficStats,
}

/// A deterministic in-memory message fabric.
///
/// Endpoints register a handler; [`Network::request`] synchronously routes
/// a request to the target's handler and returns its response, counting
/// both directions in the traffic statistics. Handlers receive `&mut
/// Network` and may issue nested requests (the fabric temporarily parks the
/// running handler, so cycles are detected rather than deadlocking).
pub struct Network {
    endpoints: Vec<EndpointSlot>,
    global: TrafficStats,
    /// Extra per-message hops attributed to relays (e.g. i3 forwarding).
    relay_hops: u64,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("endpoints", &self.endpoints.len())
            .field("global", &self.global)
            .field("relay_hops", &self.relay_hops)
            .finish()
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Network { endpoints: Vec::new(), global: TrafficStats::default(), relay_hops: 0 }
    }

    /// Registers an endpoint with a simple payload-to-payload handler.
    pub fn register<F>(&mut self, name: &str, mut handler: F) -> EndpointId
    where
        F: FnMut(&[u8]) -> Vec<u8> + 'static,
    {
        self.register_with_net(name, move |_net, req| handler(req))
    }

    /// Registers an endpoint whose handler may issue nested requests.
    pub fn register_with_net<F>(&mut self, name: &str, handler: F) -> EndpointId
    where
        F: FnMut(&mut Network, &[u8]) -> Vec<u8> + 'static,
    {
        let id = EndpointId(self.endpoints.len() as u64);
        self.endpoints.push(EndpointSlot {
            name: name.to_string(),
            online: true,
            handler: Some(Box::new(handler)),
            sent: TrafficStats::default(),
            received: TrafficStats::default(),
        });
        id
    }

    /// Marks an endpoint online or offline. Requests to an offline endpoint
    /// fail with [`RequestError::Offline`] — this is how peer churn reaches
    /// the protocol layer.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint does not exist.
    pub fn set_online(&mut self, id: EndpointId, online: bool) {
        self.slot_mut(id).online = online;
    }

    /// Whether the endpoint is currently online.
    pub fn is_online(&self, id: EndpointId) -> bool {
        self.endpoints.get(id.0 as usize).is_some_and(|s| s.online)
    }

    /// The registration name of an endpoint (diagnostics only).
    pub fn name(&self, id: EndpointId) -> Option<&str> {
        self.endpoints.get(id.0 as usize).map(|s| s.name.as_str())
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Sends `request` from `from` to `to` and returns the response.
    ///
    /// Both the request and the response are counted, against the global
    /// stats and against each endpoint's sent/received counters.
    ///
    /// # Errors
    ///
    /// * [`RequestError::UnknownEndpoint`] if `to` was never registered.
    /// * [`RequestError::Offline`] if `to` is offline.
    /// * [`RequestError::ReentrantCall`] if `to` is already on the current
    ///   handling stack.
    pub fn request(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        request: Vec<u8>,
    ) -> Result<Vec<u8>, RequestError> {
        if to.0 as usize >= self.endpoints.len() {
            return Err(RequestError::UnknownEndpoint(to));
        }
        if !self.endpoints[to.0 as usize].online {
            return Err(RequestError::Offline(to));
        }
        let mut handler = self.endpoints[to.0 as usize]
            .handler
            .take()
            .ok_or(RequestError::ReentrantCall(to))?;

        self.account(from, to, request.len());
        let response = handler(self, &request);
        self.account(to, from, response.len());

        self.endpoints[to.0 as usize].handler = Some(handler);
        Ok(response)
    }

    /// Records one extra relay hop for a message of `len` bytes (used by
    /// the indirection layer to account for i3 forwarding).
    pub fn account_relay(&mut self, len: usize) {
        self.relay_hops += 1;
        self.global.record(len);
    }

    /// Global traffic statistics.
    pub fn stats(&self) -> TrafficStats {
        self.global
    }

    /// Total relay hops accounted via [`Network::account_relay`].
    pub fn relay_hops(&self) -> u64 {
        self.relay_hops
    }

    /// Messages/bytes sent by an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint does not exist.
    pub fn sent_stats(&self, id: EndpointId) -> TrafficStats {
        self.endpoints[id.0 as usize].sent
    }

    /// Messages/bytes received by an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint does not exist.
    pub fn received_stats(&self, id: EndpointId) -> TrafficStats {
        self.endpoints[id.0 as usize].received
    }

    /// Combined sent + received stats for an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint does not exist.
    pub fn endpoint_stats(&self, id: EndpointId) -> TrafficStats {
        self.sent_stats(id).merged(self.received_stats(id))
    }

    /// Resets all counters (endpoints and handlers are preserved).
    pub fn reset_stats(&mut self) {
        self.global = TrafficStats::default();
        self.relay_hops = 0;
        for slot in &mut self.endpoints {
            slot.sent = TrafficStats::default();
            slot.received = TrafficStats::default();
        }
    }

    fn account(&mut self, from: EndpointId, to: EndpointId, len: usize) {
        self.global.record(len);
        if let Some(slot) = self.endpoints.get_mut(from.0 as usize) {
            slot.sent.record(len);
        }
        if let Some(slot) = self.endpoints.get_mut(to.0 as usize) {
            slot.received.record(len);
        }
    }

    fn slot_mut(&mut self, id: EndpointId) -> &mut EndpointSlot {
        &mut self.endpoints[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_counts_both_directions() {
        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        let resp = net.request(client, server, vec![1, 2, 3]).unwrap();
        assert_eq!(resp, vec![1, 2, 3]);
        assert_eq!(net.stats(), TrafficStats { messages: 2, bytes: 6 });
        assert_eq!(net.sent_stats(client).messages, 1);
        assert_eq!(net.received_stats(client).messages, 1);
        assert_eq!(net.endpoint_stats(server).messages, 2);
    }

    #[test]
    fn offline_endpoints_reject_requests() {
        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.set_online(server, false);
        assert_eq!(net.request(client, server, vec![1]), Err(RequestError::Offline(server)));
        net.set_online(server, true);
        assert!(net.request(client, server, vec![1]).is_ok());
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let mut net = Network::new();
        let client = net.register("client", |_: &[u8]| Vec::new());
        let ghost = EndpointId(99);
        assert_eq!(net.request(client, ghost, vec![]), Err(RequestError::UnknownEndpoint(ghost)));
    }

    #[test]
    fn nested_requests_work() {
        // A forwards to B, which answers; both legs are counted.
        let mut net = Network::new();
        let b = net.register("b", |req: &[u8]| {
            let mut out = req.to_vec();
            out.push(b'!');
            out
        });
        let a = net.register_with_net("a", move |net, req| {
            net.request(EndpointId(99), b, req.to_vec()).unwrap_or_default()
        });
        let client = net.register("client", |_: &[u8]| Vec::new());
        // client -> a -> b
        let resp = net.request(client, a, b"x".to_vec()).unwrap();
        assert_eq!(resp, b"x!");
        assert_eq!(net.stats().messages, 4);
    }

    #[test]
    fn reentrant_request_detected() {
        let mut net = Network::new();
        // Endpoint that calls itself.
        let id_holder = std::rc::Rc::new(std::cell::Cell::new(EndpointId(0)));
        let id_clone = id_holder.clone();
        let selfish = net.register_with_net("selfish", move |net, req| {
            match net.request(id_clone.get(), id_clone.get(), req.to_vec()) {
                Err(RequestError::ReentrantCall(_)) => b"cycle".to_vec(),
                other => panic!("expected cycle, got {other:?}"),
            }
        });
        id_holder.set(selfish);
        let client = net.register("client", |_: &[u8]| Vec::new());
        assert_eq!(net.request(client, selfish, vec![]).unwrap(), b"cycle");
    }

    #[test]
    fn reset_clears_counters_but_keeps_endpoints() {
        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.request(client, server, vec![0; 8]).unwrap();
        net.reset_stats();
        assert_eq!(net.stats(), TrafficStats::default());
        assert!(net.request(client, server, vec![1]).is_ok());
    }

    #[test]
    fn names_are_kept_for_diagnostics() {
        let mut net = Network::new();
        let id = net.register("broker", |_: &[u8]| Vec::new());
        assert_eq!(net.name(id), Some("broker"));
        assert_eq!(net.name(EndpointId(42)), None);
    }
}

//! The event-queue delivery path: submitted requests drained by a
//! worker pool.
//!
//! [`Network::request_into`] is a synchronous, recursive call — the
//! caller's stack *is* the delivery schedule, so everything runs on one
//! OS thread. The queue decouples submission from delivery:
//! [`Network::submit`] enqueues an envelope and returns an [`EventId`];
//! [`Network::drain`] delivers everything queued and returns the
//! responses. Draining proceeds in three phases:
//!
//! 1. **Fate** — in submission order, the coordinator resolves
//!    unknown/offline targets and consults the fault injector. Fault
//!    draws key on the delivery index (see [`crate::faults`]), so this
//!    up-front evaluation produces the identical schedule a sequential
//!    delivery loop would.
//! 2. **Delivery** — events whose target registered via
//!    [`Network::register_parallel`] are grouped by target and fanned
//!    across `min(WHOPAY_NET_THREADS, groups)` scoped workers; each
//!    worker preserves its targets' per-endpoint submission order.
//!    Events for classic (non-`Send`) endpoints run inline on the
//!    coordinator. At one thread everything runs inline, in strict
//!    submission order — byte- and counter-identical to calling
//!    [`Network::request_into`] per event.
//! 3. **Accounting** — the coordinator applies traffic counters,
//!    per-kind breakdown, and obs events for worker deliveries in
//!    submission order, so stats and event streams are deterministic at
//!    any thread count.
//!
//! Semantics note: fates for a drained batch are all decided before any
//! handler runs. A classic handler that issues *nested* synchronous
//! requests during the drain draws fault decisions after the batch's —
//! the one observable difference from interleaved sequential delivery,
//! and only when queue and nested sync calls mix under faults.
//!
//! [`Network::request_into`]: crate::Network::request_into
//! [`Network::submit`]: crate::Network::submit
//! [`Network::drain`]: crate::Network::drain
//! [`Network::register_parallel`]: crate::Network::register_parallel

use std::fmt;
use std::time::{Duration, Instant};

use whopay_obs::TraceContext;

use crate::faults::{flip_bit, FaultKind};
use crate::network::{EndpointId, ParallelHandler, RequestError};

/// Environment variable overriding the drain worker count (`0` or unset
/// means single-threaded, preserving synchronous semantics exactly).
pub const NET_THREADS_ENV: &str = "WHOPAY_NET_THREADS";

/// Resolves the drain worker count from [`NET_THREADS_ENV`]. Unlike the
/// verify pool, the *default is 1*: multi-threaded delivery is an
/// explicit opt-in because it reorders classic-endpoint handlers
/// relative to parallel ones within a drain.
pub(crate) fn net_threads_from_env() -> usize {
    std::env::var(NET_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Identifies one submitted event, in submission order per network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw submission index.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev{}", self.0)
    }
}

/// One queued request awaiting [`Network::drain`].
///
/// [`Network::drain`]: crate::Network::drain
#[derive(Debug)]
pub(crate) struct Envelope {
    pub event: EventId,
    pub from: EndpointId,
    pub to: EndpointId,
    pub request: Vec<u8>,
}

/// The outcome of one drained event.
#[derive(Debug)]
pub struct Delivery {
    /// The id [`Network::submit`] returned for this event.
    ///
    /// [`Network::submit`]: crate::Network::submit
    pub event: EventId,
    /// Sender.
    pub from: EndpointId,
    /// Target.
    pub to: EndpointId,
    /// The response, or why delivery failed — exactly the result the
    /// synchronous path would have returned for the same fault fate.
    pub result: Result<Vec<u8>, RequestError>,
}

/// What phase-one decided for one event (fault fates and errors resolved
/// before any handler runs).
#[derive(Debug)]
pub(crate) enum Fate {
    /// Deliver to the target, applying `fault` semantics if set.
    Deliver { fault: Option<FaultKind>, kind: Option<&'static str> },
    /// Fail without delivering (unknown/offline/drop/partition).
    Fail(RequestError),
}

/// One accounted leg of a worker delivery: request and response byte
/// counts plus the handler's wall time (measured only when obs is on).
#[derive(Debug)]
pub(crate) struct Leg {
    pub request_len: usize,
    pub response_len: usize,
    pub duration: Duration,
}

/// What a worker did for one event, replayed into the coordinator's
/// accounting in submission order.
#[derive(Debug)]
pub(crate) struct WorkRecord {
    pub index: usize,
    pub legs: Vec<Leg>,
    pub result: Result<Vec<u8>, RequestError>,
    /// Causal context stripped from the request before it moved into the
    /// worker, so replayed obs events parent correctly.
    pub trace: Option<TraceContext>,
}

/// One event assigned to a worker (fate already decided as `Deliver`).
#[derive(Debug)]
pub(crate) struct WorkItem {
    pub index: usize,
    pub to: EndpointId,
    pub request: Vec<u8>,
    pub fault: Option<FaultKind>,
    pub trace: Option<TraceContext>,
}

/// Runs one parallel-endpoint delivery with full fault semantics,
/// mirroring the synchronous path's `request_into` match arm for arm.
/// The handler sees the same payloads in the same per-endpoint order; the
/// coordinator later replays the returned legs into the shared counters.
pub(crate) fn run_item(handler: &mut ParallelHandler, item: WorkItem, timed: bool) -> WorkRecord {
    let mut legs = Vec::with_capacity(1);
    let mut response = Vec::new();
    let mut deliver = |request: &[u8], response: &mut Vec<u8>| {
        let start = timed.then(Instant::now);
        response.clear();
        handler(request, response);
        legs.push(Leg {
            request_len: request.len(),
            response_len: response.len(),
            duration: start.map(|s| s.elapsed()).unwrap_or_default(),
        });
    };
    let result = match item.fault {
        None => {
            deliver(&item.request, &mut response);
            Ok(())
        }
        Some(FaultKind::Corrupt { in_request: true, bit }) => {
            let mut corrupted = item.request.clone();
            flip_bit(&mut corrupted, bit);
            deliver(&corrupted, &mut response);
            Ok(())
        }
        Some(FaultKind::Corrupt { in_request: false, bit }) => {
            deliver(&item.request, &mut response);
            flip_bit(&mut response, bit);
            Ok(())
        }
        Some(FaultKind::Duplicate) => {
            deliver(&item.request, &mut response);
            deliver(&item.request, &mut response);
            Ok(())
        }
        Some(FaultKind::Timeout) => {
            deliver(&item.request, &mut response);
            response.clear();
            Err(RequestError::TimedOut(item.to))
        }
        // Drop and Partition never reach a worker: phase one fails them.
        Some(FaultKind::Drop) => Err(RequestError::Lost(item.to)),
        Some(FaultKind::Partition) => Err(RequestError::Partitioned(item.to)),
    };
    WorkRecord { index: item.index, legs, result: result.map(|()| response), trace: item.trace }
}

//! Retryable-vs-fatal error classification and the resilient call loop.
//!
//! The fault layer ([`crate::faults`]) makes deliveries fail in transient
//! ways (lost, timed out, partitioned) that a resend can fix, alongside
//! the pre-existing permanent ways (unknown endpoint, re-entrant cycle)
//! that it cannot. [`Classify`] is the single taxonomy both the retry
//! loop and observability failure labels draw from, and [`RetryPolicy`]
//! is the budgeted exponential-backoff loop the protocol layer wraps
//! around its client calls. Backoff time is *simulated* — the fabric is
//! synchronous — but the budget arithmetic and RNG-drawn jitter match
//! what a wall-clock implementation would do, and every failed attempt
//! consumes exactly one jitter draw so retry schedules are reproducible.

use std::cell::Cell;

use whopay_obs::Metrics;

use crate::indirection::IndirectionError;
use crate::network::RequestError;

/// Whether an error is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Transient: a resend of the identical request may succeed.
    Retryable,
    /// Permanent: resending the identical request cannot help.
    Fatal,
}

/// The one classification every failure-reporting layer shares: the retry
/// loop keys its continue/give-up decision on [`Classify::class`], and
/// the network's failed-delivery obs events use [`Classify::label`] as
/// their detail string.
pub trait Classify {
    /// Retryable or fatal.
    fn class(&self) -> ErrorClass;
    /// Stable label for metrics/obs (lowercase, stateless).
    fn label(&self) -> &'static str;
}

impl Classify for RequestError {
    fn class(&self) -> ErrorClass {
        match self {
            // Offline is fatal here: the fabric is synchronous, so no time
            // passes between attempts — the protocol's downtime fallback
            // (broker stand-in) is the designed reaction, not a resend.
            RequestError::UnknownEndpoint(_)
            | RequestError::Offline(_)
            | RequestError::ReentrantCall(_) => ErrorClass::Fatal,
            RequestError::Lost(_) | RequestError::TimedOut(_) | RequestError::Partitioned(_) => {
                ErrorClass::Retryable
            }
        }
    }

    fn label(&self) -> &'static str {
        match self {
            RequestError::UnknownEndpoint(_) => "unknown endpoint",
            RequestError::Offline(_) => "offline",
            RequestError::ReentrantCall(_) => "reentrant call",
            RequestError::Lost(_) => "lost",
            RequestError::TimedOut(_) => "timed out",
            RequestError::Partitioned(_) => "partitioned",
        }
    }
}

impl Classify for IndirectionError {
    fn class(&self) -> ErrorClass {
        match self {
            // A dangling handle is a configuration state, not noise.
            IndirectionError::DanglingHandle(_) => ErrorClass::Fatal,
            IndirectionError::Delivery(e) => e.class(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            IndirectionError::DanglingHandle(_) => "dangling handle",
            IndirectionError::Delivery(e) => e.label(),
        }
    }
}

/// Counters a [`RetryPolicy`] accumulates across calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retry-wrapped calls started.
    pub calls: u64,
    /// Individual attempts (first tries + retries).
    pub attempts: u64,
    /// Attempts beyond the first.
    pub retries: u64,
    /// Calls that eventually succeeded.
    pub successes: u64,
    /// Calls abandoned on a fatal error.
    pub fatal: u64,
    /// Calls abandoned with attempts or budget exhausted.
    pub exhausted: u64,
    /// Total simulated backoff time spent (ms).
    pub backoff_ms: u64,
}

impl RetryStats {
    /// Exports the counters into a metrics registry under `retry.*`.
    pub fn export_metrics(&self, metrics: &Metrics) {
        metrics.counter("retry.calls").add(self.calls);
        metrics.counter("retry.attempts").add(self.attempts);
        metrics.counter("retry.retries").add(self.retries);
        metrics.counter("retry.successes").add(self.successes);
        metrics.counter("retry.fatal").add(self.fatal);
        metrics.counter("retry.exhausted").add(self.exhausted);
        metrics.counter("retry.backoff_ms").add(self.backoff_ms);
    }
}

/// Interior-mutable counter cells, so a shared `&RetryPolicy` can be
/// threaded through deeply-borrowing call sites.
#[derive(Debug, Clone, Default)]
struct StatCells {
    calls: Cell<u64>,
    attempts: Cell<u64>,
    retries: Cell<u64>,
    successes: Cell<u64>,
    fatal: Cell<u64>,
    exhausted: Cell<u64>,
    backoff_ms: Cell<u64>,
}

/// Budgeted exponential backoff with RNG-drawn jitter.
///
/// An attempt that fails with a [`ErrorClass::Retryable`] error is
/// retried after a simulated wait of `backoff + jitter` ms (jitter
/// uniform in `[0, backoff)`), with the backoff doubling up to a cap;
/// the call gives up when attempts run out, when the accumulated wait
/// would exceed the deadline budget, or immediately on a
/// [`ErrorClass::Fatal`] error.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_backoff_ms: u64,
    max_backoff_ms: u64,
    budget_ms: u64,
    stats: StatCells,
}

impl RetryPolicy {
    /// A policy allowing up to `max_attempts` attempts with the default
    /// backoff curve (10 ms base, 1 s cap, 5 s budget).
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
            budget_ms: 5_000,
            stats: StatCells::default(),
        }
    }

    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        Self::new(1)
    }

    /// Sets the backoff curve (base and cap, simulated ms).
    pub fn backoff(mut self, base_ms: u64, max_ms: u64) -> Self {
        self.base_backoff_ms = base_ms.max(1);
        self.max_backoff_ms = max_ms.max(self.base_backoff_ms);
        self
    }

    /// Sets the per-call deadline budget (simulated ms): the loop stops
    /// retrying once the accumulated backoff would exceed it.
    pub fn budget(mut self, budget_ms: u64) -> Self {
        self.budget_ms = budget_ms;
        self
    }

    /// Runs `attempt` (passed the 0-based attempt index) until it
    /// succeeds, fails fatally, or the policy gives up. The terminal
    /// error of an abandoned call is returned unchanged.
    ///
    /// # Errors
    ///
    /// The last attempt's error when the call is abandoned.
    pub fn run<T, E, R, F>(&self, rng: &mut R, mut attempt: F) -> Result<T, E>
    where
        E: Classify,
        R: rand::Rng + ?Sized,
        F: FnMut(u32) -> Result<T, E>,
    {
        self.stats.calls.set(self.stats.calls.get() + 1);
        let mut elapsed = 0u64;
        let mut backoff = self.base_backoff_ms;
        for i in 0..self.max_attempts {
            self.stats.attempts.set(self.stats.attempts.get() + 1);
            if i > 0 {
                self.stats.retries.set(self.stats.retries.get() + 1);
            }
            let err = match attempt(i) {
                Ok(v) => {
                    self.stats.successes.set(self.stats.successes.get() + 1);
                    return Ok(v);
                }
                Err(e) => e,
            };
            if err.class() == ErrorClass::Fatal {
                self.stats.fatal.set(self.stats.fatal.get() + 1);
                return Err(err);
            }
            // Exactly one jitter draw per failed retryable attempt (even
            // the last), so retry schedules replay deterministically.
            let wait = backoff + rng.next_u64() % backoff;
            if i + 1 >= self.max_attempts || elapsed + wait > self.budget_ms {
                self.stats.exhausted.set(self.stats.exhausted.get() + 1);
                return Err(err);
            }
            elapsed += wait;
            self.stats.backoff_ms.set(self.stats.backoff_ms.get() + wait);
            backoff = (backoff * 2).min(self.max_backoff_ms);
        }
        unreachable!("loop returns on the final attempt")
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> RetryStats {
        RetryStats {
            calls: self.stats.calls.get(),
            attempts: self.stats.attempts.get(),
            retries: self.stats.retries.get(),
            successes: self.stats.successes.get(),
            fatal: self.stats.fatal.get(),
            exhausted: self.stats.exhausted.get(),
            backoff_ms: self.stats.backoff_ms.get(),
        }
    }

    /// Resets the counters.
    pub fn reset_stats(&self) {
        self.stats.calls.set(0);
        self.stats.attempts.set(0);
        self.stats.retries.set(0);
        self.stats.successes.set(0);
        self.stats.fatal.set(0);
        self.stats.exhausted.set(0);
        self.stats.backoff_ms.set(0);
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;
    use crate::network::EndpointId;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn transient_errors_retry_until_success() {
        let policy = RetryPolicy::new(5);
        let mut failures = 3;
        let out: Result<u32, RequestError> = policy.run(&mut rng(), |i| {
            if failures > 0 {
                failures -= 1;
                Err(RequestError::Lost(EndpointId::from_index(1)))
            } else {
                Ok(i)
            }
        });
        assert_eq!(out, Ok(3));
        let stats = policy.stats();
        assert_eq!(stats.attempts, 4);
        assert_eq!(stats.retries, 3);
        assert_eq!(stats.successes, 1);
        assert!(stats.backoff_ms > 0);
    }

    #[test]
    fn fatal_errors_never_retry() {
        for fatal in [
            RequestError::UnknownEndpoint(EndpointId::from_index(9)),
            RequestError::Offline(EndpointId::from_index(9)),
            RequestError::ReentrantCall(EndpointId::from_index(9)),
        ] {
            let policy = RetryPolicy::new(10);
            let mut calls = 0;
            let out: Result<(), RequestError> = policy.run(&mut rng(), |_| {
                calls += 1;
                Err(fatal)
            });
            assert_eq!(out, Err(fatal));
            assert_eq!(calls, 1, "{fatal:?} must not be retried");
            assert_eq!(policy.stats().fatal, 1);
        }
    }

    #[test]
    fn attempts_exhaust() {
        let policy = RetryPolicy::new(3);
        let mut calls = 0;
        let out: Result<(), RequestError> = policy.run(&mut rng(), |_| {
            calls += 1;
            Err(RequestError::TimedOut(EndpointId::from_index(0)))
        });
        assert!(out.is_err());
        assert_eq!(calls, 3);
        assert_eq!(policy.stats().exhausted, 1);
    }

    #[test]
    fn budget_limits_retries_before_attempts_do() {
        let policy = RetryPolicy::new(100).backoff(50, 50).budget(120);
        let mut calls = 0;
        let out: Result<(), RequestError> = policy.run(&mut rng(), |_| {
            calls += 1;
            Err(RequestError::Lost(EndpointId::from_index(0)))
        });
        assert!(out.is_err());
        // Each wait is in [50, 100); at most two fit a 120 ms budget.
        assert!(calls <= 3, "budget should stop the loop early, got {calls} attempts");
        assert_eq!(policy.stats().exhausted, 1);
    }

    #[test]
    fn same_seed_same_retry_schedule() {
        let run = |seed: u64| {
            let policy = RetryPolicy::new(6);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut left = 4;
            let _: Result<(), RequestError> = policy.run(&mut rng, |_| {
                left -= 1;
                if left == 0 {
                    Ok(())
                } else {
                    Err(RequestError::Lost(EndpointId::from_index(0)))
                }
            });
            policy.stats()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn classification_covers_indirection_errors() {
        use crate::indirection::{Handle, IndirectionError};
        let dangling = IndirectionError::DanglingHandle(Handle::from_bytes(b"x"));
        assert_eq!(dangling.class(), ErrorClass::Fatal);
        let lost = IndirectionError::Delivery(RequestError::Lost(EndpointId::from_index(2)));
        assert_eq!(lost.class(), ErrorClass::Retryable);
        assert_eq!(lost.label(), "lost");
    }

    #[test]
    fn stats_export_under_expected_names() {
        let policy = RetryPolicy::new(2);
        let _: Result<(), RequestError> =
            policy.run(&mut rng(), |_| Err(RequestError::Lost(EndpointId::from_index(0))));
        let metrics = Metrics::new();
        policy.stats().export_metrics(&metrics);
        let report = metrics.report();
        assert_eq!(report.counters["retry.calls"], 1);
        assert_eq!(report.counters["retry.attempts"], 2);
        assert!(report.counters.contains_key("retry.backoff_ms"));
    }
}

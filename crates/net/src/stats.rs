//! Traffic accounting.

/// Message and byte counters, kept globally and per endpoint.
///
/// The WhoPay paper measures communication load in *messages* ("we will let
/// the communication cost of each operation be proportional to the number
/// of messages sent/received rather than the number of bits", §6.2); bytes
/// are tracked too so experiments can report both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages counted (requests and responses each count once).
    pub messages: u64,
    /// Payload bytes carried by those messages.
    pub bytes: u64,
}

impl TrafficStats {
    /// Records one message of `len` payload bytes.
    pub fn record(&mut self, len: usize) {
        self.messages += 1;
        self.bytes += len as u64;
    }

    /// Sums two stats (e.g. sent + received).
    pub fn merged(self, other: TrafficStats) -> TrafficStats {
        TrafficStats { messages: self.messages + other.messages, bytes: self.bytes + other.bytes }
    }
}

impl std::fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} msgs / {} bytes", self.messages, self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = TrafficStats::default();
        s.record(10);
        s.record(5);
        assert_eq!(s, TrafficStats { messages: 2, bytes: 15 });
    }

    #[test]
    fn merged_adds_fields() {
        let a = TrafficStats { messages: 1, bytes: 2 };
        let b = TrafficStats { messages: 3, bytes: 4 };
        assert_eq!(a.merged(b), TrafficStats { messages: 4, bytes: 6 });
    }

    #[test]
    fn display_is_readable() {
        let s = TrafficStats { messages: 2, bytes: 15 };
        assert_eq!(s.to_string(), "2 msgs / 15 bytes");
    }
}

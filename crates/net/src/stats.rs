//! Traffic accounting.

use std::collections::BTreeMap;

/// Message and byte counters, kept globally and per endpoint.
///
/// The WhoPay paper measures communication load in *messages* ("we will let
/// the communication cost of each operation be proportional to the number
/// of messages sent/received rather than the number of bits", §6.2); bytes
/// are tracked too so experiments can report both.
///
/// All arithmetic saturates: long experiment sweeps must degrade to a
/// pinned counter, never wrap around and report tiny loads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages counted (requests and responses each count once).
    pub messages: u64,
    /// Payload bytes carried by those messages.
    pub bytes: u64,
}

impl TrafficStats {
    /// Records one message of `len` payload bytes (saturating).
    pub fn record(&mut self, len: usize) {
        self.messages = self.messages.saturating_add(1);
        self.bytes = self.bytes.saturating_add(len as u64);
    }

    /// Sums two stats (e.g. sent + received), saturating.
    #[must_use]
    pub fn merged(self, other: TrafficStats) -> TrafficStats {
        TrafficStats {
            messages: self.messages.saturating_add(other.messages),
            bytes: self.bytes.saturating_add(other.bytes),
        }
    }
}

impl std::fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} msgs / {} bytes", self.messages, self.bytes)
    }
}

/// Per-message-kind traffic totals.
///
/// [`crate::Network`] fills one of these when a classifier is installed
/// (see `Network::set_classifier`): every delivered request and its
/// response are recorded under the label the classifier assigned to the
/// request, so experiments can split the global [`TrafficStats`] by
/// protocol message kind and feed the split into a metrics registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficBreakdown {
    by_kind: BTreeMap<&'static str, TrafficStats>,
}

impl TrafficBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `len` bytes under `kind`.
    pub fn record(&mut self, kind: &'static str, len: usize) {
        self.by_kind.entry(kind).or_default().record(len);
    }

    /// The stats recorded under `kind` (zero if never seen).
    pub fn get(&self, kind: &str) -> TrafficStats {
        self.by_kind.get(kind).copied().unwrap_or_default()
    }

    /// Iterates `(kind, stats)` in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, TrafficStats)> + '_ {
        self.by_kind.iter().map(|(k, s)| (*k, *s))
    }

    /// Sum of every kind (equals the network's global stats when a
    /// classifier was installed before any traffic flowed).
    #[must_use]
    pub fn total(&self) -> TrafficStats {
        self.by_kind.values().fold(TrafficStats::default(), |acc, s| acc.merged(*s))
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.by_kind.is_empty()
    }

    /// Drops all recorded kinds.
    pub fn clear(&mut self) {
        self.by_kind.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = TrafficStats::default();
        s.record(10);
        s.record(5);
        assert_eq!(s, TrafficStats { messages: 2, bytes: 15 });
    }

    #[test]
    fn merged_adds_fields() {
        let a = TrafficStats { messages: 1, bytes: 2 };
        let b = TrafficStats { messages: 3, bytes: 4 };
        assert_eq!(a.merged(b), TrafficStats { messages: 4, bytes: 6 });
    }

    #[test]
    fn record_saturates_instead_of_wrapping() {
        let mut s = TrafficStats { messages: u64::MAX, bytes: u64::MAX - 1 };
        s.record(10);
        assert_eq!(s, TrafficStats { messages: u64::MAX, bytes: u64::MAX });
    }

    #[test]
    fn merged_saturates_instead_of_wrapping() {
        let a = TrafficStats { messages: u64::MAX - 1, bytes: 1 };
        let b = TrafficStats { messages: 5, bytes: u64::MAX };
        assert_eq!(a.merged(b), TrafficStats { messages: u64::MAX, bytes: u64::MAX });
    }

    #[test]
    fn display_is_readable() {
        let s = TrafficStats { messages: 2, bytes: 15 };
        assert_eq!(s.to_string(), "2 msgs / 15 bytes");
    }

    #[test]
    fn breakdown_splits_by_kind_and_totals() {
        let mut b = TrafficBreakdown::new();
        b.record("purchase", 100);
        b.record("purchase", 50);
        b.record("deposit", 10);
        assert_eq!(b.get("purchase"), TrafficStats { messages: 2, bytes: 150 });
        assert_eq!(b.get("deposit"), TrafficStats { messages: 1, bytes: 10 });
        assert_eq!(b.get("never"), TrafficStats::default());
        assert_eq!(b.total(), TrafficStats { messages: 3, bytes: 160 });
        let kinds: Vec<&str> = b.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["deposit", "purchase"]);
        b.clear();
        assert!(b.is_empty());
    }
}

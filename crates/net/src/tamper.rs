//! Deterministic at-rest tamper injection: the storage-side sibling of
//! [`crate::faults`].
//!
//! Where the fault injector corrupts messages *in flight*, the tamper
//! injector corrupts *durable artifacts* — journal bytes, checkpoint
//! snapshots, DHT-served binding records — to exercise the
//! tamper-evidence machinery (Merkle-committed ledger roots, verified
//! recovery, proof-checked binding lookups). An adversarial chaos run
//! asserts that **every** injected tamper is detected: either the strict
//! decoder rejects the bytes, or the recomputed ledger root disagrees
//! with the committed `(root, seq)` checkpoint, or a served record fails
//! its inclusion proof.
//!
//! Decisions follow the same keyed-draw discipline as
//! [`crate::faults::FaultInjector`]: the draws for object `k` of a
//! target are a pure function of `(seed, target, k)`, derived by keyed
//! hashing rather than a sequential RNG walk. Whether one artifact gets
//! tampered is therefore independent of how many others were examined
//! before it and of inspection order — a chaos run and its fault-free
//! control stay comparable artifact by artifact.

use crate::faults::{chance, flip_bit, splitmix64};

/// Which durable artifact class a tamper decision is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TamperTarget {
    /// The broker's operation journal (framed entry bytes).
    Journal,
    /// A checkpoint snapshot embedded in the journal.
    Snapshot,
    /// A binding record served from the DHT.
    Record,
}

impl TamperTarget {
    /// Stable label for reports and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            TamperTarget::Journal => "journal",
            TamperTarget::Snapshot => "snapshot",
            TamperTarget::Record => "record",
        }
    }

    fn tag(&self) -> u64 {
        match self {
            TamperTarget::Journal => 1,
            TamperTarget::Snapshot => 2,
            TamperTarget::Record => 3,
        }
    }
}

/// Per-target tamper probabilities in `[0, 1]`, applied per examined
/// artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TamperPlan {
    /// Probability an examined journal byte-range gets one bit flipped.
    pub journal: f64,
    /// Probability an examined snapshot gets one bit flipped.
    pub snapshot: f64,
    /// Probability a served DHT record gets one bit flipped.
    pub record: f64,
}

impl TamperPlan {
    /// A plan that tampers with nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// The same probability for every target class.
    pub fn uniform(p: f64) -> Self {
        TamperPlan { journal: p, snapshot: p, record: p }
    }

    fn rate(&self, target: TamperTarget) -> f64 {
        match target {
            TamperTarget::Journal => self.journal,
            TamperTarget::Snapshot => self.snapshot,
            TamperTarget::Record => self.record,
        }
    }
}

/// One injected tamper, recorded in the injector's history — the ground
/// truth a chaos run reconciles detections against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedTamper {
    /// Artifact class hit.
    pub target: TamperTarget,
    /// Caller-assigned object id within the class (journal entry index,
    /// snapshot ordinal, record lookup index, ...).
    pub object: u64,
    /// Bit position flipped (already reduced modulo the buffer length).
    pub bit: u64,
}

/// The seeded at-rest tamper engine: a [`TamperPlan`] plus a draw seed,
/// an examined-artifact counter, and the full history of injected flips.
#[derive(Debug)]
pub struct TamperInjector {
    plan: TamperPlan,
    seed: u64,
    examined: u64,
    history: Vec<InjectedTamper>,
}

impl TamperInjector {
    /// Builds an injector for `plan`, seeded deterministically.
    pub fn new(plan: TamperPlan, seed: u64) -> Self {
        TamperInjector { plan, seed, examined: 0, history: Vec::new() }
    }

    /// Examines object `object` of `target` and, with the plan's
    /// per-target probability, flips one keyed-drawn bit of `buf` in
    /// place. The decision and the bit position are a pure function of
    /// `(seed, target, object)` — not of call order. Returns the bit
    /// flipped, or `None` when the artifact was left intact (including
    /// when the draw fired on an empty buffer, which has no bit to
    /// flip).
    pub fn tamper(&mut self, target: TamperTarget, object: u64, buf: &mut [u8]) -> Option<u64> {
        self.examined += 1;
        let draws = keyed_draws(self.seed, target, object);
        if buf.is_empty() || !chance(draws[0], self.plan.rate(target)) {
            return None;
        }
        let bit = draws[1] % (buf.len() as u64 * 8);
        flip_bit(buf, bit);
        self.history.push(InjectedTamper { target, object, bit });
        Some(bit)
    }

    /// Unconditionally flips the keyed-drawn bit for `(target, object)`
    /// in `buf` — the deterministic "this artifact, definitely" form a
    /// Byzantine-node test uses. Recorded in the history like any other
    /// injection. Returns `None` only for an empty buffer.
    pub fn force(&mut self, target: TamperTarget, object: u64, buf: &mut [u8]) -> Option<u64> {
        self.examined += 1;
        if buf.is_empty() {
            return None;
        }
        let draws = keyed_draws(self.seed, target, object);
        let bit = draws[1] % (buf.len() as u64 * 8);
        flip_bit(buf, bit);
        self.history.push(InjectedTamper { target, object, bit });
        Some(bit)
    }

    /// Every injected tamper, in injection order.
    pub fn history(&self) -> &[InjectedTamper] {
        &self.history
    }

    /// Number of injections so far.
    pub fn injected(&self) -> usize {
        self.history.len()
    }

    /// Artifacts examined so far (tampered or not).
    pub fn examined(&self) -> u64 {
        self.examined
    }
}

/// Number of keyed draws derived per examined artifact: fire? which bit?
const DRAWS_PER_OBJECT: usize = 2;

/// The draws for one artifact, keyed on `(seed, target, object)` with
/// the same odd-multiplier mixing as the fault injector's per-delivery
/// draws (distinct multipliers keep the two schedules uncorrelated even
/// under equal seeds).
fn keyed_draws(seed: u64, target: TamperTarget, object: u64) -> [u64; DRAWS_PER_OBJECT] {
    let mut state = seed
        ^ object.wrapping_mul(0x9FB2_1C65_1E98_DF25)
        ^ target.tag().wrapping_mul(0xD6E8_FEB8_6659_FD93);
    let mut draws = [0u64; DRAWS_PER_OBJECT];
    for d in &mut draws {
        *d = splitmix64(&mut state);
    }
    draws
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let plan = TamperPlan::uniform(0.3);
        let mut a = TamperInjector::new(plan, 11);
        let mut b = TamperInjector::new(plan, 11);
        for i in 0..300 {
            let mut buf_a = vec![0u8; 16];
            let mut buf_b = vec![0u8; 16];
            assert_eq!(
                a.tamper(TamperTarget::Journal, i, &mut buf_a),
                b.tamper(TamperTarget::Journal, i, &mut buf_b)
            );
            assert_eq!(buf_a, buf_b);
        }
        assert_eq!(a.history(), b.history());
        assert!(a.injected() > 0, "30% over 300 artifacts injects something");
    }

    #[test]
    fn draws_key_on_object_id_not_call_order() {
        let plan = TamperPlan::uniform(0.4);
        let mut fwd = TamperInjector::new(plan, 5);
        let mut bwd = TamperInjector::new(plan, 5);
        let forward: Vec<_> = (0..100)
            .map(|i| {
                let mut buf = vec![0u8; 8];
                (fwd.tamper(TamperTarget::Snapshot, i, &mut buf), buf)
            })
            .collect();
        let mut backward: Vec<_> = (0..100)
            .rev()
            .map(|i| {
                let mut buf = vec![0u8; 8];
                (i, bwd.tamper(TamperTarget::Snapshot, i, &mut buf), buf)
            })
            .collect();
        backward.sort_by_key(|(i, ..)| *i);
        assert_eq!(forward, backward.into_iter().map(|(_, t, b)| (t, b)).collect::<Vec<_>>());
    }

    #[test]
    fn targets_draw_independently() {
        // The same (seed, object) pair must not force identical verdicts
        // across targets — the per-target tag decorrelates the streams.
        let plan = TamperPlan::uniform(0.5);
        let mut inj = TamperInjector::new(plan, 123);
        let mut differs = false;
        for i in 0..64 {
            let mut a = vec![0u8; 8];
            let mut b = vec![0u8; 8];
            let ta = inj.tamper(TamperTarget::Journal, i, &mut a).is_some();
            let tb = inj.tamper(TamperTarget::Record, i, &mut b).is_some();
            differs |= ta != tb;
        }
        assert!(differs, "journal and record schedules are distinct streams");
    }

    #[test]
    fn zero_rates_tamper_nothing_and_force_always_fires() {
        let mut inj = TamperInjector::new(TamperPlan::new(), 9);
        let mut buf = vec![0xAA; 32];
        for i in 0..50 {
            assert_eq!(inj.tamper(TamperTarget::Record, i, &mut buf), None);
        }
        assert_eq!(buf, vec![0xAA; 32]);
        assert_eq!(inj.injected(), 0);
        assert_eq!(inj.examined(), 50);
        let bit = inj.force(TamperTarget::Record, 0, &mut buf).expect("non-empty buffer");
        assert!(bit < 32 * 8);
        assert_ne!(buf, vec![0xAA; 32]);
        assert_eq!(inj.injected(), 1);
        // Empty buffers have no bit to flip, even under force.
        let mut empty: Vec<u8> = Vec::new();
        assert_eq!(inj.force(TamperTarget::Journal, 1, &mut empty), None);
    }
}

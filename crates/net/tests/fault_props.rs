//! Property tests for fault-schedule determinism.
//!
//! The chaos harness's whole value rests on reproducibility: a failing
//! seed must replay the *exact* same faults against the *exact* same
//! deliveries. These properties pin that down at the network layer —
//! same seed ⇒ identical injected-fault sequence, identical traffic
//! accounting, and identical final state of a stateful endpoint (a toy
//! ledger standing in for the broker; the real broker's determinism
//! under faults is asserted end-to-end in `tests/chaos.rs`).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use whopay_net::faults::{FaultInjector, FaultPlan, FaultRates};
use whopay_net::Network;

/// Decodes one generated op into `(account, amount)` — the vendored
/// proptest has no tuple strategies, so both ride in a single `u16`.
fn decode_op(op: u16) -> (u8, u8) {
    ((op % 8) as u8, (1 + op / 8) as u8)
}

/// A network with a toy ledger endpoint: each request is `[account,
/// amount]`; the handler credits the account and echoes the new balance.
/// Returns the network, the client/server ids, and the shared ledger.
#[allow(clippy::type_complexity)]
fn ledger_world() -> (Network, whopay_net::EndpointId, whopay_net::EndpointId, Rc<RefCell<[u64; 8]>>) {
    let ledger = Rc::new(RefCell::new([0u64; 8]));
    let state = ledger.clone();
    let mut net = Network::new();
    let server = net.register("ledger", move |req: &[u8]| {
        if req.len() != 2 {
            return vec![0xFF]; // malformed (e.g. truncated by corruption)
        }
        let account = (req[0] % 8) as usize;
        let mut book = state.borrow_mut();
        book[account] = book[account].wrapping_add(u64::from(req[1]));
        book[account].to_be_bytes().to_vec()
    });
    let client = net.register("client", |_: &[u8]| Vec::new());
    (net, client, server, ledger)
}

/// Runs `ops` transfer requests under the given plan + seed and returns
/// (fault history, traffic stats, final ledger, response transcript).
#[allow(clippy::type_complexity)]
fn run_schedule(
    plan: &FaultPlan,
    seed: u64,
    ops: &[u16],
) -> (Vec<String>, whopay_net::TrafficStats, [u64; 8], Vec<Result<Vec<u8>, String>>) {
    let (mut net, client, server, ledger) = ledger_world();
    net.install_faults(FaultInjector::new(plan.clone(), seed));
    let mut transcript = Vec::new();
    for &op in ops {
        let (account, amount) = decode_op(op);
        let out = net.request(client, server, vec![account, amount]).map_err(|e| e.to_string());
        transcript.push(out);
    }
    let injector = net.clear_faults().expect("installed above");
    let history = injector.history().iter().map(|f| format!("{f:?}")).collect();
    let final_ledger = *ledger.borrow();
    (history, net.stats(), final_ledger, transcript)
}

/// The same toy ledger behind a `Send` handler (an `Arc<Mutex>` book),
/// registered via `register_parallel` so queue drains may run it on
/// worker threads. Registration order matches `ledger_world` (server
/// first) so both worlds produce the same endpoint ids.
#[allow(clippy::type_complexity)]
fn parallel_ledger_world(
) -> (Network, whopay_net::EndpointId, whopay_net::EndpointId, Arc<Mutex<[u64; 8]>>) {
    let ledger = Arc::new(Mutex::new([0u64; 8]));
    let state = ledger.clone();
    let mut net = Network::new();
    let server = net.register_parallel("ledger", move |req: &[u8], out: &mut Vec<u8>| {
        if req.len() != 2 {
            out.push(0xFF);
            return;
        }
        let account = (req[0] % 8) as usize;
        let mut book = state.lock().expect("ledger lock");
        book[account] = book[account].wrapping_add(u64::from(req[1]));
        out.extend_from_slice(&book[account].to_be_bytes());
    });
    let client = net.register("client", |_: &[u8]| Vec::new());
    (net, server, client, ledger)
}

/// How to push the ops through the fabric: the synchronous call path, or
/// the event queue drained at a given worker count.
#[derive(Clone, Copy)]
enum Mode {
    Sync,
    Queue(usize),
}

/// Runs `ops` against the parallel ledger under a uniform fault rate
/// plus a partition window, in the given delivery mode. Returns the same
/// observables as [`run_schedule`].
#[allow(clippy::type_complexity)]
fn run_parallel_schedule(
    rate: f64,
    seed: u64,
    ops: &[u16],
    mode: Mode,
) -> (Vec<String>, whopay_net::TrafficStats, [u64; 8], Vec<Result<Vec<u8>, String>>) {
    let (mut net, server, client, ledger) = parallel_ledger_world();
    // Partition windows key on the delivery index, which the queue
    // assigns in submission order — so the window must land on the same
    // deliveries in every mode.
    let plan =
        FaultPlan::new().with_default(FaultRates::uniform(rate)).partition(client, server, 5, 20);
    net.install_faults(FaultInjector::new(plan, seed));
    let transcript: Vec<Result<Vec<u8>, String>> = match mode {
        Mode::Sync => ops
            .iter()
            .map(|&op| {
                let (account, amount) = decode_op(op);
                net.request(client, server, vec![account, amount]).map_err(|e| e.to_string())
            })
            .collect(),
        Mode::Queue(threads) => {
            net.set_drain_threads(threads);
            for &op in ops {
                let (account, amount) = decode_op(op);
                net.submit(client, server, vec![account, amount]);
            }
            net.drain().into_iter().map(|d| d.result.map_err(|e| e.to_string())).collect()
        }
    };
    let injector = net.clear_faults().expect("installed above");
    let history = injector.history().iter().map(|f| format!("{f:?}")).collect();
    let final_ledger = *ledger.lock().expect("ledger lock");
    (history, net.stats(), final_ledger, transcript)
}

proptest! {
    #[test]
    fn same_seed_same_faults_same_ledger(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec(0u16..800, 1..60),
    ) {
        let plan = FaultPlan::new().with_default(FaultRates {
            drop: 0.10,
            duplicate: 0.10,
            corrupt: 0.10,
            timeout: 0.10,
        });
        let a = run_schedule(&plan, seed, &ops);
        let b = run_schedule(&plan, seed, &ops);
        prop_assert_eq!(&a.0, &b.0, "identical injected-fault sequence");
        prop_assert_eq!(a.1, b.1, "identical traffic accounting");
        prop_assert_eq!(a.2, b.2, "identical final ledger state");
        prop_assert_eq!(&a.3, &b.3, "identical caller-visible outcomes");
    }

    #[test]
    fn different_seeds_usually_diverge(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec(0u16..800, 30..60),
    ) {
        // Not a hard guarantee per pair, but across 30+ deliveries at 40%
        // total fault rate two seeds agreeing on the whole history means
        // the injector is ignoring its seed.
        let plan = FaultPlan::new().with_default(FaultRates::uniform(0.10));
        let a = run_schedule(&plan, seed, &ops);
        let b = run_schedule(&plan, seed ^ 0xDEAD_BEEF, &ops);
        let c = run_schedule(&plan, seed.wrapping_add(1), &ops);
        prop_assert!(
            a.0 != b.0 || a.0 != c.0,
            "three distinct seeds produced the same fault history"
        );
    }

    #[test]
    fn fault_free_plans_are_transparent(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec(0u16..800, 1..40),
    ) {
        // An injector with an all-zero plan must be a perfect no-op:
        // identical ledger, traffic, and responses to no injector at all.
        let with = run_schedule(&FaultPlan::new(), seed, &ops);
        let (mut net, client, server, ledger) = ledger_world();
        let mut transcript = Vec::new();
        for &op in &ops {
            let (account, amount) = decode_op(op);
            let out = net.request(client, server, vec![account, amount]).map_err(|e| e.to_string());
            transcript.push(out);
        }
        prop_assert!(with.0.is_empty(), "zero rates inject nothing");
        prop_assert_eq!(with.1, net.stats());
        prop_assert_eq!(with.2, *ledger.borrow());
        prop_assert_eq!(&with.3, &transcript);
    }

    #[test]
    fn queue_matches_sync_at_any_thread_count(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec(0u16..800, 1..60),
    ) {
        // Fault draws key on (plan, seed, event id), not global draw
        // order, so the schedule — and therefore the ledger, traffic,
        // and caller-visible outcomes — must be identical whether the
        // ops run synchronously, through a single-threaded drain, or
        // fanned across a worker pool.
        let sync = run_parallel_schedule(0.08, seed, &ops, Mode::Sync);
        for threads in [1usize, 4, 8] {
            let queued = run_parallel_schedule(0.08, seed, &ops, Mode::Queue(threads));
            prop_assert_eq!(&sync.0, &queued.0, "fault history at threads={}", threads);
            prop_assert_eq!(sync.1, queued.1, "traffic stats at threads={}", threads);
            prop_assert_eq!(sync.2, queued.2, "final ledger at threads={}", threads);
            prop_assert_eq!(&sync.3, &queued.3, "outcomes at threads={}", threads);
        }
    }
}

//! Property tests for the network fabric's accounting invariants.

use proptest::prelude::*;
use whopay_net::{Network, TrafficStats};

proptest! {
    #[test]
    fn global_stats_equal_sum_of_endpoint_sent(payload_lens in proptest::collection::vec(0usize..200, 1..40)) {
        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec()); // echo
        let client = net.register("client", |_: &[u8]| Vec::new());

        let mut expect_msgs = 0u64;
        let mut expect_bytes = 0u64;
        for &len in &payload_lens {
            let resp = net.request(client, server, vec![0xA5; len]).unwrap();
            prop_assert_eq!(resp.len(), len);
            expect_msgs += 2; // request + response
            expect_bytes += 2 * len as u64;
        }
        prop_assert_eq!(net.stats(), TrafficStats { messages: expect_msgs, bytes: expect_bytes });
        // Conservation: global == sum of per-endpoint sent == sum received.
        let sent_total = net.sent_stats(client).merged(net.sent_stats(server));
        let recv_total = net.received_stats(client).merged(net.received_stats(server));
        prop_assert_eq!(sent_total, net.stats());
        prop_assert_eq!(recv_total, net.stats());
    }

    #[test]
    fn offline_requests_cost_nothing(n in 1usize..20) {
        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.set_online(server, false);
        for _ in 0..n {
            prop_assert!(net.request(client, server, vec![1, 2, 3]).is_err());
        }
        prop_assert_eq!(net.stats(), TrafficStats::default());
    }

    #[test]
    fn reset_is_complete(len in 0usize..100) {
        let mut net = Network::new();
        let server = net.register("server", |req: &[u8]| req.to_vec());
        let client = net.register("client", |_: &[u8]| Vec::new());
        net.request(client, server, vec![0; len]).unwrap();
        net.account_relay(len);
        net.reset_stats();
        prop_assert_eq!(net.stats(), TrafficStats::default());
        prop_assert_eq!(net.relay_hops(), 0);
        prop_assert_eq!(net.endpoint_stats(client), TrafficStats::default());
        prop_assert_eq!(net.endpoint_stats(server), TrafficStats::default());
    }
}

//! Equivalence and ordering tests for the event-queue delivery path.
//!
//! The contract (see `whopay_net::queue`): a single-threaded drain is
//! indistinguishable from calling `request` per event, in results and in
//! every counter; a multi-threaded drain may interleave endpoints but
//! preserves per-endpoint submission order, returns outcomes in
//! submission order, and produces identical accounting totals.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use whopay_net::{EndpointId, Network};

/// A world mixing a classic (non-`Send`, `Rc`-backed) counter endpoint
/// with a parallel (`Send`, `Mutex`-backed) one, plus a client.
#[allow(clippy::type_complexity)]
fn mixed_world() -> (Network, EndpointId, EndpointId, EndpointId, Rc<RefCell<u64>>, Arc<Mutex<u64>>) {
    let mut net = Network::new();
    let classic_total = Rc::new(RefCell::new(0u64));
    let state = classic_total.clone();
    let classic = net.register("classic", move |req: &[u8]| {
        let mut total = state.borrow_mut();
        *total += req.len() as u64;
        total.to_be_bytes().to_vec()
    });
    let parallel_total = Arc::new(Mutex::new(0u64));
    let state = parallel_total.clone();
    let parallel = net.register_parallel("parallel", move |req: &[u8], out: &mut Vec<u8>| {
        let mut total = state.lock().expect("total lock");
        *total += req.len() as u64;
        out.extend_from_slice(&total.to_be_bytes());
    });
    let client = net.register("client", |_: &[u8]| Vec::new());
    net.set_classifier(|req| if req.first() == Some(&0) { "even" } else { "odd" });
    (net, classic, parallel, client, classic_total, parallel_total)
}

/// The request sequence both paths run: alternating targets, varying
/// lengths so per-endpoint totals are order-sensitive.
fn ops() -> Vec<(bool, Vec<u8>)> {
    (0u8..40).map(|i| (i % 3 == 0, vec![i % 2; 1 + usize::from(i % 5)])).collect()
}

#[test]
fn single_threaded_drain_matches_sync_exactly() {
    let (mut sync_net, classic, parallel, client, sync_classic, sync_parallel) = mixed_world();
    let sync_out: Vec<_> = ops()
        .into_iter()
        .map(|(to_classic, req)| {
            let to = if to_classic { classic } else { parallel };
            sync_net.request(client, to, req)
        })
        .collect();

    let (mut q_net, classic, parallel, client, q_classic, q_parallel) = mixed_world();
    q_net.set_drain_threads(1);
    for (to_classic, req) in ops() {
        let to = if to_classic { classic } else { parallel };
        q_net.submit(client, to, req);
    }
    let drained = q_net.drain();
    assert_eq!(q_net.queued(), 0, "drain consumes the queue");

    let q_out: Vec<_> = drained.iter().map(|d| d.result.clone()).collect();
    assert_eq!(sync_out, q_out, "identical caller-visible outcomes");
    assert_eq!(sync_net.stats(), q_net.stats(), "identical traffic totals");
    assert_eq!(sync_net.breakdown(), q_net.breakdown(), "identical per-kind breakdown");
    assert_eq!(*sync_classic.borrow(), *q_classic.borrow());
    assert_eq!(*sync_parallel.lock().unwrap(), *q_parallel.lock().unwrap());
}

#[test]
fn worker_drain_matches_sync_results_and_totals() {
    let (mut sync_net, classic, parallel, client, sync_classic, sync_parallel) = mixed_world();
    let sync_out: Vec<_> = ops()
        .into_iter()
        .map(|(to_classic, req)| {
            let to = if to_classic { classic } else { parallel };
            sync_net.request(client, to, req)
        })
        .collect();

    let (mut q_net, classic, parallel, client, q_classic, q_parallel) = mixed_world();
    q_net.set_drain_threads(4);
    let ids: Vec<_> = ops()
        .into_iter()
        .map(|(to_classic, req)| {
            let to = if to_classic { classic } else { parallel };
            q_net.submit(client, to, req)
        })
        .collect();
    let drained = q_net.drain();

    // Outcomes come back in submission order regardless of which worker
    // ran each delivery, and per-endpoint order is preserved, so the
    // running-total responses match the synchronous transcript byte for
    // byte.
    assert_eq!(ids.len(), drained.len());
    for (id, d) in ids.iter().zip(&drained) {
        assert_eq!(*id, d.event, "submission-order results");
    }
    let q_out: Vec<_> = drained.iter().map(|d| d.result.clone()).collect();
    assert_eq!(sync_out, q_out);
    assert_eq!(sync_net.stats(), q_net.stats());
    assert_eq!(sync_net.breakdown(), q_net.breakdown());
    assert_eq!(*sync_classic.borrow(), *q_classic.borrow());
    assert_eq!(*sync_parallel.lock().unwrap(), *q_parallel.lock().unwrap());
}

#[test]
fn unknown_and_offline_targets_fail_like_sync() {
    // An id from a denser network is unknown to this one (ids are plain
    // indices, not tied to a fabric).
    let mut other = Network::new();
    for i in 0..5 {
        other.register(&format!("pad{i}"), |_: &[u8]| Vec::new());
    }
    let stranger = other.register("stranger", |_: &[u8]| Vec::new());

    let (mut net, classic, _parallel, client, _, _) = mixed_world();
    net.set_online(classic, false);

    let sync_unknown = net.request(client, stranger, b"hi".to_vec());
    let sync_offline = net.request(client, classic, b"hi".to_vec());

    net.submit(client, stranger, b"hi".to_vec());
    net.submit(client, classic, b"hi".to_vec());
    let drained = net.drain();
    assert_eq!(drained[0].result, sync_unknown);
    assert_eq!(drained[1].result, sync_offline);
}

#[test]
fn empty_drain_is_a_no_op() {
    let (mut net, _, _, _, _, _) = mixed_world();
    assert!(net.drain().is_empty());
    assert_eq!(net.stats(), Network::new().stats());
}

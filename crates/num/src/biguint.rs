//! An arbitrary-precision unsigned integer built on [`crate::limbs`].

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

use crate::limbs;

/// An arbitrary-precision unsigned integer.
///
/// `BigUint` stores little-endian `u64` limbs with no trailing zeros, so
/// equality and ordering are plain structural comparisons. It supports the
/// usual arithmetic operators (which panic on underflow and division by
/// zero, like the primitive integer types), plus the modular and
/// number-theoretic operations needed by the WhoPay cryptography substrate.
///
/// # Examples
///
/// ```
/// use whopay_num::BigUint;
///
/// let a = BigUint::from(10u64).pow(20);
/// let b = &a + &BigUint::from(5u64);
/// assert_eq!((&b % &a), BigUint::from(5u64));
/// assert_eq!(b.to_string(), "100000000000000000005");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs, normalized (no trailing zeros).
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs a value from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        limbs::normalize(&mut limbs);
        BigUint { limbs }
    }

    /// Borrows the normalized little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns `true` if the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (zero has zero bits).
    ///
    /// ```
    /// # use whopay_num::BigUint;
    /// assert_eq!(BigUint::from(255u64).bits(), 8);
    /// assert_eq!(BigUint::zero().bits(), 0);
    /// ```
    pub fn bits(&self) -> usize {
        limbs::bit_len(&self.limbs)
    }

    /// Returns bit `i` (little-endian; bit 0 is the least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        self.limbs[limb] >> (i % 64) & 1 == 1
    }

    /// Converts to `u64`, returning `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128`, returning `None` if the value does not fit.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Parses a big-endian byte string (leading zero bytes allowed).
    ///
    /// ```
    /// # use whopay_num::BigUint;
    /// assert_eq!(BigUint::from_be_bytes(&[0x01, 0x00]), BigUint::from(256u64));
    /// ```
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Returns the minimal big-endian byte encoding (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.be_len());
        self.extend_be_bytes(&mut out);
        out
    }

    /// Length of the minimal big-endian encoding in bytes (zero for zero).
    pub fn be_len(&self) -> usize {
        self.bits().div_ceil(8)
    }

    /// Appends the minimal big-endian byte encoding to `out` without any
    /// intermediate allocation — the streaming counterpart of
    /// [`BigUint::to_be_bytes`] used by the zero-copy wire path.
    pub fn extend_be_bytes(&self, out: &mut Vec<u8>) {
        let mut rest = self.limbs.iter().rev();
        let Some(top) = rest.next() else {
            return;
        };
        let top_bytes = (64 - top.leading_zeros() as usize).div_ceil(8);
        out.extend_from_slice(&top.to_be_bytes()[8 - top_bytes..]);
        for &limb in rest {
            out.extend_from_slice(&limb.to_be_bytes());
        }
    }

    /// Compares against a big-endian byte slice (leading zeros allowed)
    /// without materializing a `BigUint` — the borrowed-slice counterpart
    /// of `self.cmp(&BigUint::from_be_bytes(be))`.
    pub fn cmp_be_bytes(&self, be: &[u8]) -> Ordering {
        let be = &be[be.iter().take_while(|&&b| b == 0).count()..];
        match self.be_len().cmp(&be.len()) {
            Ordering::Equal => {}
            other => return other,
        }
        // Equal minimal lengths: walk limbs from the most significant end.
        // Chunking from the least-significant side keeps 8-byte groups
        // aligned with limbs (only the top chunk may be partial).
        for (limb, chunk) in self.limbs.iter().rev().zip(be.rchunks(8).rev().map(|c| {
            let mut v = 0u64;
            for &b in c {
                v = v << 8 | b as u64;
            }
            v
        })) {
            match limb.cmp(&chunk) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Equality against a big-endian byte slice without allocating.
    pub fn eq_be_bytes(&self, be: &[u8]) -> bool {
        self.cmp_be_bytes(be) == Ordering::Equal
    }

    /// Returns a big-endian byte encoding zero-padded to `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// Returns `None` on empty input or non-hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut limbs: Vec<u64> = Vec::new();
        let chars: Vec<u32> = s.chars().map(|c| c.to_digit(16)).collect::<Option<_>>()?;
        // Consume hex digits from least significant end, 16 per limb.
        let mut rev = chars;
        rev.reverse();
        for chunk in rev.chunks(16) {
            let mut limb = 0u64;
            for (i, &d) in chunk.iter().enumerate() {
                limb |= (d as u64) << (4 * i);
            }
            limbs.push(limb);
        }
        Some(Self::from_limbs(limbs))
    }

    /// Lowercase hex encoding with no prefix ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for &limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        s
    }

    /// `self^exp` by binary exponentiation (no modulus — beware growth).
    pub fn pow(&self, mut exp: u32) -> Self {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Simultaneous quotient and remainder.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let (q, r) = limbs::div_rem(&self.limbs, &divisor.limbs);
        (BigUint { limbs: q }, BigUint { limbs: r })
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Euclidean steps are fine at our sizes and simpler than binary GCD
        // with shifts once division is fast.
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }

    /// Uniformly random value with exactly `bits` significant bits
    /// (top bit forced to 1); `bits == 0` yields zero.
    pub fn random_bits<R: rand::Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        if bits == 0 {
            return Self::zero();
        }
        let n_limbs = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..n_limbs).map(|_| rand::RngExt::random(rng)).collect();
        let top_bits = bits - (n_limbs - 1) * 64;
        let top = &mut limbs[n_limbs - 1];
        if top_bits < 64 {
            *top &= (1u64 << top_bits) - 1;
        }
        *top |= 1u64 << (top_bits - 1);
        Self::from_limbs(limbs)
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: rand::Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> Self {
        assert!(!bound.is_zero(), "empty sampling range");
        let bits = bound.bits();
        let n_limbs = bits.div_ceil(64);
        let top_bits = bits - (n_limbs - 1) * 64;
        let mask = if top_bits == 64 { u64::MAX } else { (1u64 << top_bits) - 1 };
        loop {
            let mut limbs: Vec<u64> = (0..n_limbs).map(|_| rand::RngExt::random(rng)).collect();
            limbs[n_limbs - 1] &= mask;
            let candidate = Self::from_limbs(limbs);
            if candidate < *bound {
                return candidate;
            }
        }
    }

    /// Uniformly random value in `[low, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= bound`.
    pub fn random_range<R: rand::Rng + ?Sized>(rng: &mut R, low: &BigUint, bound: &BigUint) -> Self {
        assert!(low < bound, "empty sampling range");
        let width = bound - low;
        low + &Self::random_below(rng, &width)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel 19 decimal digits at a time (the largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits: Vec<String> = Vec::new();
        let mut rest = self.limbs.clone();
        while !rest.is_empty() {
            let (q, r) = limbs::div_rem_limb(&rest, CHUNK);
            rest = q;
            digits.push(r.to_string());
        }
        let mut s = digits.pop().unwrap();
        for d in digits.iter().rev() {
            s.push_str(&format!("{d:0>19}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex())
    }
}

/// Error returned when parsing a [`BigUint`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError;

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid decimal integer")
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    /// Parses a decimal string.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigUintError);
        }
        let mut acc = BigUint::zero();
        // Consume 19 digits at a time to amortize the bignum work.
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(19);
            let chunk: u64 = s[i..i + take].parse().map_err(|_| ParseBigUintError)?;
            let mult = if take == 19 {
                BigUint::from(10_000_000_000_000_000_000u64)
            } else {
                BigUint::from(10u64.pow(take as u32))
            };
            acc = &acc * &mult + &BigUint::from(chunk);
            i += take;
        }
        Ok(acc)
    }
}

macro_rules! impl_from_primitive {
    ($($t:ty),*) => {$(
        impl From<$t> for BigUint {
            fn from(v: $t) -> Self {
                BigUint::from_limbs(vec![v as u64])
            }
        }
    )*};
}
impl_from_primitive!(u8, u16, u32, u64, usize);

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        limbs::cmp(&self.limbs, &other.limbs)
    }
}

// --- operator impls (owned and borrowed forms) ---

impl<'b> Add<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &'b BigUint) -> BigUint {
        let mut limbs = self.limbs.clone();
        limbs::add_assign(&mut limbs, &rhs.limbs);
        BigUint { limbs }
    }
}

impl<'b> Sub<&'b BigUint> for &BigUint {
    type Output = BigUint;
    /// # Panics
    /// Panics if the result would be negative.
    fn sub(self, rhs: &'b BigUint) -> BigUint {
        assert!(self >= rhs, "BigUint subtraction underflow");
        let mut limbs = self.limbs.clone();
        limbs::sub_assign(&mut limbs, &rhs.limbs);
        BigUint { limbs }
    }
}

impl<'b> Mul<&'b BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &'b BigUint) -> BigUint {
        BigUint { limbs: limbs::mul(&self.limbs, &rhs.limbs) }
    }
}

impl<'b> Div<&'b BigUint> for &BigUint {
    type Output = BigUint;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &'b BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl<'b> Rem<&'b BigUint> for &BigUint {
    type Output = BigUint;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: &'b BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$method(&rhs)
            }
        }
    };
}
forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        limbs::add_assign(&mut self.limbs, &rhs.limbs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    /// # Panics
    /// Panics if the result would be negative.
    fn sub_assign(&mut self, rhs: &BigUint) {
        assert!(&*self >= rhs, "BigUint subtraction underflow");
        limbs::sub_assign(&mut self.limbs, &rhs.limbs);
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        BigUint { limbs: limbs::shl(&self.limbs, bits) }
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        &self << bits
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        BigUint { limbs: limbs::shr(&self.limbs, bits) }
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        &self >> bits
    }
}

impl Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        iter.fold(BigUint::zero(), |a, b| a + b)
    }
}

impl Product for BigUint {
    fn product<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        iter.fold(BigUint::one(), |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_decimal() {
        let v: BigUint = "123456789012345678901234567890123456789".parse().unwrap();
        assert_eq!(v.to_string(), "123456789012345678901234567890123456789");
    }

    #[test]
    fn hex_round_trips() {
        let v = BigUint::from_hex("deadbeefcafebabe0123456789abcdef0").unwrap();
        assert_eq!(v.to_hex(), "deadbeefcafebabe0123456789abcdef0");
    }

    #[test]
    fn be_bytes_round_trip() {
        let v = BigUint::from(0x0102_0304_0506u64);
        assert_eq!(v.to_be_bytes(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(BigUint::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from(0xffu64);
        assert_eq!(v.to_be_bytes_padded(4), vec![0, 0, 0, 0xff]);
    }

    #[test]
    fn extend_be_bytes_matches_to_be_bytes() {
        let mut rng = crate::test_rng(0xBE);
        for bits in [0usize, 1, 7, 8, 63, 64, 65, 127, 128, 129, 512, 1023] {
            let v = if bits == 0 {
                BigUint::zero()
            } else {
                // A random value with exactly `bits` significant bits.
                let mut bytes = vec![0u8; bits.div_ceil(8)];
                rand::Rng::fill_bytes(&mut rng, &mut bytes);
                let mut v = BigUint::from_be_bytes(&bytes) >> (bytes.len() * 8 - (bits - 1));
                v = v + (BigUint::one() << (bits - 1));
                v
            };
            let mut streamed = vec![0xAA]; // pre-existing content must survive
            v.extend_be_bytes(&mut streamed);
            let mut expect = vec![0xAA];
            expect.extend_from_slice(&v.to_be_bytes());
            assert_eq!(streamed, expect, "bits={bits}");
            assert_eq!(v.be_len(), v.to_be_bytes().len(), "bits={bits}");
        }
    }

    #[test]
    fn cmp_be_bytes_agrees_with_materialized_cmp() {
        let mut rng = crate::test_rng(0xCB);
        let mut cases: Vec<Vec<u8>> = vec![vec![], vec![0], vec![0, 0, 0], vec![1], vec![0, 1]];
        for len in [1usize, 7, 8, 9, 16, 17, 33] {
            for _ in 0..8 {
                let mut b = vec![0u8; len];
                rand::Rng::fill_bytes(&mut rng, &mut b);
                cases.push(b);
            }
        }
        let values: Vec<BigUint> =
            cases.iter().map(|b| BigUint::from_be_bytes(b)).chain([BigUint::zero()]).collect();
        for v in &values {
            for b in &cases {
                assert_eq!(v.cmp_be_bytes(b), v.cmp(&BigUint::from_be_bytes(b)), "{v} vs {b:?}");
                assert_eq!(v.eq_be_bytes(b), *v == BigUint::from_be_bytes(b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small_panics() {
        BigUint::from(0x1_0000u64).to_be_bytes_padded(2);
    }

    #[test]
    fn arithmetic_small_values() {
        let a = BigUint::from(1000u64);
        let b = BigUint::from(37u64);
        assert_eq!((&a + &b).to_u64(), Some(1037));
        assert_eq!((&a - &b).to_u64(), Some(963));
        assert_eq!((&a * &b).to_u64(), Some(37_000));
        assert_eq!((&a / &b).to_u64(), Some(27));
        assert_eq!((&a % &b).to_u64(), Some(1));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let three = BigUint::from(3u64);
        assert_eq!(three.pow(40).to_string(), 3u128.pow(40).to_string());
    }

    #[test]
    fn gcd_basics() {
        let a = BigUint::from(48u64);
        let b = BigUint::from(36u64);
        assert_eq!(a.gcd(&b).to_u64(), Some(12));
        assert_eq!(a.gcd(&BigUint::zero()), a);
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = crate::test_rng(42);
        let bound = BigUint::from(1000u64);
        for _ in 0..200 {
            assert!(BigUint::random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn random_bits_has_exact_bit_length() {
        let mut rng = crate::test_rng(7);
        for bits in [1usize, 63, 64, 65, 160, 256] {
            assert_eq!(BigUint::random_bits(&mut rng, bits).bits(), bits);
        }
    }

    #[test]
    fn ordering_is_numeric() {
        let small = BigUint::from(u64::MAX);
        let big = &small + &BigUint::one();
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big), Ordering::Equal);
    }
}

#![warn(missing_docs)]

//! Arbitrary-precision unsigned arithmetic for the WhoPay reproduction.
//!
//! This crate is the numeric substrate under `whopay-crypto`: an
//! allocation-based big unsigned integer ([`BigUint`]), modular arithmetic
//! contexts ([`ModRing`]) with a Montgomery/fixed-window fast path for odd
//! moduli ([`montgomery`]), and primality / parameter generation
//! ([`primes`], [`primes::SchnorrGroup`]). Everything is implemented from
//! scratch on `u64` limbs — no external bignum or crypto crates.
//!
//! # Examples
//!
//! Modular exponentiation in a generated DSA-style group:
//!
//! ```
//! use whopay_num::{primes::SchnorrGroup, BigUint};
//!
//! let mut rng = rand::rng();
//! let group = SchnorrGroup::generate(256, 160, &mut rng);
//! let x = group.random_scalar(&mut rng);
//! let y = group.pow_g(&x);
//! assert!(group.is_element(&y));
//! ```
//!
//! Plain arbitrary-precision arithmetic:
//!
//! ```
//! use whopay_num::BigUint;
//!
//! let big: BigUint = "340282366920938463463374607431768211456".parse().unwrap();
//! assert_eq!(big, BigUint::one() << 128);
//! ```

mod biguint;
pub mod limbs;
mod modring;
pub mod montgomery;
pub mod primes;

pub use biguint::{BigUint, ParseBigUintError};
pub use modring::ModRing;
pub use montgomery::{FixedBaseTable, MontgomeryRing};
pub use primes::SchnorrGroup;

/// Deterministic RNG for tests and reproducible simulations.
#[cfg(test)]
pub(crate) fn test_rng(seed: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

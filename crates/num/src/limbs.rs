//! Low-level arithmetic on little-endian `u64` limb slices.
//!
//! These routines are the engine room of [`crate::BigUint`]. They operate on
//! raw limb slices so that higher-level code can stay allocation-conscious.
//! All slices are little-endian: `limbs[0]` is the least significant limb.
//!
//! A slice is *normalized* when it has no trailing (most-significant) zero
//! limbs; the empty slice represents zero. Functions that state a
//! normalization requirement on inputs are allowed to produce garbage (but
//! never undefined behaviour) when it is violated.

use std::cmp::Ordering;

/// Number of bits per limb.
pub const LIMB_BITS: u32 = 64;

/// Strips trailing zero limbs so that the vector is normalized.
pub fn normalize(limbs: &mut Vec<u64>) {
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
}

/// Returns the slice with trailing zero limbs removed.
pub fn normalized(limbs: &[u64]) -> &[u64] {
    let mut len = limbs.len();
    while len > 0 && limbs[len - 1] == 0 {
        len -= 1;
    }
    &limbs[..len]
}

/// Compares two normalized limb slices numerically.
pub fn cmp(a: &[u64], b: &[u64]) -> Ordering {
    let a = normalized(a);
    let b = normalized(b);
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {}
        other => return other,
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// Number of significant bits in a normalized slice (0 for zero).
pub fn bit_len(limbs: &[u64]) -> usize {
    let limbs = normalized(limbs);
    match limbs.last() {
        None => 0,
        Some(&top) => {
            (limbs.len() - 1) * LIMB_BITS as usize + (LIMB_BITS - top.leading_zeros()) as usize
        }
    }
}

/// Adds `b` into `a` in place, growing `a` if a carry escapes.
pub fn add_assign(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    let mut carry = 0u64;
    for i in 0..b.len() {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        a[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    let mut i = b.len();
    while carry != 0 && i < a.len() {
        let (s, c) = a[i].overflowing_add(carry);
        a[i] = s;
        carry = c as u64;
        i += 1;
    }
    if carry != 0 {
        a.push(carry);
    }
}

/// Subtracts `b` from `a` in place.
///
/// # Panics
///
/// Panics in debug builds if `a < b` (the result would underflow). In
/// release builds the result is unspecified garbage; callers must compare
/// first.
pub fn sub_assign(a: &mut Vec<u64>, b: &[u64]) {
    debug_assert!(cmp(a, b) != Ordering::Less, "limb subtraction underflow");
    let mut borrow = 0u64;
    for i in 0..b.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    let mut i = b.len();
    while borrow != 0 && i < a.len() {
        let (d, b) = a[i].overflowing_sub(borrow);
        a[i] = d;
        borrow = b as u64;
        i += 1;
    }
    debug_assert_eq!(borrow, 0);
    normalize(a);
}

/// Schoolbook multiplication: returns `a * b` as a fresh normalized vector.
pub fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let a = normalized(a);
    let b = normalized(b);
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    normalize(&mut out);
    out
}

/// Multiplies `a` by a single limb.
pub fn mul_limb(a: &[u64], m: u64) -> Vec<u64> {
    if m == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u128;
    for &ai in a {
        let t = ai as u128 * m as u128 + carry;
        out.push(t as u64);
        carry = t >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    normalize(&mut out);
    out
}

/// Shifts left by `bits` (multiplies by 2^bits), returning a fresh vector.
pub fn shl(a: &[u64], bits: usize) -> Vec<u64> {
    let a = normalized(a);
    if a.is_empty() {
        return Vec::new();
    }
    let limb_shift = bits / 64;
    let bit_shift = (bits % 64) as u32;
    let mut out = vec![0u64; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry = 0u64;
        for &ai in a {
            out.push((ai << bit_shift) | carry);
            carry = ai >> (64 - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    out
}

/// Shifts right by `bits` (divides by 2^bits, flooring), returning a fresh
/// vector.
pub fn shr(a: &[u64], bits: usize) -> Vec<u64> {
    let a = normalized(a);
    let limb_shift = bits / 64;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = (bits % 64) as u32;
    let src = &a[limb_shift..];
    let mut out = Vec::with_capacity(src.len());
    if bit_shift == 0 {
        out.extend_from_slice(src);
    } else {
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = if i + 1 < src.len() { src[i + 1] << (64 - bit_shift) } else { 0 };
            out.push(lo | hi);
        }
    }
    normalize(&mut out);
    out
}

/// Divides `u` by the single limb `v`, returning `(quotient, remainder)`.
///
/// # Panics
///
/// Panics if `v == 0`.
pub fn div_rem_limb(u: &[u64], v: u64) -> (Vec<u64>, u64) {
    assert!(v != 0, "division by zero");
    let u = normalized(u);
    let mut q = vec![0u64; u.len()];
    let mut rem = 0u64;
    for i in (0..u.len()).rev() {
        let cur = ((rem as u128) << 64) | u[i] as u128;
        q[i] = (cur / v as u128) as u64;
        rem = (cur % v as u128) as u64;
    }
    normalize(&mut q);
    (q, rem)
}

/// Full multi-limb division (Knuth TAOCP vol. 2, Algorithm D).
///
/// Returns `(quotient, remainder)` with both vectors normalized.
///
/// # Panics
///
/// Panics if `v` is zero.
pub fn div_rem(u: &[u64], v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let u = normalized(u);
    let v = normalized(v);
    assert!(!v.is_empty(), "division by zero");
    if cmp(u, v) == Ordering::Less {
        return (Vec::new(), u.to_vec());
    }
    if v.len() == 1 {
        let (q, r) = div_rem_limb(u, v[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }

    let n = v.len();
    let m = u.len() - n;

    // D1: normalize so that the divisor's top bit is set.
    let shift = v[n - 1].leading_zeros() as usize;
    let vn = shl(v, shift);
    let mut un = shl(u, shift);
    un.resize(u.len() + 1, 0); // ensure the extra high limb exists

    let mut q = vec![0u64; m + 1];
    let b = 1u128 << 64;

    // D2..D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate q̂ from the top two dividend limbs.
        let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = top / vn[n - 1] as u128;
        let mut rhat = top % vn[n - 1] as u128;
        // Correct q̂: it can be at most 2 too large.
        while qhat >= b || qhat * vn[n - 2] as u128 > (rhat << 64) + un[j + n - 2] as u128 {
            qhat -= 1;
            rhat += vn[n - 1] as u128;
            if rhat >= b {
                break;
            }
        }

        // D4: multiply and subtract u[j..j+n] -= q̂ * v.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let t = un[i + j] as i128 - (p as u64) as i128 + borrow;
            un[i + j] = t as u64;
            borrow = t >> 64; // arithmetic shift: 0 or -1
        }
        let t = un[j + n] as i128 - carry as i128 + borrow;
        un[j + n] = t as u64;

        // D5/D6: if we subtracted too much, add the divisor back once.
        if t < 0 {
            qhat -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let s = un[i + j] as u128 + vn[i] as u128 + carry;
                un[i + j] = s as u64;
                carry = s >> 64;
            }
            un[j + n] = (un[j + n] as u128).wrapping_add(carry) as u64;
        }

        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    let mut r = shr(&un[..n], shift);
    normalize(&mut q);
    normalize(&mut r);
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_carries_across_limbs() {
        let mut a = vec![u64::MAX, u64::MAX];
        add_assign(&mut a, &[1]);
        assert_eq!(a, vec![0, 0, 1]);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let mut a = vec![0, 0, 1];
        sub_assign(&mut a, &[1]);
        assert_eq!(a, vec![u64::MAX, u64::MAX]);
    }

    #[test]
    fn mul_matches_u128() {
        let a = vec![0x1234_5678_9abc_def0];
        let b = vec![0x0fed_cba9_8765_4321];
        let prod = mul(&a, &b);
        let expect = 0x1234_5678_9abc_def0u128 * 0x0fed_cba9_8765_4321u128;
        assert_eq!(prod, vec![expect as u64, (expect >> 64) as u64]);
    }

    #[test]
    fn div_rem_round_trips() {
        let u = vec![0xdead_beef_cafe_babe, 0x1234_5678_9abc_def0, 0xffff];
        let v = vec![0x1_0000_0001, 0x2];
        let (q, r) = div_rem(&u, &v);
        let mut back = mul(&q, &v);
        add_assign(&mut back, &r);
        assert_eq!(normalized(&back), normalized(&u));
        assert_eq!(cmp(&r, &v), Ordering::Less);
    }

    #[test]
    fn div_by_larger_returns_zero_quotient() {
        let (q, r) = div_rem(&[5], &[0, 1]);
        assert!(q.is_empty());
        assert_eq!(r, vec![5]);
    }

    #[test]
    fn shifts_invert() {
        let a = vec![0x8000_0000_0000_0001, 0x7];
        assert_eq!(shr(&shl(&a, 67), 67), a);
    }

    #[test]
    fn bit_len_counts_top_limb() {
        assert_eq!(bit_len(&[]), 0);
        assert_eq!(bit_len(&[1]), 1);
        assert_eq!(bit_len(&[0, 1]), 65);
        assert_eq!(bit_len(&[0, 0x8000_0000_0000_0000]), 128);
    }
}

//! Modular arithmetic in `Z/mZ` via a reusable ring context.

use crate::montgomery::MontgomeryRing;
use crate::BigUint;

/// A modular-arithmetic context for a fixed modulus.
///
/// Construct one `ModRing` per modulus and reuse it: all operations reduce
/// their result into `[0, m)`. Inputs are reduced on entry, so callers may
/// pass unreduced values.
///
/// For odd moduli the ring carries a [`MontgomeryRing`] and routes the
/// `pow` family through Montgomery-form fixed-window exponentiation; even
/// moduli fall back to the division-based `*_naive` reference
/// implementations, which stay public as the differential-testing oracle.
///
/// # Examples
///
/// ```
/// use whopay_num::{BigUint, ModRing};
///
/// let ring = ModRing::new(BigUint::from(97u64));
/// let a = BigUint::from(95u64);
/// let b = BigUint::from(5u64);
/// assert_eq!(ring.add(&a, &b), BigUint::from(3u64));
/// assert_eq!(ring.pow(&b, &BigUint::from(96u64)), BigUint::from(1u64)); // Fermat
/// ```
#[derive(Debug, Clone)]
pub struct ModRing {
    modulus: BigUint,
    mont: Option<MontgomeryRing>,
    /// Caller-asserted primality of the modulus (see [`ModRing::new_prime`]);
    /// enables the Fermat inversion fast path for small moduli.
    prime: bool,
}

impl PartialEq for ModRing {
    fn eq(&self, other: &Self) -> bool {
        // The Montgomery context is a pure function of the modulus.
        self.modulus == other.modulus
    }
}

impl Eq for ModRing {}

impl ModRing {
    /// Creates a ring modulo `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or one (the trivial rings are never what
    /// protocol code wants and almost always indicate a bug).
    pub fn new(modulus: BigUint) -> Self {
        assert!(modulus > BigUint::one(), "modulus must be at least 2");
        let mont = MontgomeryRing::new(&modulus);
        ModRing { modulus, mont, prime: false }
    }

    /// Creates a ring whose modulus the caller asserts to be prime.
    ///
    /// Primality is not checked here; it only unlocks the Fermat-based
    /// [`ModRing::inv`] fast path (`a^{m-2}`), which is sound exactly when
    /// the modulus is prime. Protocol code constructs these from validated
    /// [`crate::SchnorrGroup`] parameters.
    pub fn new_prime(modulus: BigUint) -> Self {
        let mut ring = Self::new(modulus);
        ring.prime = true;
        ring
    }

    /// The modulus `m`.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// The Montgomery fast-path context (`None` for even moduli).
    pub fn montgomery(&self) -> Option<&MontgomeryRing> {
        self.mont.as_ref()
    }

    /// Reduces `a` into `[0, m)`.
    pub fn reduce(&self, a: &BigUint) -> BigUint {
        if a < &self.modulus {
            a.clone()
        } else {
            a % &self.modulus
        }
    }

    /// `(a + b) mod m`.
    pub fn add(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let mut s = self.reduce(a) + self.reduce(b);
        if s >= self.modulus {
            s -= &self.modulus;
        }
        s
    }

    /// `(a - b) mod m`.
    pub fn sub(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let a = self.reduce(a);
        let b = self.reduce(b);
        if a >= b {
            a - b
        } else {
            a + &self.modulus - b
        }
    }

    /// `(-a) mod m`.
    pub fn neg(&self, a: &BigUint) -> BigUint {
        let a = self.reduce(a);
        if a.is_zero() {
            a
        } else {
            &self.modulus - &a
        }
    }

    /// `(a * b) mod m`.
    ///
    /// Reduction is by Knuth division; a naive (full-product) Barrett
    /// variant was benchmarked and measured ~20% *slower* at 1024 bits —
    /// it costs three schoolbook multiplications against division's
    /// effective two — so the simpler code stays.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        (self.reduce(a) * self.reduce(b)) % &self.modulus
    }

    /// `a² mod m`.
    pub fn sqr(&self, a: &BigUint) -> BigUint {
        let a = self.reduce(a);
        (&a * &a) % &self.modulus
    }

    /// `a^e mod m`.
    ///
    /// Odd moduli take the Montgomery fixed-window fast path; even moduli
    /// fall back to [`ModRing::pow_naive`]. `0^0` is defined as `1`,
    /// matching the usual convention.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        match &self.mont {
            Some(mont) => mont.pow(&self.reduce(base), exp),
            None => self.pow_naive(base, exp),
        }
    }

    /// `a^e mod m` by left-to-right binary exponentiation with division-
    /// based reduction — the reference implementation the Montgomery fast
    /// path is differentially tested against.
    pub fn pow_naive(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let base = self.reduce(base);
        if exp.is_zero() {
            return BigUint::one() % &self.modulus;
        }
        let mut acc = base.clone();
        for i in (0..exp.bits() - 1).rev() {
            acc = self.sqr(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, &base);
            }
        }
        acc
    }

    /// Simultaneous `g1^e1 * g2^e2 mod m`, roughly the cost of a single
    /// exponentiation. Heavily used by signature verification.
    ///
    /// Odd moduli use interleaved 2-bit-window Montgomery exponentiation;
    /// even moduli fall back to [`ModRing::pow2_naive`].
    pub fn pow2(&self, g1: &BigUint, e1: &BigUint, g2: &BigUint, e2: &BigUint) -> BigUint {
        match &self.mont {
            Some(mont) => mont.pow2(&self.reduce(g1), e1, &self.reduce(g2), e2),
            None => self.pow2_naive(g1, e1, g2, e2),
        }
    }

    /// Simultaneous `g1^e1 * g2^e2 mod m` by bit-at-a-time Shamir's trick —
    /// the reference implementation for differential tests.
    pub fn pow2_naive(&self, g1: &BigUint, e1: &BigUint, g2: &BigUint, e2: &BigUint) -> BigUint {
        let g1 = self.reduce(g1);
        let g2 = self.reduce(g2);
        let g12 = self.mul(&g1, &g2);
        let bits = e1.bits().max(e2.bits());
        let mut acc = BigUint::one() % &self.modulus;
        for i in (0..bits).rev() {
            acc = self.sqr(&acc);
            match (e1.bit(i), e2.bit(i)) {
                (true, true) => acc = self.mul(&acc, &g12),
                (true, false) => acc = self.mul(&acc, &g1),
                (false, true) => acc = self.mul(&acc, &g2),
                (false, false) => {}
            }
        }
        acc
    }

    /// Simultaneous `g1^e1 * g2^e2 * g3^e3 mod m` (three-way Shamir's
    /// trick) — one shared squaring chain instead of three separate
    /// exponentiations. Used by group-signature verification.
    pub fn pow3(
        &self,
        g1: &BigUint,
        e1: &BigUint,
        g2: &BigUint,
        e2: &BigUint,
        g3: &BigUint,
        e3: &BigUint,
    ) -> BigUint {
        match &self.mont {
            Some(mont) => mont.pow3(&self.reduce(g1), e1, &self.reduce(g2), e2, &self.reduce(g3), e3),
            None => self.mul(&self.pow2_naive(g1, e1, g2, e2), &self.pow_naive(g3, e3)),
        }
    }

    /// Simultaneous product `∏ gᵢ^eᵢ mod m` over arbitrarily many pairs —
    /// the n-base generalization of [`ModRing::pow2`]/[`ModRing::pow3`].
    ///
    /// Odd moduli dispatch through
    /// [`MontgomeryRing::multi_pow`](crate::montgomery::MontgomeryRing::multi_pow)
    /// (Straus interleaving for few bases, Pippenger buckets for many);
    /// even moduli fall back to [`ModRing::multi_pow_naive`]. An empty
    /// product is `1`.
    pub fn multi_pow(&self, pairs: &[(BigUint, BigUint)]) -> BigUint {
        match &self.mont {
            Some(mont) => {
                if pairs.iter().all(|(g, _)| g < &self.modulus) {
                    mont.multi_pow(pairs)
                } else {
                    let reduced: Vec<(BigUint, BigUint)> =
                        pairs.iter().map(|(g, e)| (self.reduce(g), e.clone())).collect();
                    mont.multi_pow(&reduced)
                }
            }
            None => self.multi_pow_naive(pairs),
        }
    }

    /// `∏ gᵢ^eᵢ mod m` as a fold of independent naive exponentiations —
    /// the reference oracle the Straus and Pippenger paths are
    /// differentially tested against.
    pub fn multi_pow_naive(&self, pairs: &[(BigUint, BigUint)]) -> BigUint {
        let mut acc = BigUint::one() % &self.modulus;
        for (g, e) in pairs {
            acc = self.mul(&acc, &self.pow_naive(g, e));
        }
        acc
    }

    /// Modular inverse: returns `x` with `a * x ≡ 1 (mod m)`, or `None` if
    /// `gcd(a, m) != 1`.
    ///
    /// For small prime moduli (declared via [`ModRing::new_prime`]) this
    /// computes `a^{m-2}` with the Montgomery fast path — cheaper than the
    /// allocation-heavy Euclidean loop below that size. Everything else
    /// uses the extended Euclidean algorithm with a sign-tracked Bézout
    /// coefficient.
    pub fn inv(&self, a: &BigUint) -> Option<BigUint> {
        let a = self.reduce(a);
        if a.is_zero() {
            return None;
        }
        // Fermat pays off only while the exponentiation's ~1.25·bits
        // multiplications stay cheap; past 4 limbs Euclid wins.
        if self.prime && self.modulus.limbs().len() <= 4 {
            if let Some(mont) = &self.mont {
                return Some(mont.pow(&a, &(&self.modulus - &BigUint::from(2u64))));
            }
        }
        // Invariant: old_r = old_s * a (mod m), r = s * a (mod m),
        // with s coefficients tracked as (magnitude, negative?).
        let mut old_r = a;
        let mut r = self.modulus.clone();
        let mut old_s = (BigUint::one(), false);
        let mut s = (BigUint::zero(), false);
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s  (signed arithmetic)
            let qs = &q * &s.0;
            let new_s = match (old_s.1, s.1) {
                // old_s - q*s where signs match: magnitude subtraction.
                (false, false) => {
                    if old_s.0 >= qs {
                        (&old_s.0 - &qs, false)
                    } else {
                        (&qs - &old_s.0, true)
                    }
                }
                (true, true) => {
                    if old_s.0 >= qs {
                        (&old_s.0 - &qs, true)
                    } else {
                        (&qs - &old_s.0, false)
                    }
                }
                // Opposite signs: magnitudes add.
                (false, true) => (&old_s.0 + &qs, false),
                (true, false) => (&old_s.0 + &qs, true),
            };
            old_s = std::mem::replace(&mut s, new_s);
        }
        if !old_r.is_one() {
            return None;
        }
        let (mag, neg) = old_s;
        let mag = mag % &self.modulus;
        Some(if neg && !mag.is_zero() { &self.modulus - &mag } else { mag })
    }

    /// Uniformly random ring element in `[0, m)`.
    pub fn random<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        BigUint::random_below(rng, &self.modulus)
    }

    /// Uniformly random *invertible-looking* element in `[1, m)`.
    ///
    /// For prime moduli every nonzero element is invertible; for composite
    /// moduli the caller should check [`ModRing::inv`].
    pub fn random_nonzero<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let x = self.random(rng);
            if !x.is_zero() {
                return x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(m: u64) -> ModRing {
        ModRing::new(BigUint::from(m))
    }

    #[test]
    fn add_sub_wrap() {
        let r = ring(13);
        assert_eq!(r.add(&BigUint::from(9u64), &BigUint::from(9u64)).to_u64(), Some(5));
        assert_eq!(r.sub(&BigUint::from(3u64), &BigUint::from(9u64)).to_u64(), Some(7));
        assert_eq!(r.neg(&BigUint::from(3u64)).to_u64(), Some(10));
        assert_eq!(r.neg(&BigUint::zero()).to_u64(), Some(0));
    }

    #[test]
    fn reduces_unreduced_inputs() {
        let r = ring(13);
        assert_eq!(
            r.mul(&BigUint::from(100u64), &BigUint::from(100u64)).to_u64(),
            Some((100 * 100) % 13)
        );
    }

    #[test]
    fn pow_matches_naive() {
        let r = ring(1_000_003);
        let b = BigUint::from(7u64);
        let mut naive = 1u64;
        for e in 0..50u64 {
            assert_eq!(r.pow(&b, &BigUint::from(e)).to_u64(), Some(naive), "exponent {e}");
            naive = naive * 7 % 1_000_003;
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let r = ring(97);
        assert!(r.pow(&BigUint::zero(), &BigUint::zero()).is_one());
    }

    #[test]
    fn pow2_matches_separate_pows() {
        let r = ring(1_000_003);
        let g1 = BigUint::from(5u64);
        let g2 = BigUint::from(11u64);
        let e1 = BigUint::from(123_456u64);
        let e2 = BigUint::from(654_321u64);
        let combined = r.pow2(&g1, &e1, &g2, &e2);
        let separate = r.mul(&r.pow(&g1, &e1), &r.pow(&g2, &e2));
        assert_eq!(combined, separate);
    }

    #[test]
    fn multi_pow_matches_separate_pows() {
        // Odd (Montgomery) and even (naive-fallback) moduli.
        for m in [1_000_003u64, 1_000_006] {
            let r = ring(m);
            let pairs: Vec<_> = [(3u64, 101u64), (5, 202), (7, 303), (11, 404)]
                .iter()
                .map(|&(g, e)| (BigUint::from(g), BigUint::from(e)))
                .collect();
            let mut expect = BigUint::one();
            for (g, e) in &pairs {
                expect = r.mul(&expect, &r.pow(g, e));
            }
            assert_eq!(r.multi_pow(&pairs), expect, "m={m}");
            assert_eq!(r.multi_pow_naive(&pairs), expect, "m={m}");
        }
        assert!(ring(97).multi_pow(&[]).is_one());
    }

    #[test]
    fn multi_pow_reduces_unreduced_bases() {
        let r = ring(97);
        let pairs = vec![(BigUint::from(1000u64), BigUint::from(5u64))];
        assert_eq!(r.multi_pow(&pairs), r.pow(&BigUint::from(1000u64), &BigUint::from(5u64)));
    }

    #[test]
    fn inverse_round_trips() {
        let r = ring(10_007); // prime
        for a in [1u64, 2, 3, 5000, 10_006] {
            let a = BigUint::from(a);
            let inv = r.inv(&a).expect("invertible");
            assert!(r.mul(&a, &inv).is_one());
        }
    }

    #[test]
    fn inverse_of_noncoprime_is_none() {
        let r = ring(12);
        assert_eq!(r.inv(&BigUint::from(4u64)), None);
        assert_eq!(r.inv(&BigUint::zero()), None);
        assert!(r.inv(&BigUint::from(5u64)).is_some());
    }

    #[test]
    fn fermat_little_theorem_on_big_prime() {
        // 2^61 - 1 is a Mersenne prime.
        let p = (BigUint::one() << 61) - BigUint::one();
        let r = ModRing::new(p.clone());
        let a = BigUint::from(123_456_789u64);
        assert!(r.pow(&a, &(&p - &BigUint::one())).is_one());
    }
}

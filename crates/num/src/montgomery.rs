//! Montgomery-form modular arithmetic (CIOS) and fixed-base tables.
//!
//! This module is the fast path under [`crate::ModRing`]: for an odd
//! modulus `m` of `n` limbs it keeps residues in Montgomery form
//! (`aR mod m` with `R = 2^(64n)`), where a modular multiplication is a
//! single CIOS (coarsely integrated operand scanning) pass — two
//! schoolbook-sized multiplications fused with the reduction and **no
//! division**. Conversion in and out of Montgomery form costs one
//! multiplication each and is amortized across a whole exponentiation.
//!
//! Exponentiation uses fixed windows (width chosen from the exponent
//! size, up to 5 bits), and [`FixedBaseTable`] precomputes digit-aligned
//! powers of a fixed base (the group generator) so that a full
//! exponentiation costs only `ceil(bits/k)` multiplications and **zero
//! squarings**.
//!
//! Everything here is variable-time; like the rest of this crate it
//! reproduces the paper's performance envelope and is not hardened
//! against timing side channels.

use std::cmp::Ordering;

use crate::{limbs, BigUint};

/// Montgomery multiplication context for a fixed odd modulus.
///
/// Residues handled by the raw `mont_*` methods are fixed-width
/// little-endian limb vectors of [`MontgomeryRing::num_limbs`] limbs in
/// Montgomery form. The [`MontgomeryRing::pow`] family accepts and
/// returns ordinary [`BigUint`] values and hides the conversions.
///
/// # Examples
///
/// ```
/// use whopay_num::{montgomery::MontgomeryRing, BigUint};
///
/// let m = BigUint::from(97u64);
/// let ring = MontgomeryRing::new(&m).expect("odd modulus");
/// let r = ring.pow(&BigUint::from(5u64), &BigUint::from(96u64));
/// assert!(r.is_one()); // Fermat
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontgomeryRing {
    /// Modulus, fixed width `n`, top limb nonzero.
    m: Vec<u64>,
    /// `-m^{-1} mod 2^64` (the CIOS per-iteration quotient factor).
    n0inv: u64,
    /// `R^2 mod m`, the to-Montgomery conversion factor.
    r2: Vec<u64>,
    /// `R mod m`, i.e. `1` in Montgomery form.
    one: Vec<u64>,
}

impl MontgomeryRing {
    /// Builds a context for `modulus`, or `None` when `modulus` is even
    /// or smaller than 3 (Montgomery reduction requires `gcd(m, R) = 1`).
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.bits() < 2 {
            return None;
        }
        let m = modulus.limbs().to_vec();
        let n = m.len();
        // Newton–Hensel inversion of m[0] mod 2^64: each step doubles the
        // number of correct low bits, and x = m0 seeds 3 of them.
        let m0 = m[0];
        let mut inv = m0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let r = BigUint::one() << (64 * n);
        let one = pad(&(&r % modulus), n);
        let r2 = pad(&((&r * &r) % modulus), n);
        Some(MontgomeryRing { m, n0inv: inv.wrapping_neg(), r2, one })
    }

    /// Width of the fixed-size residue representation, in limbs.
    pub fn num_limbs(&self) -> usize {
        self.m.len()
    }

    /// The modulus as a [`BigUint`].
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.m.clone())
    }

    /// Converts `a` (must already be reduced mod `m`) to Montgomery form.
    pub fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        debug_assert!(limbs::cmp(a.limbs(), &self.m) == Ordering::Less);
        self.mont_mul(&pad(a, self.m.len()), &self.r2)
    }

    /// Converts a Montgomery-form residue back to an ordinary integer.
    pub fn from_mont(&self, a: &[u64]) -> BigUint {
        let mut unit = vec![0u64; self.m.len()];
        unit[0] = 1;
        BigUint::from_limbs(self.mont_mul(a, &unit))
    }

    /// `1` in Montgomery form (`R mod m`).
    pub fn mont_one(&self) -> &[u64] {
        &self.one
    }

    /// Montgomery product `a * b * R^{-1} mod m` as a fresh vector.
    pub fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut t = vec![0u64; self.m.len() + 1];
        self.mont_mul_into(a, b, &mut t);
        t.truncate(self.m.len());
        t
    }

    /// Finely-integrated Montgomery multiplication (FIOS): one pass per
    /// limb of `a` computes both the partial product `a_i·b` and the
    /// quotient correction `mu·m`, with the two carry chains kept in
    /// registers. Writes `a·b·R^{-1} mod m` into `t[..n]`.
    ///
    /// `a` and `b` may alias each other but not `t`; `t` needs `n + 1`
    /// limbs.
    fn mont_mul_into(&self, a: &[u64], b: &[u64], t: &mut [u64]) {
        let m = &self.m[..];
        let n = m.len();
        assert!(a.len() == n && b.len() == n && t.len() == n + 1);
        t.fill(0);
        for &ai in a {
            // Limb 0: derive mu so the sum becomes divisible by 2^64; its
            // low limb is exactly zero and is shifted away.
            let v1 = t[0] as u128 + ai as u128 * b[0] as u128;
            let mu = (v1 as u64).wrapping_mul(self.n0inv);
            let v2 = (v1 as u64) as u128 + mu as u128 * m[0] as u128;
            debug_assert_eq!(v2 as u64, 0);
            let mut c_ab = (v1 >> 64) as u64;
            let mut c_mm = (v2 >> 64) as u64;
            for j in 1..n {
                let v1 = t[j] as u128 + ai as u128 * b[j] as u128 + c_ab as u128;
                c_ab = (v1 >> 64) as u64;
                let v2 = (v1 as u64) as u128 + mu as u128 * m[j] as u128 + c_mm as u128;
                c_mm = (v2 >> 64) as u64;
                t[j - 1] = v2 as u64;
            }
            let v = t[n] as u128 + c_ab as u128 + c_mm as u128;
            t[n - 1] = v as u64;
            t[n] = (v >> 64) as u64;
        }
        // Invariant: t < 2m, so at most one final subtraction is needed.
        if t[n] != 0 || limbs::cmp(&t[..n], m) != Ordering::Less {
            let mut borrow = 0u64;
            for (tj, &mj) in t[..n].iter_mut().zip(m.iter()) {
                let (d1, b1) = tj.overflowing_sub(mj);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *tj = d2;
                borrow = b1 as u64 + b2 as u64;
            }
            t[n] = t[n].wrapping_sub(borrow);
        }
        debug_assert_eq!(t[n], 0);
    }

    /// `(a * b) mod m` on ordinary integers (both must be reduced).
    ///
    /// Costs three Montgomery multiplications (two conversions plus the
    /// product), so it only pays off inside exponentiations; exposed for
    /// differential testing against [`crate::ModRing::mul`].
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.from_mont(&self.mont_mul(&self.to_mont(a), &self.to_mont(b)))
    }

    /// `base^exp mod m` by fixed-window exponentiation in Montgomery form.
    ///
    /// `base` must already be reduced mod `m`. `0^0 = 1`.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let ebits = exp.bits();
        if ebits == 0 {
            return BigUint::one() % &self.modulus();
        }
        let n = self.m.len();
        let k = window_size(ebits);
        let base_m = self.to_mont(base);
        // table[j - 1] = base^j in Montgomery form, j = 1 .. 2^k - 1.
        let mut table = Vec::with_capacity((1usize << k) - 1);
        table.push(base_m.clone());
        for _ in 2..(1usize << k) {
            table.push(self.mont_mul(table.last().unwrap(), &base_m));
        }
        let digits = ebits.div_ceil(k);
        let top = exp_digit(exp, digits - 1, k);
        let mut acc = vec![0u64; n + 1];
        let mut tmp = vec![0u64; n + 1];
        // The top digit is nonzero (it holds the exponent's leading bit).
        acc[..n].copy_from_slice(&table[top - 1]);
        for i in (0..digits - 1).rev() {
            for _ in 0..k {
                self.mont_mul_into(&acc[..n], &acc[..n], &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
            let d = exp_digit(exp, i, k);
            if d != 0 {
                self.mont_mul_into(&acc[..n], &table[d - 1], &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        self.from_mont(&acc[..n])
    }

    /// Simultaneous `g1^e1 * g2^e2 mod m` with interleaved 2-bit windows:
    /// one shared squaring chain and a 16-entry table of joint products.
    ///
    /// Both bases must already be reduced mod `m`.
    pub fn pow2(&self, g1: &BigUint, e1: &BigUint, g2: &BigUint, e2: &BigUint) -> BigUint {
        let bits = e1.bits().max(e2.bits());
        if bits == 0 {
            return BigUint::one() % &self.modulus();
        }
        let n = self.m.len();
        // joint[i + 4*j] = g1^i * g2^j in Montgomery form (i, j in 0..4).
        let g1m = self.to_mont(g1);
        let g2m = self.to_mont(g2);
        let mut p1 = vec![self.one.clone(), g1m.clone()];
        p1.push(self.mont_mul(&g1m, &g1m));
        p1.push(self.mont_mul(&p1[2], &g1m));
        let mut joint = p1;
        for j in 1..4usize {
            let g2j = if j == 1 { g2m.clone() } else { self.mont_mul(&joint[4 * (j - 1)], &g2m) };
            joint.push(g2j.clone());
            for i in 1..4usize {
                joint.push(self.mont_mul(&joint[i], &g2j));
            }
        }
        let digits = bits.div_ceil(2);
        let mut acc = vec![0u64; n + 1];
        let mut tmp = vec![0u64; n + 1];
        acc[..n].copy_from_slice(&self.one);
        let mut started = false;
        for i in (0..digits).rev() {
            if started {
                for _ in 0..2 {
                    self.mont_mul_into(&acc[..n], &acc[..n], &mut tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
            let d = exp_digit(e1, i, 2) + 4 * exp_digit(e2, i, 2);
            if d != 0 {
                if started {
                    self.mont_mul_into(&acc[..n], &joint[d], &mut tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                } else {
                    acc[..n].copy_from_slice(&joint[d]);
                    started = true;
                }
            }
        }
        self.from_mont(&acc[..n])
    }

    /// Simultaneous `g1^e1 * g2^e2 * g3^e3 mod m` (three-way Shamir):
    /// one shared squaring chain over a table of the 7 subset products.
    ///
    /// All bases must already be reduced mod `m`.
    pub fn pow3(
        &self,
        g1: &BigUint,
        e1: &BigUint,
        g2: &BigUint,
        e2: &BigUint,
        g3: &BigUint,
        e3: &BigUint,
    ) -> BigUint {
        let bits = e1.bits().max(e2.bits()).max(e3.bits());
        if bits == 0 {
            return BigUint::one() % &self.modulus();
        }
        let n = self.m.len();
        // subset[b] = product of the bases selected by the bits of b.
        let g1m = self.to_mont(g1);
        let g2m = self.to_mont(g2);
        let g3m = self.to_mont(g3);
        let g12m = self.mont_mul(&g1m, &g2m);
        let g123m = self.mont_mul(&g12m, &g3m);
        let subset: Vec<Vec<u64>> = vec![
            self.one.clone(),
            g1m.clone(),
            g2m.clone(),
            g12m,
            g3m.clone(),
            self.mont_mul(&g1m, &g3m),
            self.mont_mul(&g2m, &g3m),
            g123m,
        ];
        let mut acc = vec![0u64; n + 1];
        let mut tmp = vec![0u64; n + 1];
        acc[..n].copy_from_slice(&self.one);
        let mut started = false;
        for i in (0..bits).rev() {
            if started {
                self.mont_mul_into(&acc[..n], &acc[..n], &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
            let b = e1.bit(i) as usize | (e2.bit(i) as usize) << 1 | (e3.bit(i) as usize) << 2;
            if b != 0 {
                if started {
                    self.mont_mul_into(&acc[..n], &subset[b], &mut tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                } else {
                    acc[..n].copy_from_slice(&subset[b]);
                    started = true;
                }
            }
        }
        self.from_mont(&acc[..n])
    }

    /// Simultaneous product `∏ gᵢ^eᵢ mod m` over an arbitrary number of
    /// `(base, exponent)` pairs.
    ///
    /// Dispatches on the number of bases: below
    /// [`MontgomeryRing::PIPPENGER_MIN`] the Straus interleaved-window
    /// method wins (its per-base tables are cheap and every nonzero digit
    /// costs exactly one multiplication); at or above it the Pippenger
    /// bucket method wins (bucket aggregation costs `2·(2^c − 1)` per
    /// window *regardless* of the base count). Bases must already be
    /// reduced mod `m`. An empty product is `1`.
    pub fn multi_pow(&self, pairs: &[(BigUint, BigUint)]) -> BigUint {
        if pairs.len() >= Self::PIPPENGER_MIN {
            self.multi_pow_pippenger(pairs)
        } else {
            self.multi_pow_straus(pairs)
        }
    }

    /// Base count at which [`MontgomeryRing::multi_pow`] switches from
    /// Straus to Pippenger.
    pub const PIPPENGER_MIN: usize = 32;

    /// Straus (interleaved fixed-window) multi-exponentiation: one table
    /// of `2^k − 1` powers per base, one shared squaring chain, and one
    /// multiplication per nonzero digit of each exponent.
    ///
    /// Exposed (rather than private behind [`MontgomeryRing::multi_pow`])
    /// as a differential-testing surface.
    pub fn multi_pow_straus(&self, pairs: &[(BigUint, BigUint)]) -> BigUint {
        let bits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
        if bits == 0 {
            return BigUint::one() % &self.modulus();
        }
        let n = self.m.len();
        let k = straus_window(pairs.len(), bits);
        // tables[b][j - 1] = g_b^j in Montgomery form, j = 1 .. 2^k - 1.
        let mut tables = Vec::with_capacity(pairs.len());
        for (g, _) in pairs {
            let gm = self.to_mont(g);
            let mut t = Vec::with_capacity((1usize << k) - 1);
            t.push(gm.clone());
            for _ in 2..(1usize << k) {
                t.push(self.mont_mul(t.last().unwrap(), &gm));
            }
            tables.push(t);
        }
        let digits = bits.div_ceil(k);
        let mut acc = vec![0u64; n + 1];
        let mut tmp = vec![0u64; n + 1];
        acc[..n].copy_from_slice(&self.one);
        let mut started = false;
        for i in (0..digits).rev() {
            if started {
                for _ in 0..k {
                    self.mont_mul_into(&acc[..n], &acc[..n], &mut tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
            for (table, (_, e)) in tables.iter().zip(pairs) {
                let d = exp_digit(e, i, k);
                if d != 0 {
                    if started {
                        self.mont_mul_into(&acc[..n], &table[d - 1], &mut tmp);
                        std::mem::swap(&mut acc, &mut tmp);
                    } else {
                        acc[..n].copy_from_slice(&table[d - 1]);
                        started = true;
                    }
                }
            }
        }
        self.from_mont(&acc[..n])
    }

    /// Pippenger (bucket) multi-exponentiation: exponents are scanned in
    /// `c`-bit windows top-down; within a window every base lands in the
    /// bucket of its digit value (one multiplication per base), and the
    /// suffix-product sweep turns the buckets into `∏ bucket_d^d` with
    /// `2·(2^c − 1)` multiplications — independent of the base count.
    ///
    /// Exposed as a differential-testing surface; callers should prefer
    /// [`MontgomeryRing::multi_pow`].
    pub fn multi_pow_pippenger(&self, pairs: &[(BigUint, BigUint)]) -> BigUint {
        let bits = pairs.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
        if bits == 0 {
            return BigUint::one() % &self.modulus();
        }
        let c = pippenger_window(pairs.len(), bits);
        let bases: Vec<Vec<u64>> = pairs.iter().map(|(g, _)| self.to_mont(g)).collect();
        let digits = bits.div_ceil(c);
        let mut acc: Option<Vec<u64>> = None;
        let mut buckets: Vec<Option<Vec<u64>>> = vec![None; (1usize << c) - 1];
        for i in (0..digits).rev() {
            if let Some(a) = &acc {
                let mut sq = a.clone();
                for _ in 0..c {
                    sq = self.mont_mul(&sq, &sq);
                }
                acc = Some(sq);
            }
            buckets.iter_mut().for_each(|b| *b = None);
            for (base, (_, e)) in bases.iter().zip(pairs) {
                let d = exp_digit(e, i, c);
                if d != 0 {
                    let slot = &mut buckets[d - 1];
                    *slot = Some(match slot.take() {
                        None => base.clone(),
                        Some(cur) => self.mont_mul(&cur, base),
                    });
                }
            }
            // Suffix sweep: after visiting buckets d.. the running product
            // holds ∏_{j ≥ d} bucket_j, and folding it into the window
            // total once per step contributes bucket_j exactly j times.
            let mut running: Option<Vec<u64>> = None;
            let mut window: Option<Vec<u64>> = None;
            for bucket in buckets.iter().rev() {
                if let Some(b) = bucket {
                    running = Some(match running {
                        None => b.clone(),
                        Some(r) => self.mont_mul(&r, b),
                    });
                }
                if let Some(r) = &running {
                    window = Some(match window {
                        None => r.clone(),
                        Some(w) => self.mont_mul(&w, r),
                    });
                }
            }
            if let Some(w) = window {
                acc = Some(match acc {
                    None => w,
                    Some(a) => self.mont_mul(&a, &w),
                });
            }
        }
        match acc {
            None => BigUint::one() % &self.modulus(),
            Some(a) => self.from_mont(&a),
        }
    }
}

/// Straus window width for `n` bases and `bits`-bit exponents: minimizes
/// table building (`2^k − 2` per base) plus `bits` shared squarings plus
/// one multiplication per digit per base.
fn straus_window(n: usize, bits: usize) -> usize {
    let n = n.max(1);
    (1..=6).min_by_key(|&k| n * ((1usize << k) - 2) + bits + n * bits.div_ceil(k)).unwrap()
}

/// Pippenger window width for `n` bases and `bits`-bit exponents:
/// minimizes per-window work (`n` bucket insertions plus `2·(2^c − 1)`
/// aggregation multiplications) times the window count, plus `bits`
/// shared squarings.
fn pippenger_window(n: usize, bits: usize) -> usize {
    (1..=8).min_by_key(|&c| bits.div_ceil(c) * (n + (1usize << (c + 1))) + bits).unwrap()
}

/// Fixed-window width for an exponent of `bits` bits, balancing the
/// `2^k - 2` table-build multiplications against the `bits/k` saved ones.
fn window_size(bits: usize) -> usize {
    if bits >= 512 {
        5
    } else if bits >= 128 {
        4
    } else if bits >= 24 {
        3
    } else {
        1
    }
}

/// The `i`-th `k`-bit digit of `e` (little-endian digit order).
fn exp_digit(e: &BigUint, i: usize, k: usize) -> usize {
    let lo = i * k;
    let mut d = 0usize;
    for b in 0..k {
        d |= (e.bit(lo + b) as usize) << b;
    }
    d
}

/// Fixed-width copy of `x` padded to `n` limbs.
fn pad(x: &BigUint, n: usize) -> Vec<u64> {
    let mut v = x.limbs().to_vec();
    debug_assert!(v.len() <= n);
    v.resize(n, 0);
    v
}

/// Precomputed digit-aligned powers of one fixed base.
///
/// For a base `g` and window width `k`, stores `g^(j·2^(k·i))` in
/// Montgomery form for every digit position `i` and digit value
/// `j ∈ 1..2^k`, so `g^e` is just the product of one table entry per
/// nonzero digit of `e` — no squarings at all. Memory is
/// `ceil(bits/k) · (2^k - 1)` residues (≈ 75 KiB for a 160-bit exponent
/// range over a 1024-bit modulus at `k = 4`).
#[derive(Debug, Clone)]
pub struct FixedBaseTable {
    k: usize,
    digits: usize,
    /// `table[i * (2^k - 1) + (j - 1)] = g^(j << (k*i))` in Montgomery form.
    table: Vec<Vec<u64>>,
}

impl FixedBaseTable {
    /// Window width used for the generator tables.
    pub const WINDOW: usize = 4;

    /// Builds the table for exponents up to `max_bits` bits.
    ///
    /// `base` must already be reduced mod the ring's modulus.
    pub fn new(ring: &MontgomeryRing, base: &BigUint, max_bits: usize, k: usize) -> Self {
        assert!((1..=8).contains(&k), "window width out of range");
        let digits = max_bits.div_ceil(k).max(1);
        let span = (1usize << k) - 1;
        let mut table = Vec::with_capacity(digits * span);
        let mut cur = ring.to_mont(base); // g^(2^(k*i)) for the current i
        for i in 0..digits {
            table.push(cur.clone());
            for _ in 2..=span {
                table.push(ring.mont_mul(table.last().unwrap(), &cur));
            }
            if i + 1 < digits {
                for _ in 0..k {
                    cur = ring.mont_mul(&cur, &cur);
                }
            }
        }
        FixedBaseTable { k, digits, table }
    }

    /// Largest exponent bit-length this table covers.
    pub fn max_bits(&self) -> usize {
        self.digits * self.k
    }

    /// `base^e mod m`, or `None` when `e` is too large for the table
    /// (callers fall back to a generic exponentiation).
    pub fn pow(&self, ring: &MontgomeryRing, e: &BigUint) -> Option<BigUint> {
        if e.bits() > self.max_bits() {
            return None;
        }
        let span = (1usize << self.k) - 1;
        let mut acc: Option<Vec<u64>> = None;
        for i in 0..self.digits {
            let d = exp_digit(e, i, self.k);
            if d == 0 {
                continue;
            }
            let entry = &self.table[i * span + (d - 1)];
            acc = Some(match acc {
                None => entry.clone(),
                Some(a) => ring.mont_mul(&a, entry),
            });
        }
        Some(match acc {
            None => BigUint::one() % &ring.modulus(), // e == 0
            Some(a) => ring.from_mont(&a),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModRing;
    use rand::Rng;

    fn odd_modulus(rng: &mut impl Rng, bits: usize) -> BigUint {
        loop {
            let m = BigUint::random_bits(rng, bits);
            if m.is_odd() && m.bits() >= 2 {
                return m;
            }
        }
    }

    #[test]
    fn round_trip_through_montgomery_form() {
        let mut rng = crate::test_rng(0xA0);
        for bits in [3usize, 64, 65, 192, 1024] {
            let m = odd_modulus(&mut rng, bits);
            let ring = MontgomeryRing::new(&m).unwrap();
            for _ in 0..10 {
                let a = BigUint::random_below(&mut rng, &m);
                assert_eq!(ring.from_mont(&ring.to_mont(&a)), a);
            }
        }
    }

    #[test]
    fn rejects_even_moduli() {
        assert!(MontgomeryRing::new(&BigUint::from(10u64)).is_none());
        assert!(MontgomeryRing::new(&BigUint::from(2u64)).is_none());
        assert!(MontgomeryRing::new(&BigUint::one()).is_none());
    }

    #[test]
    fn smallest_modulus_works() {
        let ring = MontgomeryRing::new(&BigUint::from(3u64)).unwrap();
        assert_eq!(ring.pow(&BigUint::from(2u64), &BigUint::from(5u64)).to_u64(), Some(2));
        assert_eq!(ring.mul(&BigUint::from(2u64), &BigUint::from(2u64)).to_u64(), Some(1));
    }

    #[test]
    fn mul_matches_plain_reduction() {
        let mut rng = crate::test_rng(0xA1);
        for bits in [64usize, 120, 512] {
            let m = odd_modulus(&mut rng, bits);
            let ring = MontgomeryRing::new(&m).unwrap();
            for _ in 0..20 {
                let a = BigUint::random_below(&mut rng, &m);
                let b = BigUint::random_below(&mut rng, &m);
                assert_eq!(ring.mul(&a, &b), (&a * &b) % &m);
            }
        }
    }

    #[test]
    fn fixed_base_table_matches_pow() {
        let mut rng = crate::test_rng(0xA2);
        let m = odd_modulus(&mut rng, 384);
        let mring = ModRing::new(m.clone());
        let mont = mring.montgomery().unwrap();
        let g = BigUint::random_below(&mut rng, &m);
        let table = FixedBaseTable::new(mont, &g, 160, FixedBaseTable::WINDOW);
        for _ in 0..10 {
            let e = BigUint::random_bits(&mut rng, 160);
            assert_eq!(table.pow(mont, &e).unwrap(), mring.pow(&g, &e));
        }
        assert!(table.pow(mont, &e_too_big()).is_none());
        assert!(table.pow(mont, &BigUint::zero()).unwrap().is_one());
    }

    fn e_too_big() -> BigUint {
        BigUint::one() << 200
    }

    fn random_pairs(
        rng: &mut impl Rng,
        m: &BigUint,
        n: usize,
        ebits: usize,
    ) -> Vec<(BigUint, BigUint)> {
        (0..n).map(|_| (BigUint::random_below(rng, m), BigUint::random_bits(rng, ebits))).collect()
    }

    #[test]
    fn multi_pow_variants_match_each_other_and_naive() {
        let mut rng = crate::test_rng(0xA3);
        for bits in [65usize, 256] {
            let m = odd_modulus(&mut rng, bits);
            let ring = MontgomeryRing::new(&m).unwrap();
            let mring = ModRing::new(m.clone());
            for n in [1usize, 2, 3, 7, 31, 32, 40] {
                let pairs = random_pairs(&mut rng, &m, n, 96);
                let expect = mring.multi_pow_naive(&pairs);
                assert_eq!(ring.multi_pow_straus(&pairs), expect, "straus n={n} bits={bits}");
                assert_eq!(ring.multi_pow_pippenger(&pairs), expect, "pippenger n={n} bits={bits}");
                assert_eq!(ring.multi_pow(&pairs), expect, "dispatch n={n} bits={bits}");
            }
        }
    }

    #[test]
    fn multi_pow_edge_cases() {
        let mut rng = crate::test_rng(0xA4);
        let m = odd_modulus(&mut rng, 128);
        let ring = MontgomeryRing::new(&m).unwrap();
        // Empty product and all-zero exponents are 1.
        assert!(ring.multi_pow(&[]).is_one());
        let zeros = vec![(BigUint::random_below(&mut rng, &m), BigUint::zero()); 5];
        assert!(ring.multi_pow_straus(&zeros).is_one());
        assert!(ring.multi_pow_pippenger(&zeros).is_one());
        // Zero bases collapse the product to zero once their digit lands.
        let pairs = vec![(BigUint::zero(), BigUint::from(3u64))];
        assert!(ring.multi_pow(&pairs).is_zero());
        // Single pair agrees with plain pow, including 64-bit-boundary exps.
        for ebits in [1usize, 63, 64, 65] {
            let g = BigUint::random_below(&mut rng, &m);
            let e = BigUint::random_bits(&mut rng, ebits);
            let pairs = vec![(g.clone(), e.clone())];
            assert_eq!(ring.multi_pow_straus(&pairs), ring.pow(&g, &e));
            assert_eq!(ring.multi_pow_pippenger(&pairs), ring.pow(&g, &e));
        }
        // Mixed exponent widths (the batch-verify shape: one long, rest short).
        let mut pairs = random_pairs(&mut rng, &m, 8, 64);
        pairs[0].1 = BigUint::random_bits(&mut rng, 160);
        let mring = ModRing::new(m.clone());
        assert_eq!(ring.multi_pow_straus(&pairs), mring.multi_pow_naive(&pairs));
        assert_eq!(ring.multi_pow_pippenger(&pairs), mring.multi_pow_naive(&pairs));
    }
}

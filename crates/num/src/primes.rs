//! Primality testing and generation of primes and DSA/Schnorr-group
//! parameters.
//!
//! WhoPay's cryptography runs over Schnorr groups: the unique subgroup of
//! order `q` (prime) of `Z_p*` where `p = kq + 1` is prime. The paper's
//! microbenchmarks (Table 2) use DSA with a 1024-bit `p` and 160-bit `q`;
//! [`SchnorrGroup::generate`] produces parameters of any such shape.

use std::sync::{Arc, OnceLock};

use rand::Rng;

use crate::montgomery::FixedBaseTable;
use crate::{BigUint, ModRing};

/// Small primes used for fast trial-division screening of candidates.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197,
    199,
];

/// Number of Miller–Rabin rounds; 2^-128 error bound for random candidates.
const MILLER_RABIN_ROUNDS: usize = 40;

/// Probabilistic primality test (trial division + Miller–Rabin).
///
/// Returns `false` for 0 and 1. The error probability for composite inputs
/// is at most `4^-rounds` with the default of 40 rounds.
///
/// # Examples
///
/// ```
/// use whopay_num::{primes, BigUint};
///
/// assert!(primes::is_probable_prime(&BigUint::from(104729u64), &mut rand::rng()));
/// assert!(!primes::is_probable_prime(&BigUint::from(104730u64), &mut rand::rng()));
/// ```
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    let two = BigUint::from(2u64);
    if n < &two {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = BigUint::from(p);
        if *n == p {
            return true;
        }
        if (n % &p).is_zero() {
            return false;
        }
    }
    miller_rabin(n, MILLER_RABIN_ROUNDS, rng)
}

/// Raw Miller–Rabin with `rounds` random bases. Assumes `n` is odd and has
/// already survived trial division.
fn miller_rabin<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    // Write n-1 = d * 2^s with d odd.
    let s = trailing_zeros(&n_minus_1);
    let d = &n_minus_1 >> s;
    let ring = ModRing::new(n.clone());
    let two = BigUint::from(2u64);
    let bound = n - &two; // bases in [2, n-2]

    'witness: for _ in 0..rounds {
        let a = BigUint::random_range(rng, &two, &bound);
        let mut x = ring.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = ring.sqr(&x);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Number of trailing zero bits (`n` must be nonzero).
fn trailing_zeros(n: &BigUint) -> usize {
    debug_assert!(!n.is_zero());
    let limbs = n.limbs();
    let mut zeros = 0;
    for &limb in limbs {
        if limb == 0 {
            zeros += 64;
        } else {
            return zeros + limb.trailing_zeros() as usize;
        }
    }
    zeros
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "need at least 2 bits for a prime");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        if candidate.is_even() {
            candidate += &BigUint::one();
            if candidate.bits() != bits {
                continue; // overflowed to bits+1 (candidate was all ones)
            }
        }
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// A Schnorr group: the order-`q` subgroup of `Z_p*`.
///
/// `p` and `q` are prime with `q | p - 1`, and `g` generates the subgroup
/// of order `q`. This is the algebraic setting for DSA, Schnorr signatures,
/// ElGamal, and the WhoPay group-signature scheme.
///
/// # Examples
///
/// ```
/// use whopay_num::primes::SchnorrGroup;
///
/// let group = SchnorrGroup::generate(256, 160, &mut rand::rng());
/// assert!(group.is_element(group.generator()));
/// ```
#[derive(Debug, Clone)]
pub struct SchnorrGroup {
    p: BigUint,
    q: BigUint,
    g: BigUint,
    /// Lazily built, shared across clones: the element/scalar rings (with
    /// their Montgomery contexts) and the fixed-base table for `g`.
    cache: Arc<GroupCache>,
}

/// Per-group lazy caches. Clones of a [`SchnorrGroup`] share one instance,
/// so the generator table is built at most once per set of parameters.
#[derive(Debug, Default)]
struct GroupCache {
    elem_ring: OnceLock<ModRing>,
    scalar_ring: OnceLock<ModRing>,
    g_table: OnceLock<FixedBaseTable>,
}

impl PartialEq for SchnorrGroup {
    fn eq(&self, other: &Self) -> bool {
        // Caches are derived state; identity is (p, q, g).
        self.p == other.p && self.q == other.q && self.g == other.g
    }
}

impl Eq for SchnorrGroup {}

impl SchnorrGroup {
    /// Internal constructor attaching an empty cache.
    fn from_validated(p: BigUint, q: BigUint, g: BigUint) -> Self {
        SchnorrGroup { p, q, g, cache: Arc::new(GroupCache::default()) }
    }
    /// Generates fresh parameters with a `p_bits`-bit modulus and a
    /// `q_bits`-bit subgroup order (e.g. 1024/160 for classic DSA).
    ///
    /// # Panics
    ///
    /// Panics if `q_bits + 2 > p_bits` or `q_bits < 2`.
    pub fn generate<R: Rng + ?Sized>(p_bits: usize, q_bits: usize, rng: &mut R) -> Self {
        assert!(q_bits >= 2 && q_bits + 2 <= p_bits, "invalid parameter sizes");
        let one = BigUint::one();
        let q = gen_prime(q_bits, rng);
        loop {
            // Pick p = q * m + 1 with the right bit length, m even so p is odd.
            let m_bits = p_bits - q_bits;
            let m = BigUint::random_bits(rng, m_bits);
            let m = if m.is_odd() { &m + &one } else { m };
            let p = &q * &m + &one;
            if p.bits() != p_bits || !is_probable_prime(&p, rng) {
                continue;
            }
            // Find a generator of the order-q subgroup: h^((p-1)/q) != 1.
            let ring = ModRing::new(p.clone());
            let exp = (&p - &one) / &q;
            let h_bound = &p - &one;
            let two = BigUint::from(2u64);
            loop {
                let h = BigUint::random_range(rng, &two, &h_bound);
                let g = ring.pow(&h, &exp);
                if !g.is_one() {
                    debug_assert!(ring.pow(&g, &q).is_one());
                    return SchnorrGroup::from_validated(p, q, g);
                }
            }
        }
    }

    /// Constructs a group from existing parameters, validating the algebra.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated property if `p`/`q` are not
    /// prime, `q` does not divide `p - 1`, or `g` does not generate an
    /// order-`q` subgroup.
    pub fn from_parts<R: Rng + ?Sized>(
        p: BigUint,
        q: BigUint,
        g: BigUint,
        rng: &mut R,
    ) -> Result<Self, &'static str> {
        if !is_probable_prime(&p, rng) {
            return Err("p is not prime");
        }
        if !is_probable_prime(&q, rng) {
            return Err("q is not prime");
        }
        let one = BigUint::one();
        if !((&p - &one) % &q).is_zero() {
            return Err("q does not divide p - 1");
        }
        let ring = ModRing::new(p.clone());
        if g <= one || g >= p || !ring.pow(&g, &q).is_one() || g.is_one() {
            return Err("g does not generate an order-q subgroup");
        }
        Ok(SchnorrGroup::from_validated(p, q, g))
    }

    /// The prime modulus `p`.
    pub fn modulus(&self) -> &BigUint {
        &self.p
    }

    /// The prime subgroup order `q`.
    pub fn order(&self) -> &BigUint {
        &self.q
    }

    /// The subgroup generator `g`.
    pub fn generator(&self) -> &BigUint {
        &self.g
    }

    /// Ring of integers mod `p` (group element arithmetic), built once
    /// per group and shared across clones. Both group moduli are prime by
    /// construction/validation, so the rings get the prime-modulus
    /// inversion fast path (which self-gates on modulus size).
    pub fn elem_ring(&self) -> &ModRing {
        self.cache.elem_ring.get_or_init(|| ModRing::new_prime(self.p.clone()))
    }

    /// Ring of integers mod `q` (exponent arithmetic), built once per
    /// group and shared across clones.
    pub fn scalar_ring(&self) -> &ModRing {
        self.cache.scalar_ring.get_or_init(|| ModRing::new_prime(self.q.clone()))
    }

    /// `g^e mod p`.
    ///
    /// Scalars up to `q`'s bit length hit a lazily built fixed-base table
    /// (only multiplications, no squarings); larger exponents fall back to
    /// generic windowed exponentiation.
    pub fn pow_g(&self, e: &BigUint) -> BigUint {
        let ring = self.elem_ring();
        if let Some(mont) = ring.montgomery() {
            let table = self.cache.g_table.get_or_init(|| {
                FixedBaseTable::new(mont, &self.g, self.q.bits(), FixedBaseTable::WINDOW)
            });
            if let Some(r) = table.pow(mont, e) {
                return r;
            }
        }
        ring.pow(&self.g, e)
    }

    /// Tests subgroup membership: `x in <g>` iff `x != 0` and `x^q = 1`.
    pub fn is_element(&self, x: &BigUint) -> bool {
        !x.is_zero() && x < &self.p && self.elem_ring().pow(x, &self.q).is_one()
    }

    /// Samples a uniformly random exponent in `[1, q)` (a private scalar).
    pub fn random_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        BigUint::random_range(rng, &BigUint::one(), &self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let mut rng = crate::test_rng(1);
        for p in [2u64, 3, 5, 7, 11, 13, 9973, 104_729] {
            assert!(is_probable_prime(&BigUint::from(p), &mut rng), "{p}");
        }
        for c in [0u64, 1, 4, 9, 15, 9975, 104_730, 561, 41041] {
            // 561 and 41041 are Carmichael numbers.
            assert!(!is_probable_prime(&BigUint::from(c), &mut rng), "{c}");
        }
    }

    #[test]
    fn gen_prime_has_requested_bits() {
        let mut rng = crate::test_rng(2);
        for bits in [8usize, 32, 64, 96] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, &mut rng));
        }
    }

    #[test]
    fn schnorr_group_algebra_holds() {
        let mut rng = crate::test_rng(3);
        let group = SchnorrGroup::generate(192, 96, &mut rng);
        let one = BigUint::one();
        assert!(((group.modulus() - &one) % group.order()).is_zero());
        assert!(group.is_element(group.generator()));
        assert!(!group.generator().is_one());
        // Generated elements stay in the subgroup.
        let x = group.random_scalar(&mut rng);
        let y = group.pow_g(&x);
        assert!(group.is_element(&y));
        // p itself (≡ 0) and 1 behave correctly.
        assert!(!group.is_element(&BigUint::zero()));
        assert!(group.is_element(&one)); // identity is in every subgroup
    }

    #[test]
    fn from_parts_rejects_bad_parameters() {
        let mut rng = crate::test_rng(4);
        let group = SchnorrGroup::generate(128, 64, &mut rng);
        let p = group.modulus().clone();
        let q = group.order().clone();
        let g = group.generator().clone();
        assert!(SchnorrGroup::from_parts(p.clone(), q.clone(), g.clone(), &mut rng).is_ok());
        assert!(SchnorrGroup::from_parts(&p + &BigUint::one(), q.clone(), g.clone(), &mut rng).is_err());
        assert!(SchnorrGroup::from_parts(p.clone(), &q + &BigUint::one(), g.clone(), &mut rng).is_err());
        assert!(SchnorrGroup::from_parts(p.clone(), q.clone(), BigUint::one(), &mut rng).is_err());
    }

    #[test]
    fn scalar_sampling_in_range() {
        let mut rng = crate::test_rng(5);
        let group = SchnorrGroup::generate(128, 64, &mut rng);
        for _ in 0..50 {
            let s = group.random_scalar(&mut rng);
            assert!(!s.is_zero() && &s < group.order());
        }
    }
}

//! Differential tests for the Montgomery/fixed-window arithmetic backbone.
//!
//! Every fast path — FIOS Montgomery multiplication, fixed-window
//! exponentiation, the interleaved `pow2`/`pow3` multi-exponentiations, and
//! the fixed-base table — is checked against the naive division-based
//! square-and-multiply reference (`ModRing::pow_naive` / `pow2_naive`) over
//! random odd moduli from one limb up to ~1100 bits, plus the degenerate
//! inputs the window logic has to get right: zero exponents, bases at or
//! above the modulus, zero bases, and the smallest odd modulus.

use proptest::prelude::*;
use whopay_num::{BigUint, FixedBaseTable, ModRing, MontgomeryRing};

/// Strategy: a random odd modulus >= 3 spanning 1..=17 limbs (64–1088 bits).
fn odd_modulus() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 1..18).prop_map(|mut limbs| {
        let last = limbs.len() - 1;
        if limbs[last] == 0 {
            limbs[last] = 1;
        }
        limbs[0] |= 1;
        if limbs.len() == 1 && limbs[0] == 1 {
            limbs[0] = 3;
        }
        BigUint::from_limbs(limbs)
    })
}

/// Strategy: a small odd modulus (1..=4 limbs) where full-width naive
/// exponentiation stays cheap.
fn small_odd_modulus() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 1..5).prop_map(|mut limbs| {
        let last = limbs.len() - 1;
        if limbs[last] == 0 {
            limbs[last] = 1;
        }
        limbs[0] |= 1;
        if limbs.len() == 1 && limbs[0] == 1 {
            limbs[0] = 3;
        }
        BigUint::from_limbs(limbs)
    })
}

/// Strategy: arbitrary value up to 18 limbs, possibly >= the modulus.
fn value() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..19).prop_map(BigUint::from_limbs)
}

/// Strategy: exponent up to 3 limbs (192 bits) — wide enough to exercise
/// every window width the splitter picks, small enough that the naive
/// reference stays fast against 1088-bit moduli.
fn exponent() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..4).prop_map(BigUint::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mont_mul_matches_division(a in value(), b in value(), m in odd_modulus()) {
        let mont = MontgomeryRing::new(&m).expect("odd modulus");
        let (ra, rb) = (&a % &m, &b % &m);
        prop_assert_eq!(mont.mul(&ra, &rb), (&ra * &rb) % &m);
    }

    #[test]
    fn mont_round_trip(a in value(), m in odd_modulus()) {
        let mont = MontgomeryRing::new(&m).expect("odd modulus");
        let r = &a % &m;
        prop_assert_eq!(mont.from_mont(&mont.to_mont(&r)), r);
    }

    #[test]
    fn mont_pow_matches_naive(a in value(), e in exponent(), m in odd_modulus()) {
        let mont = MontgomeryRing::new(&m).expect("odd modulus");
        let ring = ModRing::new(m.clone());
        prop_assert_eq!(mont.pow(&(&a % &m), &e), ring.pow_naive(&a, &e));
    }

    #[test]
    fn windowed_pow_matches_naive_full_width(a in value(), e in value(), m in small_odd_modulus()) {
        // Full-width exponents (up to 1152 bits) against small moduli: the
        // widest windows the splitter ever picks.
        let ring = ModRing::new(m);
        prop_assert_eq!(ring.pow(&a, &e), ring.pow_naive(&a, &e));
    }

    #[test]
    fn windowed_pow2_matches_naive(
        g1 in value(), e1 in exponent(), g2 in value(), e2 in exponent(), m in odd_modulus()
    ) {
        let ring = ModRing::new(m);
        prop_assert_eq!(ring.pow2(&g1, &e1, &g2, &e2), ring.pow2_naive(&g1, &e1, &g2, &e2));
    }

    #[test]
    fn pow3_matches_product_of_naive_pows(
        g1 in value(), e1 in exponent(),
        g2 in value(), e2 in exponent(),
        g3 in value(), e3 in exponent(),
        m in odd_modulus()
    ) {
        let ring = ModRing::new(m);
        let lhs = ring.pow3(&g1, &e1, &g2, &e2, &g3, &e3);
        let rhs = ring.mul(
            &ring.mul(&ring.pow_naive(&g1, &e1), &ring.pow_naive(&g2, &e2)),
            &ring.pow_naive(&g3, &e3),
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn fixed_base_table_matches_pow(base in value(), e in exponent(), m in odd_modulus()) {
        let mont = MontgomeryRing::new(&m).expect("odd modulus");
        let b = &base % &m;
        let table = FixedBaseTable::new(&mont, &b, 192, FixedBaseTable::WINDOW);
        let got = table.pow(&mont, &e).expect("exponent within table width");
        prop_assert_eq!(got, mont.pow(&b, &e));
    }

    #[test]
    fn fixed_base_table_declines_oversized_exponents(m in small_odd_modulus()) {
        let mont = MontgomeryRing::new(&m).expect("odd modulus");
        let table = FixedBaseTable::new(&mont, &BigUint::from(2u64), 64, FixedBaseTable::WINDOW);
        let too_wide = BigUint::one() << 200;
        prop_assert_eq!(table.pow(&mont, &too_wide), None);
    }
}

/// The inputs that break sloppy window splitting, collected deterministically.
#[test]
fn edge_cases_match_naive() {
    let moduli = [
        BigUint::from(3u64),
        BigUint::from(5u64),
        BigUint::from(u64::MAX), // 2^64 - 1, odd, exactly one limb
        (BigUint::one() << 1087) + BigUint::from(0x1234_5677u64), // large odd
    ];
    let one = BigUint::one();
    for m in &moduli {
        let ring = ModRing::new(m.clone());
        let mont = MontgomeryRing::new(m).expect("odd modulus");
        let bases = [
            BigUint::zero(),
            one.clone(),
            m.clone(),                       // base == modulus reduces to zero
            m + &one,                        // base > modulus
            (m << 3) + &BigUint::from(7u64), // far above the modulus
        ];
        let exps = [
            BigUint::zero(),
            one.clone(),
            BigUint::from(2u64),
            BigUint::from(0xFFFF_FFFF_FFFF_FFFFu64),
            BigUint::one() << 160,
        ];
        for base in &bases {
            for exp in &exps {
                let want = ring.pow_naive(base, exp);
                assert_eq!(ring.pow(base, exp), want, "pow base={base} exp={exp} m={m}");
                assert_eq!(mont.pow(&(base % m), exp), want, "mont base={base} exp={exp} m={m}");
            }
        }
        // exp == 0 must yield 1 even when the base is 0 (the crypto layer's
        // convention, matching the naive reference).
        assert_eq!(ring.pow(&BigUint::zero(), &BigUint::zero()), ring.reduce(&one));
    }
}

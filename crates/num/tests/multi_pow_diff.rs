//! Differential tests for the n-base multi-exponentiation kernel.
//!
//! Both simultaneous-exponentiation strategies — Straus interleaving
//! (small n) and Pippenger bucketing (large n) — are checked against the
//! naive product-of-`pow_naive` reference over random odd moduli from one
//! limb up to ~1100 bits and base counts spanning the Straus/Pippenger
//! crossover, plus the degenerate shapes the window logic has to get
//! right: empty pair lists, all-zero exponents, and bases at or above the
//! modulus.

use proptest::prelude::*;
use whopay_num::{BigUint, ModRing, MontgomeryRing};

/// Strategy: a random odd modulus >= 3 spanning 1..=17 limbs (64–1088 bits).
fn odd_modulus() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 1..18).prop_map(|mut limbs| {
        let last = limbs.len() - 1;
        if limbs[last] == 0 {
            limbs[last] = 1;
        }
        limbs[0] |= 1;
        if limbs.len() == 1 && limbs[0] == 1 {
            limbs[0] = 3;
        }
        BigUint::from_limbs(limbs)
    })
}

/// Carves `1..32` (base, exponent) pairs out of a flat limb pool — bases
/// up to 18 limbs (possibly >= the modulus), exponents up to 2 limbs
/// (128 bits) so the naive reference stays fast against wide moduli.
fn carve_pairs(n: usize, raw: &[u64]) -> Vec<(BigUint, BigUint)> {
    let mut cursor = 0usize;
    let mut take = |len: usize| {
        let limbs = raw[cursor..cursor + len].to_vec();
        cursor += len;
        BigUint::from_limbs(limbs)
    };
    (0..n)
        .map(|i| {
            let base_len = (raw[raw.len() - 1 - i] % 19) as usize;
            let exp_len = (raw[raw.len() - 32 - i] % 3) as usize;
            (take(base_len), take(exp_len))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn straus_and_pippenger_match_naive(
        n in 1usize..32,
        raw in proptest::collection::vec(any::<u64>(), 720..721),
        m in odd_modulus()
    ) {
        let ps = carve_pairs(n, &raw);
        let ring = ModRing::new(m.clone());
        let mont = MontgomeryRing::new(&m).expect("odd modulus");
        let reduced: Vec<(BigUint, BigUint)> =
            ps.iter().map(|(g, e)| (g % &m, e.clone())).collect();
        let want = ring.multi_pow_naive(&ps);
        prop_assert_eq!(mont.multi_pow_straus(&reduced), want.clone(), "straus");
        prop_assert_eq!(mont.multi_pow_pippenger(&reduced), want.clone(), "pippenger");
        prop_assert_eq!(ring.multi_pow(&ps), want, "dispatching front-end");
    }
}

/// Degenerate shapes, collected deterministically.
#[test]
fn multi_pow_edge_cases_match_naive() {
    let moduli = [
        BigUint::from(3u64),
        BigUint::from(u64::MAX),
        (BigUint::one() << 1087) + BigUint::from(0x1234_5677u64),
    ];
    for m in &moduli {
        let ring = ModRing::new(m.clone());
        let mont = MontgomeryRing::new(m).expect("odd modulus");
        let one = BigUint::one();
        let shapes: Vec<Vec<(BigUint, BigUint)>> = vec![
            Vec::new(),
            vec![(BigUint::zero(), BigUint::zero())],
            vec![(BigUint::zero(), one.clone()), (m.clone(), one.clone())],
            vec![(m + &one, BigUint::from(5u64)); 4],
            (0..40u64).map(|i| (BigUint::from(i * 17 + 2), BigUint::from(i * i + 1))).collect(),
            vec![(BigUint::from(7u64), BigUint::zero()); 9],
        ];
        for ps in &shapes {
            let want = ring.multi_pow_naive(ps);
            let reduced: Vec<(BigUint, BigUint)> = ps.iter().map(|(g, e)| (g % m, e.clone())).collect();
            assert_eq!(mont.multi_pow_straus(&reduced), want, "straus n={} m={m}", ps.len());
            assert_eq!(mont.multi_pow_pippenger(&reduced), want, "pippenger n={} m={m}", ps.len());
            assert_eq!(ring.multi_pow(ps), want, "front-end n={} m={m}", ps.len());
        }
    }
}

//! Property-based tests for the bignum substrate.
//!
//! These pin down the ring axioms and the div/mod contract that all of the
//! cryptography above this crate silently relies on.

use proptest::prelude::*;
use whopay_num::{BigUint, ModRing};

/// Strategy: arbitrary BigUint up to 4 limbs (256 bits).
fn big() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..5).prop_map(BigUint::from_limbs)
}

/// Strategy: nonzero BigUint up to 4 limbs.
fn big_nonzero() -> impl Strategy<Value = BigUint> {
    big().prop_filter("nonzero", |v| !v.is_zero())
}

/// Strategy: modulus >= 2.
fn modulus() -> impl Strategy<Value = BigUint> {
    big().prop_filter("at least 2", |v| v > &BigUint::one())
}

proptest! {
    #[test]
    fn add_commutes(a in big(), b in big()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in big(), b in big(), c in big()) {
        prop_assert_eq!((&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_round_trips(a in big(), b in big()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutes(a in big(), b in big()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associates(a in big(), b in big(), c in big()) {
        prop_assert_eq!((&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn mul_distributes_over_add(a in big(), b in big(), c in big()) {
        prop_assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn div_rem_invariant(a in big(), d in big_nonzero()) {
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&q * &d + &r, a);
    }

    #[test]
    fn shifts_are_pow2_mul_div(a in big(), s in 0usize..200) {
        let pow2 = BigUint::one() << s;
        prop_assert_eq!(&a << s, &a * &pow2);
        prop_assert_eq!(&a >> s, &a / &pow2);
    }

    #[test]
    fn decimal_round_trips(a in big()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<BigUint>().unwrap(), a);
    }

    #[test]
    fn hex_round_trips(a in big()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn be_bytes_round_trips(a in big()) {
        prop_assert_eq!(BigUint::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in big(), b in big()) {
        if a >= b {
            let d = &a - &b;
            prop_assert_eq!(&b + &d, a);
        } else {
            let d = &b - &a;
            prop_assert!(!d.is_zero());
            prop_assert_eq!(&a + &d, b);
        }
    }

    #[test]
    fn gcd_divides_both(a in big_nonzero(), b in big_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn modring_reduces_to_range(a in big(), m in modulus()) {
        let ring = ModRing::new(m.clone());
        prop_assert!(ring.reduce(&a) < m);
        prop_assert_eq!(ring.reduce(&a), &a % &m);
    }

    #[test]
    fn modring_add_matches_plain(a in big(), b in big(), m in modulus()) {
        let ring = ModRing::new(m.clone());
        prop_assert_eq!(ring.add(&a, &b), (&a + &b) % &m);
    }

    #[test]
    fn modring_sub_then_add_cancels(a in big(), b in big(), m in modulus()) {
        let ring = ModRing::new(m.clone());
        let d = ring.sub(&a, &b);
        prop_assert_eq!(ring.add(&d, &b), ring.reduce(&a));
    }

    #[test]
    fn modring_mul_matches_plain(a in big(), b in big(), m in modulus()) {
        let ring = ModRing::new(m.clone());
        prop_assert_eq!(ring.mul(&a, &b), (&a * &b) % &m);
    }

    #[test]
    fn modring_pow_add_law(a in big(), e1 in 0u64..500, e2 in 0u64..500, m in modulus()) {
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let ring = ModRing::new(m);
        let lhs = ring.pow(&a, &BigUint::from(e1 + e2));
        let rhs = ring.mul(&ring.pow(&a, &BigUint::from(e1)), &ring.pow(&a, &BigUint::from(e2)));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modring_pow2_matches_pows(g1 in big(), g2 in big(), e1 in big(), e2 in big(), m in modulus()) {
        let ring = ModRing::new(m);
        let lhs = ring.pow2(&g1, &e1, &g2, &e2);
        let rhs = ring.mul(&ring.pow(&g1, &e1), &ring.pow(&g2, &e2));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modring_inv_is_inverse(a in big_nonzero(), m in modulus()) {
        let ring = ModRing::new(m.clone());
        match ring.inv(&a) {
            Some(inv) => {
                prop_assert!(inv < m);
                prop_assert!(ring.mul(&a, &inv).is_one());
            }
            None => prop_assert!(!a.gcd(&m).is_one()),
        }
    }

    #[test]
    fn byte_encoding_round_trips(a in big()) {
        // The workspace has no serialization framework; the canonical
        // wire form of a BigUint is its big-endian byte string.
        let bytes = a.to_be_bytes();
        prop_assert_eq!(BigUint::from_be_bytes(&bytes), a);
    }
}

//! Causal trace context, carried across the wire as a fixed-size frame
//! trailer.
//!
//! A [`TraceContext`] names one span in one trace: `trace_id` groups
//! every hop of a logical operation (a coin lifecycle step and all of
//! its retries), `span_id` names this hop, `parent_span_id` links it to
//! the span that caused it, and `hop` counts wire crossings so a
//! reconstructed tree can be depth-sorted without timestamps.
//!
//! # Wire format
//!
//! The context travels as a 36-byte trailer **appended after** the
//! request/response frame bytes:
//!
//! ```text
//! magic (8) | trace_id (8 BE) | span_id (8 BE) | parent_span_id (8 BE) | hop (4 BE)
//! ```
//!
//! Appending (rather than embedding) keeps the PR-4 zero-copy path
//! intact: the leading wire tag still classifies the frame, the strict
//! `RequestView`/`Request::decode` parity contract is untouched (the
//! dispatch layer splits the trailer off before parsing), and when
//! tracing is disabled nothing is appended, so the disabled wire bytes
//! are byte-identical to an untraced build. The 8-byte magic makes an
//! accidental suffix collision on untraced frames a 2^-64 event.
//!
//! # Identifier generation
//!
//! Identifiers come from a process-global counter passed through the
//! splitmix64 finalizer — a bijection on `u64`, so every id drawn in a
//! process is distinct without any RNG or clock involvement (the
//! collision-freedom the tracing tests assert across 1k concurrent
//! lifecycles). Threads claim the counter in blocks so the per-id hot
//! path is a plain thread-local increment, not an atomic RMW.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Length in bytes of the encoded trailer.
pub const TRACE_TRAILER_LEN: usize = 36;

/// Trailer magic: must be improbable as the tail of a legitimate frame.
const TRACE_MAGIC: [u8; 8] = [0xA5, 0x17, 0xC7, 0x7C, 0x54, 0x52, 0x43, 0x58];

static NEXT_RAW_BLOCK: AtomicU64 = AtomicU64::new(1);

/// Raw counter values a thread claims per trip to the shared atomic.
const ID_BLOCK: u64 = 1 << 16;

thread_local! {
    /// This thread's `(next, end)` slice of the raw counter space.
    static ID_CURSOR: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// splitmix64 finalizer: a bijection on `u64` with good bit diffusion.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The next raw counter value: a thread-local increment, refilled from
/// the process-wide atomic one block at a time. Blocks are disjoint, so
/// raw values — and their splitmix64 images — never repeat across
/// threads.
fn fresh_raw() -> u64 {
    ID_CURSOR.with(|cursor| {
        let (next, end) = cursor.get();
        if next == end {
            let base = NEXT_RAW_BLOCK.fetch_add(ID_BLOCK, Ordering::Relaxed);
            cursor.set((base.wrapping_add(1), base.wrapping_add(ID_BLOCK)));
            base
        } else {
            cursor.set((next.wrapping_add(1), end));
            next
        }
    })
}

/// A fresh process-unique identifier.
fn fresh_id() -> u64 {
    splitmix64(fresh_raw())
}

/// Two fresh raw counter values from one cursor access (the root-span
/// hot path draws a trace id and a span id together). Refilling may
/// strand one value of the old block; stranded values are simply never
/// issued, so uniqueness is unaffected.
fn fresh_raw_pair() -> (u64, u64) {
    ID_CURSOR.with(|cursor| {
        let (next, end) = cursor.get();
        if next == end || next.wrapping_add(1) == end {
            let base = NEXT_RAW_BLOCK.fetch_add(ID_BLOCK, Ordering::Relaxed);
            cursor.set((base.wrapping_add(2), base.wrapping_add(ID_BLOCK)));
            (base, base.wrapping_add(1))
        } else {
            cursor.set((next.wrapping_add(2), end));
            (next, next.wrapping_add(1))
        }
    })
}

/// One span's place in a causal trace (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Groups every span of one logical operation.
    pub trace_id: u64,
    /// Names this span.
    pub span_id: u64,
    /// The span that caused this one (0 for a root).
    pub parent_span_id: u64,
    /// Wire crossings from the root (0 for a root).
    pub hop: u32,
}

impl TraceContext {
    /// A fresh root context: new trace, new span, no parent.
    pub fn root() -> Self {
        let (a, b) = fresh_raw_pair();
        TraceContext { trace_id: splitmix64(a), span_id: splitmix64(b), parent_span_id: 0, hop: 0 }
    }

    /// A child of this context: same trace, fresh span, one hop deeper.
    pub fn child(&self) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: fresh_id(),
            parent_span_id: self.span_id,
            hop: self.hop.saturating_add(1),
        }
    }

    /// Appends the 36-byte trailer to a frame.
    pub fn append_to(&self, buf: &mut Vec<u8>) {
        // One reserve/copy for the whole trailer: this runs once per
        // traced message on the pooled wire path, where five separate
        // `extend_from_slice` growth checks are measurable.
        let mut trailer = [0u8; TRACE_TRAILER_LEN];
        trailer[..8].copy_from_slice(&TRACE_MAGIC);
        trailer[8..16].copy_from_slice(&self.trace_id.to_be_bytes());
        trailer[16..24].copy_from_slice(&self.span_id.to_be_bytes());
        trailer[24..32].copy_from_slice(&self.parent_span_id.to_be_bytes());
        trailer[32..36].copy_from_slice(&self.hop.to_be_bytes());
        buf.extend_from_slice(&trailer);
    }

    /// Splits a frame into its payload and an optional trailing context.
    ///
    /// Frames without a (magic-tagged) trailer come back unchanged with
    /// `None` — untraced traffic flows through split sites untouched.
    pub fn split(bytes: &[u8]) -> (&[u8], Option<TraceContext>) {
        match Self::strip(bytes) {
            Some((ctx, payload_len)) => (&bytes[..payload_len], Some(ctx)),
            None => (bytes, None),
        }
    }

    /// Decodes a trailing context, returning it plus the payload length.
    pub fn strip(bytes: &[u8]) -> Option<(TraceContext, usize)> {
        let payload_len = bytes.len().checked_sub(TRACE_TRAILER_LEN)?;
        let tail = &bytes[payload_len..];
        if tail[..8] != TRACE_MAGIC {
            return None;
        }
        let be64 = |r: &[u8]| u64::from_be_bytes(r.try_into().expect("8-byte slice"));
        let ctx = TraceContext {
            trace_id: be64(&tail[8..16]),
            span_id: be64(&tail[16..24]),
            parent_span_id: be64(&tail[24..32]),
            hop: u32::from_be_bytes(tail[32..36].try_into().expect("4-byte slice")),
        };
        Some((ctx, payload_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            let ctx = TraceContext::root();
            assert!(seen.insert(ctx.trace_id), "trace_id collision");
            assert!(seen.insert(ctx.span_id), "span_id collision");
            assert_eq!(ctx.parent_span_id, 0);
            assert_eq!(ctx.hop, 0);
        }
    }

    #[test]
    fn children_link_to_their_parent() {
        let root = TraceContext::root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
        assert_eq!(child.hop, 1);
        assert_eq!(child.child().hop, 2);
    }

    #[test]
    fn trailer_round_trips() {
        let ctx = TraceContext::root().child();
        let mut frame = b"payload bytes".to_vec();
        ctx.append_to(&mut frame);
        assert_eq!(frame.len(), 13 + TRACE_TRAILER_LEN);
        let (payload, stripped) = TraceContext::split(&frame);
        assert_eq!(payload, b"payload bytes");
        assert_eq!(stripped, Some(ctx));
    }

    #[test]
    fn untagged_frames_split_unchanged() {
        let frame = vec![0u8; 100];
        let (payload, ctx) = TraceContext::split(&frame);
        assert_eq!(payload.len(), 100);
        assert!(ctx.is_none());
        let (short, ctx) = TraceContext::split(b"hi");
        assert_eq!(short, b"hi");
        assert!(ctx.is_none());
    }
}

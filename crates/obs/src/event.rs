//! The event vocabulary: who did what, how it went, and what it cost.

use std::time::Duration;

use crate::ctx::TraceContext;

/// Why a retry attempt exists: its 1-based attempt number and the
/// `ErrorClass` label of the failure that killed its predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryNote {
    /// 1-based retry attempt number (attempt 0 carries no note).
    pub attempt: u32,
    /// Stable label of the predecessor's failure (e.g. `"lost"`).
    pub after: &'static str,
}

/// The endpoint role an event is attributed to.
///
/// Mirrors the load split the paper's evaluation reports: broker load
/// vs. (aggregate) peer load, with the judge, DHT nodes, plain clients,
/// and the abstract load simulator kept distinguishable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// The central broker.
    Broker,
    /// An ordinary peer (owner, holder, payer, or payee side).
    Peer,
    /// The group-signature judge.
    Judge,
    /// A DHT storage node (double-spending detection infrastructure).
    DhtNode,
    /// A plain client endpoint (invite delivery, request sources).
    Client,
    /// The §6 discrete-event load simulator (operations modeled, not
    /// executed).
    Sim,
}

impl Role {
    /// All roles, in reporting order.
    pub const ALL: [Role; 6] =
        [Role::Broker, Role::Peer, Role::Judge, Role::DhtNode, Role::Client, Role::Sim];

    /// Stable lowercase label (also the JSON encoding).
    pub fn label(self) -> &'static str {
        match self {
            Role::Broker => "broker",
            Role::Peer => "peer",
            Role::Judge => "judge",
            Role::DhtNode => "dht",
            Role::Client => "client",
            Role::Sim => "sim",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Role::Broker => 0,
            Role::Peer => 1,
            Role::Judge => 2,
            Role::DhtNode => 3,
            Role::Client => 4,
            Role::Sim => 5,
        }
    }
}

/// The protocol operation an event belongs to.
///
/// The first ten variants are exactly the coarse-grained operations of
/// §6.2 (and `whopay-eval::ops::Op`); the rest cover the real-time
/// double-spending-detection extension (§5.1), DHT storage traffic, and
/// raw transport delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// A peer buys a coin from the broker.
    Purchase,
    /// An owner issues a self-held coin to a payee.
    Issue,
    /// A holder transfers a coin via its (online) owner.
    Transfer,
    /// A holder redeems a coin at the broker.
    Deposit,
    /// A holder renews a coin via its (online) owner.
    Renewal,
    /// A holder transfers a coin via the broker (owner offline).
    DowntimeTransfer,
    /// A holder renews a coin via the broker (owner offline).
    DowntimeRenewal,
    /// Proactive synchronization on rejoin.
    Sync,
    /// Lazy-sync read of the public binding list by an owner.
    Check,
    /// Lazy-sync local state adoption after a check found fresher state.
    LazySync,
    /// Publishing a coin binding to the public DHT (§5.1).
    DsdPublish,
    /// Payee-side verification of a grant against the public binding.
    DsdVerify,
    /// A double-spend alarm raised by a holding monitor.
    DsdAlarm,
    /// A DHT read.
    DhtGet,
    /// A DHT write.
    DhtPut,
    /// A DHT routed lookup.
    DhtLookup,
    /// A DHT subscription notification delivered.
    DhtNotify,
    /// One transport request/response exchange (`whopay-net`).
    NetRequest,
    /// Opening (committing to) a micropayment hash chain (§7).
    MicropayOpen,
    /// A per-interval payword tick (single or batched) on a chain.
    MicropayTick,
    /// Broker redemption of a micropayment chain's best payword.
    MicropayRedeem,
    /// Fetching a Merkle inclusion proof for a coin's committed state.
    BindingProof,
    /// Anything not covered above (label it via [`Event::detail`]).
    Other,
}

impl OpKind {
    /// All operation kinds, in reporting order.
    pub const ALL: [OpKind; 23] = [
        OpKind::Purchase,
        OpKind::Issue,
        OpKind::Transfer,
        OpKind::Deposit,
        OpKind::Renewal,
        OpKind::DowntimeTransfer,
        OpKind::DowntimeRenewal,
        OpKind::Sync,
        OpKind::Check,
        OpKind::LazySync,
        OpKind::DsdPublish,
        OpKind::DsdVerify,
        OpKind::DsdAlarm,
        OpKind::DhtGet,
        OpKind::DhtPut,
        OpKind::DhtLookup,
        OpKind::DhtNotify,
        OpKind::NetRequest,
        OpKind::MicropayOpen,
        OpKind::MicropayTick,
        OpKind::MicropayRedeem,
        OpKind::BindingProof,
        OpKind::Other,
    ];

    /// Stable lowercase label (also the JSON encoding).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Purchase => "purchase",
            OpKind::Issue => "issue",
            OpKind::Transfer => "transfer",
            OpKind::Deposit => "deposit",
            OpKind::Renewal => "renewal",
            OpKind::DowntimeTransfer => "downtime_transfer",
            OpKind::DowntimeRenewal => "downtime_renewal",
            OpKind::Sync => "sync",
            OpKind::Check => "check",
            OpKind::LazySync => "lazy_sync",
            OpKind::DsdPublish => "dsd_publish",
            OpKind::DsdVerify => "dsd_verify",
            OpKind::DsdAlarm => "dsd_alarm",
            OpKind::DhtGet => "dht_get",
            OpKind::DhtPut => "dht_put",
            OpKind::DhtLookup => "dht_lookup",
            OpKind::DhtNotify => "dht_notify",
            OpKind::NetRequest => "net_request",
            OpKind::MicropayOpen => "micropay_open",
            OpKind::MicropayTick => "micropay_tick",
            OpKind::MicropayRedeem => "micropay_redeem",
            OpKind::BindingProof => "binding_proof",
            OpKind::Other => "other",
        }
    }

    pub(crate) fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("OpKind::ALL is exhaustive")
    }
}

/// How an operation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Outcome {
    /// Completed normally.
    #[default]
    Ok,
    /// Rejected or failed.
    Error,
}

impl Outcome {
    /// Stable lowercase label (also the JSON encoding).
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
        }
    }
}

/// One finished protocol operation, as reported to a recorder and the
/// metrics registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Which role performed the operation.
    pub role: Role,
    /// Which operation it was.
    pub op: OpKind,
    /// How it ended.
    pub outcome: Outcome,
    /// Wall-clock duration, when the reporter timed the operation.
    pub duration: Option<Duration>,
    /// Messages attributed to this operation (`TrafficStats` units:
    /// requests and responses each count once).
    pub messages: u64,
    /// Payload bytes attributed to this operation.
    pub bytes: u64,
    /// Number of items settled together when the operation processed a
    /// batch (e.g. a `DepositBatch` dispatch); `None` for single-item
    /// operations.
    pub batch: Option<u64>,
    /// The event's place in a causal trace, when tracing was active.
    pub trace: Option<TraceContext>,
    /// Set on retry attempts: which attempt, and what killed the
    /// previous one.
    pub retry: Option<RetryNote>,
    /// Span start in microseconds since the process trace epoch (set by
    /// timed spans; feeds the chrome-trace exporter's timeline).
    pub start_us: Option<u64>,
    /// Which broker shard served the operation, when a sharded broker
    /// dispatched it (`None` everywhere else).
    pub shard: Option<u16>,
    /// Which load-simulation partition the operation ran in, when a
    /// partitioned sub-simulation emitted it (`None` everywhere else).
    pub partition: Option<u32>,
    /// Free-form context (message kind, error text); kept short.
    pub detail: Option<String>,
}

impl Event {
    /// A successful event with no timing or traffic attached.
    pub fn new(role: Role, op: OpKind) -> Self {
        Event {
            role,
            op,
            outcome: Outcome::Ok,
            duration: None,
            messages: 0,
            bytes: 0,
            batch: None,
            trace: None,
            retry: None,
            start_us: None,
            shard: None,
            partition: None,
            detail: None,
        }
    }

    /// Attaches a batch size (number of items settled together).
    #[must_use]
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Attaches message/byte traffic.
    #[must_use]
    pub fn with_traffic(mut self, messages: u64, bytes: u64) -> Self {
        self.messages = messages;
        self.bytes = bytes;
        self
    }

    /// Attaches a duration.
    #[must_use]
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Marks the event failed.
    #[must_use]
    pub fn failed(mut self) -> Self {
        self.outcome = Outcome::Error;
        self
    }

    /// Attaches detail text.
    #[must_use]
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// Attaches a trace context.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a retry note.
    #[must_use]
    pub fn with_retry(mut self, attempt: u32, after: &'static str) -> Self {
        self.retry = Some(RetryNote { attempt, after });
        self
    }

    /// Attributes the event to a broker shard.
    #[must_use]
    pub fn with_shard(mut self, shard: u16) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Attributes the event to a load-simulation partition.
    #[must_use]
    pub fn with_partition(mut self, partition: u32) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"role\":\"");
        out.push_str(self.role.label());
        out.push_str("\",\"op\":\"");
        out.push_str(self.op.label());
        out.push_str("\",\"outcome\":\"");
        out.push_str(self.outcome.label());
        out.push('"');
        if let Some(d) = self.duration {
            out.push_str(",\"nanos\":");
            out.push_str(&u128::min(d.as_nanos(), u64::MAX as u128).to_string());
        }
        if self.messages != 0 {
            out.push_str(",\"messages\":");
            out.push_str(&self.messages.to_string());
        }
        if self.bytes != 0 {
            out.push_str(",\"bytes\":");
            out.push_str(&self.bytes.to_string());
        }
        if let Some(batch) = self.batch {
            out.push_str(",\"batch\":");
            out.push_str(&batch.to_string());
        }
        if let Some(retry) = self.retry {
            out.push_str(",\"retry\":");
            out.push_str(&retry.attempt.to_string());
            out.push_str(",\"after\":\"");
            crate::json::escape_into(retry.after, &mut out);
            out.push('"');
        }
        if let Some(trace) = self.trace {
            out.push_str(&format!(
                ",\"trace\":\"{:016x}\",\"span\":\"{:016x}\"",
                trace.trace_id, trace.span_id
            ));
            if trace.parent_span_id != 0 {
                out.push_str(&format!(",\"parent\":\"{:016x}\"", trace.parent_span_id));
            }
            if trace.hop != 0 {
                out.push_str(",\"hop\":");
                out.push_str(&trace.hop.to_string());
            }
        }
        if let Some(start_us) = self.start_us {
            out.push_str(",\"start_us\":");
            out.push_str(&start_us.to_string());
        }
        if let Some(shard) = self.shard {
            out.push_str(",\"shard\":");
            out.push_str(&shard.to_string());
        }
        if let Some(partition) = self.partition {
            out.push_str(",\"partition\":");
            out.push_str(&partition.to_string());
        }
        if let Some(detail) = &self.detail {
            out.push_str(",\"detail\":\"");
            crate::json::escape_into(detail, &mut out);
            out.push('"');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for op in OpKind::ALL {
            assert!(seen.insert(op.label()), "duplicate label {}", op.label());
        }
        let mut roles = std::collections::BTreeSet::new();
        for role in Role::ALL {
            assert!(roles.insert(role.label()));
        }
    }

    #[test]
    fn indexes_match_all_order() {
        for (i, op) in OpKind::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
        for (i, role) in Role::ALL.iter().enumerate() {
            assert_eq!(role.index(), i);
        }
    }

    #[test]
    fn json_skips_empty_fields() {
        let ev = Event::new(Role::Broker, OpKind::Purchase);
        assert_eq!(ev.to_json(), r#"{"role":"broker","op":"purchase","outcome":"ok"}"#);
    }

    #[test]
    fn json_carries_trace_fields() {
        let trace = TraceContext { trace_id: 0xABC, span_id: 0xDEF, parent_span_id: 0x123, hop: 2 };
        let ev = Event::new(Role::Broker, OpKind::Deposit).with_trace(trace).with_retry(1, "lost");
        assert_eq!(
            ev.to_json(),
            concat!(
                r#"{"role":"broker","op":"deposit","outcome":"ok","retry":1,"after":"lost","#,
                r#""trace":"0000000000000abc","span":"0000000000000def","#,
                r#""parent":"0000000000000123","hop":2}"#
            )
        );
    }

    #[test]
    fn json_carries_shard_and_partition() {
        let ev = Event::new(Role::Sim, OpKind::Transfer).with_shard(3).with_partition(7);
        assert_eq!(
            ev.to_json(),
            r#"{"role":"sim","op":"transfer","outcome":"ok","shard":3,"partition":7}"#
        );
    }

    #[test]
    fn json_carries_all_fields() {
        let ev = Event::new(Role::Peer, OpKind::Transfer)
            .with_traffic(2, 512)
            .with_duration(Duration::from_nanos(1500))
            .with_batch(16)
            .failed()
            .with_detail("owner \"offline\"");
        assert_eq!(
            ev.to_json(),
            r#"{"role":"peer","op":"transfer","outcome":"error","nanos":1500,"messages":2,"bytes":512,"batch":16,"detail":"owner \"offline\""}"#
        );
    }
}

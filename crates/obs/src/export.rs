//! Exporters: Prometheus text exposition for the metrics registry and a
//! `chrome://tracing`-compatible trace_event JSON for recorded events.
//!
//! Both are pull-style snapshots — nothing here runs on the hot path.
//! [`prometheus_text`] walks the live registry (including the log-bucket
//! latency histograms, exposed with cumulative `le` bounds at occupied
//! bucket boundaries, which Prometheus permits). [`chrome_trace`] turns
//! a slice of events — e.g. a [`crate::FlightRecorder`] snapshot — into
//! a JSON document that `chrome://tracing` / Perfetto renders as a span
//! tree: one row per trace, spans positioned by their start offset from
//! the process trace epoch, with span/parent ids in `args` so retry
//! chains reconstruct exactly.

use std::fmt::Write as _;

use crate::event::{Event, OpKind, Role};
use crate::json::escape_into;
use crate::metrics::Metrics;

/// Sanitizes a dotted series name into a Prometheus metric-name suffix.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Renders the registry in Prometheus text exposition format.
pub fn prometheus_text(metrics: &Metrics) -> String {
    let mut out = String::new();
    out.push_str("# TYPE whopay_ops_total counter\n");
    out.push_str("# TYPE whopay_op_errors_total counter\n");
    out.push_str("# TYPE whopay_op_messages_total counter\n");
    out.push_str("# TYPE whopay_op_bytes_total counter\n");
    out.push_str("# TYPE whopay_op_latency_ns histogram\n");
    for role in Role::ALL {
        for op in OpKind::ALL {
            let cell = metrics.op(role, op);
            let count = cell.count.get();
            if count == 0 && cell.messages.get() == 0 {
                continue;
            }
            let labels = format!("role=\"{}\",op=\"{}\"", role.label(), op.label());
            writeln!(out, "whopay_ops_total{{{labels}}} {count}").expect("string write");
            writeln!(out, "whopay_op_errors_total{{{labels}}} {}", cell.errors.get())
                .expect("string write");
            writeln!(out, "whopay_op_messages_total{{{labels}}} {}", cell.messages.get())
                .expect("string write");
            writeln!(out, "whopay_op_bytes_total{{{labels}}} {}", cell.bytes.get())
                .expect("string write");
            let timed = cell.latency.count();
            if timed > 0 {
                for (le, cumulative) in cell.latency.cumulative_buckets() {
                    writeln!(out, "whopay_op_latency_ns_bucket{{{labels},le=\"{le}\"}} {cumulative}")
                        .expect("string write");
                }
                writeln!(out, "whopay_op_latency_ns_bucket{{{labels},le=\"+Inf\"}} {timed}")
                    .expect("string write");
                writeln!(out, "whopay_op_latency_ns_sum{{{labels}}} {}", cell.latency.sum_nanos())
                    .expect("string write");
                writeln!(out, "whopay_op_latency_ns_count{{{labels}}} {timed}").expect("string write");
            }
        }
    }
    let report = metrics.report();
    for (name, value) in &report.counters {
        let metric = format!("whopay_{}", sanitize(name));
        writeln!(out, "# TYPE {metric} counter").expect("string write");
        writeln!(out, "{metric} {value}").expect("string write");
    }
    for (name, value) in &report.gauges {
        let metric = format!("whopay_{}", sanitize(name));
        writeln!(out, "# TYPE {metric} gauge").expect("string write");
        writeln!(out, "{metric} {value}").expect("string write");
    }
    for (name, histogram) in metrics.named_histograms() {
        let metric = format!("whopay_{}_ns", sanitize(&name));
        writeln!(out, "# TYPE {metric} histogram").expect("string write");
        for (le, cumulative) in histogram.cumulative_buckets() {
            writeln!(out, "{metric}_bucket{{le=\"{le}\"}} {cumulative}").expect("string write");
        }
        writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", histogram.count()).expect("string write");
        writeln!(out, "{metric}_sum {}", histogram.sum_nanos()).expect("string write");
        writeln!(out, "{metric}_count {}", histogram.count()).expect("string write");
    }
    out
}

/// Renders events as a `chrome://tracing` trace_event JSON document.
///
/// Every event becomes a complete ("ph":"X") slice. Traced events share
/// a `tid` derived from their `trace_id`, so each logical operation —
/// and every retry attempt inside it — renders on its own row; untraced
/// events fall back to a per-role row. Timestamps are microseconds from
/// the process trace epoch (events without one are laid out by arrival
/// order).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = event.start_us.unwrap_or(i as u64);
        let dur = event
            .duration
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1))
            .unwrap_or(1);
        let tid = match event.trace {
            Some(t) => 10 + t.trace_id % 100_000,
            None => event.role.index() as u64,
        };
        write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{",
            event.op.label(),
            event.role.label(),
        )
        .expect("string write");
        write!(out, "\"outcome\":\"{}\"", event.outcome.label()).expect("string write");
        if let Some(t) = event.trace {
            write!(
                out,
                ",\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\",\"hop\":{}",
                t.trace_id, t.span_id, t.parent_span_id, t.hop
            )
            .expect("string write");
        }
        if let Some(r) = event.retry {
            write!(out, ",\"retry\":{},\"after\":\"{}\"", r.attempt, r.after).expect("string write");
        }
        if event.messages != 0 || event.bytes != 0 {
            write!(out, ",\"messages\":{},\"bytes\":{}", event.messages, event.bytes)
                .expect("string write");
        }
        if let Some(detail) = &event.detail {
            out.push_str(",\"detail\":\"");
            escape_into(detail, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::TraceContext;
    use std::time::Duration;

    #[test]
    fn prometheus_renders_rows_counters_and_histograms() {
        let m = Metrics::new();
        m.observe(
            &Event::new(Role::Broker, OpKind::Purchase)
                .with_traffic(2, 311)
                .with_duration(Duration::from_nanos(100)),
        );
        m.observe(&Event::new(Role::Broker, OpKind::Purchase).failed());
        m.counter("retry.attempts").add(4);
        m.gauge("pool.depth").set(-1);
        m.histogram("crypto.dsa.verify").record(Duration::from_micros(50));

        let text = prometheus_text(&m);
        assert!(text.contains("whopay_ops_total{role=\"broker\",op=\"purchase\"} 2"), "{text}");
        assert!(text.contains("whopay_op_errors_total{role=\"broker\",op=\"purchase\"} 1"));
        assert!(text.contains("whopay_op_bytes_total{role=\"broker\",op=\"purchase\"} 311"));
        assert!(
            text.contains("whopay_op_latency_ns_bucket{role=\"broker\",op=\"purchase\",le=\"127\"} 1")
        );
        assert!(
            text.contains("whopay_op_latency_ns_bucket{role=\"broker\",op=\"purchase\",le=\"+Inf\"} 1")
        );
        assert!(text.contains("whopay_retry_attempts 4"));
        assert!(text.contains("whopay_pool_depth -1"));
        assert!(text.contains("whopay_crypto_dsa_verify_ns_count 1"));
        // Every non-comment line is "name{labels} value" or "name value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.rsplit_once(' ').is_some(), "malformed line: {line}");
        }
    }

    #[test]
    fn chrome_trace_positions_spans_by_trace() {
        let root = TraceContext::root();
        let child = root.child();
        let events = vec![
            Event::new(Role::Client, OpKind::Purchase)
                .with_trace(root)
                .with_duration(Duration::from_micros(10)),
            Event::new(Role::Broker, OpKind::Purchase)
                .with_trace(child)
                .with_retry(1, "timed_out")
                .with_detail("q \"x\""),
            Event::new(Role::Sim, OpKind::Other),
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"dur\":10"));
        assert!(json.contains(&format!("\"parent\":\"{:016x}\"", root.span_id)));
        assert!(json.contains("\"retry\":1,\"after\":\"timed_out\""));
        assert!(json.contains("\"detail\":\"q \\\"x\\\"\""), "{json}");
        // Both halves of the trace share one tid row.
        let tid = format!("\"tid\":{}", 10 + root.trace_id % 100_000);
        assert_eq!(json.matches(&tid).count(), 2, "{json}");
    }
}

//! The flight recorder: a lock-striped, fixed-size ring of the most
//! recent events, dumped as JSON lines when something goes wrong.
//!
//! A [`FlightRecorder`] is an always-on [`Recorder`] whose memory is
//! bounded by construction: events land in one of a power-of-two number
//! of stripes (chosen by a per-thread tag, so unrelated threads rarely
//! contend on the same mutex), and each stripe is a ring that overwrites
//! its oldest slot. A global sequence counter stamps every event so a
//! dump can interleave the stripes back into arrival order.
//!
//! Dumps happen on demand ([`FlightRecorder::dump_jsonl`]), when an
//! invariant auditor trips (the service layer asks the attached recorder
//! via `Recorder::flight_dump`), or on panic once
//! [`install_panic_hook`] has been called — which is how a chaos-test
//! failure leaves behind the last moments of every lifecycle in flight.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};

use crate::event::Event;
use crate::trace::Recorder;

/// Default stripe count (rounded to a power of two).
const DEFAULT_STRIPES: usize = 8;
/// Default events retained per stripe.
const DEFAULT_CAPACITY: usize = 256;

static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_TAG: u64 = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
}

#[derive(Debug, Default)]
struct Stripe {
    /// `(sequence, event)` slots; grows to capacity, then wraps.
    slots: Vec<(u64, Event)>,
    /// Next slot to overwrite once full.
    next: usize,
}

/// A bounded, lock-striped ring of the last N events (see module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<Stripe>>,
    capacity: usize,
    seq: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_shape(DEFAULT_STRIPES, DEFAULT_CAPACITY)
    }
}

/// Takes a stripe lock, surviving poisoning (a panic mid-`record` must
/// not lose the dump the panic hook is about to take).
fn lock(stripe: &Mutex<Stripe>) -> MutexGuard<'_, Stripe> {
    stripe.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FlightRecorder {
    /// A recorder with the default shape (8 stripes × 256 events).
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder with `stripes` stripes (rounded up to a power of two)
    /// of `capacity` events each.
    pub fn with_shape(stripes: usize, capacity: usize) -> Self {
        let stripes = stripes.max(1).next_power_of_two();
        FlightRecorder {
            stripes: (0..stripes).map(|_| Mutex::new(Stripe::default())).collect(),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
        }
    }

    /// Total events retained right now (≤ stripes × capacity).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| lock(s).slots.len()).sum()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every retained event.
    pub fn clear(&self) {
        for stripe in &self.stripes {
            let mut s = lock(stripe);
            s.slots.clear();
            s.next = 0;
        }
    }

    /// The retained events, oldest first (arrival order across stripes).
    pub fn snapshot(&self) -> Vec<Event> {
        let mut tagged: Vec<(u64, Event)> = Vec::new();
        for stripe in &self.stripes {
            tagged.extend(lock(stripe).slots.iter().cloned());
        }
        tagged.sort_by_key(|(seq, _)| *seq);
        tagged.into_iter().map(|(_, ev)| ev).collect()
    }

    /// The retained events as JSON lines (one event per line, oldest
    /// first) — the dump format auditors and the panic hook emit.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.snapshot() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }
}

impl Recorder for FlightRecorder {
    fn record(&self, event: &Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let tag = THREAD_TAG.with(|t| *t) as usize;
        let mut stripe = lock(&self.stripes[tag & (self.stripes.len() - 1)]);
        if stripe.slots.len() < self.capacity {
            stripe.slots.push((seq, event.clone()));
        } else {
            let next = stripe.next;
            stripe.slots[next] = (seq, event.clone());
            stripe.next = (next + 1) % self.capacity;
        }
    }

    fn flight_dump(&self) -> Option<String> {
        Some(self.dump_jsonl())
    }
}

static PANIC_DUMPS: OnceLock<Mutex<Vec<Weak<FlightRecorder>>>> = OnceLock::new();

/// Registers `recorder` to dump itself to stderr when the process
/// panics. The first call chains onto the existing panic hook; later
/// calls only extend the registry. Dropped recorders fall out (the
/// registry holds weak references).
pub fn install_panic_hook(recorder: &Arc<FlightRecorder>) {
    let registry = PANIC_DUMPS.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            let Some(registry) = PANIC_DUMPS.get() else { return };
            let Ok(registry) = registry.lock() else { return };
            for recorder in registry.iter().filter_map(Weak::upgrade) {
                eprintln!("--- flight recorder: last {} events ---", recorder.len());
                eprint!("{}", recorder.dump_jsonl());
                eprintln!("--- end of flight record ---");
            }
        }));
        Mutex::new(Vec::new())
    });
    registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(Arc::downgrade(recorder));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{OpKind, Role};
    use crate::trace::{Obs, Tracer};

    fn ev(bytes: u64) -> Event {
        Event::new(Role::Peer, OpKind::Transfer).with_traffic(1, bytes)
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let rec = FlightRecorder::with_shape(1, 4);
        for i in 0..10 {
            rec.record(&ev(i));
        }
        let kept = rec.snapshot();
        assert_eq!(kept.len(), 4);
        let bytes: Vec<u64> = kept.iter().map(|e| e.bytes).collect();
        assert_eq!(bytes, vec![6, 7, 8, 9], "oldest first, newest retained");
    }

    #[test]
    fn snapshot_orders_across_stripes() {
        let rec = Arc::new(FlightRecorder::with_shape(4, 64));
        // Record from several threads; per-event sequence numbers must
        // still produce a globally ordered snapshot.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        rec.record(&ev(i));
                    }
                });
            }
        });
        assert_eq!(rec.len(), 200);
        assert_eq!(rec.snapshot().len(), 200);
    }

    #[test]
    fn dump_is_json_lines() {
        let rec = FlightRecorder::new();
        rec.record(&ev(7));
        let dump = rec.dump_jsonl();
        assert_eq!(dump.lines().count(), 1);
        assert!(dump.starts_with("{\"role\":\"peer\""), "{dump}");
        rec.clear();
        assert!(rec.is_empty());
        assert!(rec.dump_jsonl().is_empty());
    }

    #[test]
    fn obs_surfaces_the_flight_dump() {
        let rec = Arc::new(FlightRecorder::new());
        let obs = Obs::with_tracer(Tracer::new(rec.clone()));
        obs.span(Role::Broker, OpKind::Deposit).finish();
        let dump = obs.flight_dump().expect("flight recorder attached");
        assert_eq!(dump.lines().count(), 1);
        assert!(Obs::disabled().flight_dump().is_none());
    }
}

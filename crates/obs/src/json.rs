//! Hand-rolled JSON output: string escaping and the JSON-lines recorder.
//!
//! The workspace deliberately carries no serialization framework (the
//! wire format in `whopay-core::codec` is hand-rolled too), so the
//! event stream writes its own JSON. Only string escaping needs care;
//! everything else in an [`crate::Event`] is an enum label or integer.

use std::io::Write;
use std::sync::Mutex;

use crate::event::Event;
use crate::trace::Recorder;

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// and control characters; non-ASCII passes through as UTF-8).
pub fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A [`Recorder`] that writes one JSON object per line to any
/// [`Write`] sink (a file, a `Vec<u8>`, stderr).
///
/// Writes are serialized through a mutex; each event flushes-free
/// appends a single line, so the output is valid JSON-lines even under
/// concurrent recording. I/O errors are swallowed (observability must
/// never take the protocol down); call [`JsonLinesRecorder::flush`]
/// to surface buffered data at the end of a run.
#[derive(Debug)]
pub struct JsonLinesRecorder<W: Write + Send> {
    sink: Mutex<W>,
}

impl<W: Write + Send> JsonLinesRecorder<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        JsonLinesRecorder { sink: Mutex::new(sink) }
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        if let Ok(mut sink) = self.sink.lock() {
            let _ = sink.flush();
        }
    }

    /// Unwraps the recorder, returning the sink (useful for `Vec<u8>`
    /// sinks in tests).
    pub fn into_inner(self) -> W {
        self.sink.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<W: Write + Send> Recorder for JsonLinesRecorder<W> {
    fn record(&self, event: &Event) {
        let mut line = event.to_json();
        line.push('\n');
        if let Ok(mut sink) = self.sink.lock() {
            let _ = sink.write_all(line.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{OpKind, Role};

    #[test]
    fn escaping_covers_quotes_backslash_and_controls() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\te\u{1}f", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
    }

    #[test]
    fn escaping_passes_unicode_through() {
        let mut out = String::new();
        escape_into("héllo ✓", &mut out);
        assert_eq!(out, "héllo ✓");
    }

    #[test]
    fn recorder_emits_one_line_per_event() {
        let recorder = JsonLinesRecorder::new(Vec::new());
        recorder.record(&Event::new(Role::Broker, OpKind::Purchase).with_traffic(2, 100));
        recorder.record(&Event::new(Role::Peer, OpKind::Deposit));
        let text = String::from_utf8(recorder.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"role":"broker","op":"purchase","outcome":"ok","messages":2,"bytes":100}"#
        );
        assert_eq!(lines[1], r#"{"role":"peer","op":"deposit","outcome":"ok"}"#);
    }
}

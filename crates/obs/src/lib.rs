#![warn(missing_docs)]

//! Structured protocol tracing and metrics for the WhoPay reproduction.
//!
//! The paper's entire evaluation (§6, Figures 2–11, Table 3) measures
//! broker vs. peer CPU and communication load *per protocol operation*.
//! This crate is the substrate those measurements flow through when the
//! real protocol stack runs: every instrumented layer (`whopay-net`
//! delivery, `whopay-core` request dispatch and DSD checks, `whopay-dht`
//! storage traffic, the `whopay-eval` load simulator) reports
//! [`Event`]s tagged with an endpoint [`Role`] and an operation
//! [`OpKind`], and this crate aggregates them into counters and
//! fixed-bucket latency histograms or streams them as JSON lines for
//! offline analysis.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** The default [`Obs::disabled`] context
//!    takes no clock readings, allocates nothing, and reduces every
//!    instrumentation point to a branch on an `Option` discriminant.
//! 2. **No dependencies.** Events serialize through a hand-rolled JSON
//!    writer ([`json`]); aggregation uses `std` atomics only, so the
//!    registry can be shared across the scoped threads the evaluation
//!    sweeps use.
//! 3. **Reconcilable.** Traffic attributed to events is counted in the
//!    same units as `whopay-net`'s `TrafficStats` (messages and payload
//!    bytes), so experiment reports can assert that the per-operation
//!    breakdown sums exactly to the transport totals.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use whopay_obs::{Event, Metrics, Obs, OpKind, Role};
//!
//! let metrics = Arc::new(Metrics::new());
//! let obs = Obs::with_metrics(metrics.clone());
//!
//! // Instrumented code reports spans or whole events.
//! let mut span = obs.span(Role::Broker, OpKind::Purchase);
//! span.add_traffic(2, 311); // request + response
//! span.finish();
//! obs.observe(Event::new(Role::Peer, OpKind::Transfer).with_traffic(2, 500));
//!
//! let report = metrics.report();
//! assert_eq!(report.total_messages(), 4);
//! assert_eq!(report.total_bytes(), 811);
//! println!("{}", report.render_table());
//! ```

pub mod ctx;
pub mod event;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod trace;

pub use ctx::{TraceContext, TRACE_TRAILER_LEN};
pub use event::{Event, OpKind, Outcome, RetryNote, Role};
pub use export::{chrome_trace, prometheus_text};
pub use flight::{install_panic_hook, FlightRecorder};
pub use json::JsonLinesRecorder;
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, Metrics, MetricsReport, OpRow};
pub use trace::{trace_epoch, MemoryRecorder, NullRecorder, Obs, Recorder, Span, Tracer};

//! The aggregation registry: counters, gauges, latency histograms, and
//! per-role/per-operation rollups.
//!
//! Everything is lock-free on the hot path: the registry holds a fixed
//! `Role × OpKind` table of atomic cells, so concurrent simulation
//! threads aggregate without contention and without allocation. Named
//! counters/gauges (for one-off series) sit behind a mutex that is only
//! taken on first registration.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::event::{Event, OpKind, Outcome, Role};

/// A saturating monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX` instead of wrapping.
    pub fn add(&self, n: u64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(n);
            match self.0.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative), saturating at the `i64` limits.
    pub fn add(&self, delta: i64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(delta);
            match self.0.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two of nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket latency histogram over nanoseconds.
///
/// Bucket `0` covers `[0, 2)` ns; bucket `i > 0` covers
/// `[2^i, 2^(i+1))` ns — so the relative error of any percentile
/// estimate is bounded by one octave, which is plenty for the order-of-
/// magnitude latency comparisons the evaluation makes. Recording is one
/// atomic increment; there is no allocation and no locking.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: Counter,
    sum_nanos: Counter,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: Counter::new(),
            sum_nanos: Counter::new(),
        }
    }
}

/// Maps a nanosecond value to its bucket index.
fn bucket_index(nanos: u64) -> usize {
    (63 - (nanos | 1).leading_zeros()) as usize
}

/// The inclusive upper bound of a bucket, in nanoseconds.
fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 63 {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&self, duration: Duration) {
        self.record_nanos(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one raw nanosecond value.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.inc();
        self.sum_nanos.add(nanos);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Sum of recorded values in nanoseconds (saturating).
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.get()
    }

    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_nanos() as f64 / count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// where the cumulative count crosses `ceil(q × N)`; 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Convenience: p50/p90/p99 in nanoseconds.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.90), self.quantile(0.99))
    }

    /// Cumulative `(upper_bound_ns, cumulative_count)` pairs at every
    /// occupied bucket boundary — the log-bucket distribution in the
    /// shape Prometheus histogram exposition wants (`le` labels).
    /// Empty buckets are skipped; callers add the `+Inf` bound from
    /// [`Histogram::count`].
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                out.push((bucket_upper_bound(i), cumulative));
            }
        }
        out
    }
}

/// The per-`(Role, OpKind)` aggregate cell.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Operations observed.
    pub count: Counter,
    /// Operations that ended in [`Outcome::Error`].
    pub errors: Counter,
    /// Messages attributed (in `TrafficStats` units).
    pub messages: Counter,
    /// Payload bytes attributed.
    pub bytes: Counter,
    /// Latency distribution of timed operations.
    pub latency: Histogram,
}

impl OpMetrics {
    fn observe(&self, event: &Event) {
        self.count.inc();
        if event.outcome == Outcome::Error {
            self.errors.inc();
        }
        self.messages.add(event.messages);
        self.bytes.add(event.bytes);
        if let Some(d) = event.duration {
            self.latency.record(d);
        }
    }
}

/// An immutable snapshot of one `(Role, OpKind)` cell, as reported.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRow {
    /// The role the row aggregates.
    pub role: Role,
    /// The operation the row aggregates.
    pub op: OpKind,
    /// Operations observed.
    pub count: u64,
    /// Operations that failed.
    pub errors: u64,
    /// Messages attributed.
    pub messages: u64,
    /// Bytes attributed.
    pub bytes: u64,
    /// Latency p50 in nanoseconds (0 when nothing was timed).
    pub p50_nanos: u64,
    /// Latency p90 in nanoseconds.
    pub p90_nanos: u64,
    /// Latency p99 in nanoseconds.
    pub p99_nanos: u64,
    /// Mean latency in nanoseconds.
    pub mean_nanos: f64,
}

/// The metrics registry: a fixed `Role × OpKind` table plus named
/// counters, gauges, and histograms.
#[derive(Debug)]
pub struct Metrics {
    ops: [[OpMetrics; OpKind::ALL.len()]; Role::ALL.len()],
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            ops: std::array::from_fn(|_| std::array::from_fn(|_| OpMetrics::default())),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The live aggregate cell for one `(role, op)`.
    pub fn op(&self, role: Role, op: OpKind) -> &OpMetrics {
        &self.ops[role.index()][op.index()]
    }

    /// Aggregates one event.
    pub fn observe(&self, event: &Event) {
        self.op(event.role, event.op).observe(event);
    }

    /// The named counter, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The named gauge, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The named latency histogram, created on first use. Used for series
    /// that are not `(Role, OpKind)`-shaped — e.g. per-scheme crypto
    /// operation latencies ("crypto.dsa.verify").
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())).clone()
    }

    /// The named histograms currently registered, for exporters.
    pub fn named_histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.clone()))
            .collect()
    }

    /// Snapshot of one cell.
    pub fn op_snapshot(&self, role: Role, op: OpKind) -> OpRow {
        let cell = self.op(role, op);
        let (p50, p90, p99) = cell.latency.percentiles();
        OpRow {
            role,
            op,
            count: cell.count.get(),
            errors: cell.errors.get(),
            messages: cell.messages.get(),
            bytes: cell.bytes.get(),
            p50_nanos: p50,
            p90_nanos: p90,
            p99_nanos: p99,
            mean_nanos: cell.latency.mean_nanos(),
        }
    }

    /// Snapshot of every non-empty cell plus all named series.
    pub fn report(&self) -> MetricsReport {
        let mut rows = Vec::new();
        for role in Role::ALL {
            for op in OpKind::ALL {
                let row = self.op_snapshot(role, op);
                if row.count > 0 || row.messages > 0 {
                    rows.push(row);
                }
            }
        }
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), HistogramSummary::of(h)))
            .collect();
        MetricsReport { rows, counters, gauges, histograms }
    }
}

/// An immutable summary of one named histogram, as reported.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Mean in nanoseconds (0 when empty).
    pub mean_nanos: f64,
    /// p50 in nanoseconds.
    pub p50_nanos: u64,
    /// p90 in nanoseconds.
    pub p90_nanos: u64,
    /// p99 in nanoseconds.
    pub p99_nanos: u64,
}

impl HistogramSummary {
    /// Snapshot of a live histogram.
    pub fn of(h: &Histogram) -> Self {
        let (p50, p90, p99) = h.percentiles();
        HistogramSummary {
            count: h.count(),
            mean_nanos: h.mean_nanos(),
            p50_nanos: p50,
            p90_nanos: p90,
            p99_nanos: p99,
        }
    }
}

/// A finished snapshot of the registry, ready to render or reconcile.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Non-empty `(role, op)` aggregates, in reporting order.
    pub rows: Vec<OpRow>,
    /// Named counters.
    pub counters: BTreeMap<String, u64>,
    /// Named gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Named histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsReport {
    /// Total messages across all rows (for reconciling against
    /// `TrafficStats`).
    pub fn total_messages(&self) -> u64 {
        self.rows.iter().fold(0, |acc, r| acc.saturating_add(r.messages))
    }

    /// Total bytes across all rows.
    pub fn total_bytes(&self) -> u64 {
        self.rows.iter().fold(0, |acc, r| acc.saturating_add(r.bytes))
    }

    /// Messages attributed to one role.
    pub fn role_messages(&self, role: Role) -> u64 {
        self.rows.iter().filter(|r| r.role == role).fold(0, |a, r| a.saturating_add(r.messages))
    }

    /// Operation count attributed to one role.
    pub fn role_count(&self, role: Role) -> u64 {
        self.rows.iter().filter(|r| r.role == role).fold(0, |a, r| a.saturating_add(r.count))
    }

    /// Renders the per-operation table (one row per `(role, op)`),
    /// with latency percentiles in human units.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "{:<8} {:<22} {:>10} {:>7} {:>10} {:>12} {:>10} {:>10} {:>10}",
            "role", "op", "count", "errors", "messages", "bytes", "p50", "p90", "p99"
        )
        .expect("string write");
        for r in &self.rows {
            writeln!(
                out,
                "{:<8} {:<22} {:>10} {:>7} {:>10} {:>12} {:>10} {:>10} {:>10}",
                r.role.label(),
                r.op.label(),
                r.count,
                r.errors,
                r.messages,
                r.bytes,
                fmt_nanos(r.p50_nanos),
                fmt_nanos(r.p90_nanos),
                fmt_nanos(r.p99_nanos),
            )
            .expect("string write");
        }
        for (name, value) in &self.counters {
            writeln!(out, "counter  {name:<22} {value:>10}").expect("string write");
        }
        for (name, value) in &self.gauges {
            writeln!(out, "gauge    {name:<22} {value:>10}").expect("string write");
        }
        for (name, h) in &self.histograms {
            writeln!(
                out,
                "hist     {name:<22} {:>10} {:>7} {:>10} {:>12} {:>10} {:>10} {:>10}",
                h.count,
                "",
                "",
                fmt_nanos(h.mean_nanos as u64),
                fmt_nanos(h.p50_nanos),
                fmt_nanos(h.p90_nanos),
                fmt_nanos(h.p99_nanos),
            )
            .expect("string write");
        }
        out
    }
}

/// Formats nanoseconds with an adaptive unit (0 renders as "-").
fn fmt_nanos(nanos: u64) -> String {
    if nanos == 0 {
        "-".to_string()
    } else if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_saturates_both_ways() {
        let g = Gauge::new();
        g.set(i64::MAX - 1);
        g.add(10);
        assert_eq!(g.get(), i64::MAX);
        g.set(i64::MIN + 1);
        g.add(-10);
        assert_eq!(g.get(), i64::MIN);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(9), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let h = Histogram::new();
        // 90 fast ops (~100ns, bucket 6: [64,128)), 10 slow (~1ms).
        for _ in 0..90 {
            h.record_nanos(100);
        }
        for _ in 0..10 {
            h.record_nanos(1_000_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), 127);
        assert_eq!(h.quantile(0.90), 127);
        // p99 lands in the slow bucket: [2^19, 2^20) ns.
        assert_eq!(h.quantile(0.99), (1 << 20) - 1);
        assert_eq!(h.quantile(1.0), (1 << 20) - 1);
    }

    #[test]
    fn cumulative_buckets_cover_the_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_nanos(100); // bucket [64, 128)
        }
        for _ in 0..10 {
            h.record_nanos(1_000_000);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets, vec![(127, 90), ((1 << 20) - 1, 100)]);
        assert!(Histogram::new().cumulative_buckets().is_empty());
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean_nanos(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_out_of_range() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn histogram_mean_tracks_sum() {
        let h = Histogram::new();
        h.record_nanos(100);
        h.record_nanos(300);
        assert_eq!(h.sum_nanos(), 400);
        assert_eq!(h.mean_nanos(), 200.0);
    }

    #[test]
    fn registry_aggregates_events_per_cell() {
        let m = Metrics::new();
        m.observe(&Event::new(Role::Broker, OpKind::Purchase).with_traffic(2, 100));
        m.observe(&Event::new(Role::Broker, OpKind::Purchase).with_traffic(2, 150));
        m.observe(&Event::new(Role::Peer, OpKind::Transfer).with_traffic(4, 999).failed());

        let purchase = m.op_snapshot(Role::Broker, OpKind::Purchase);
        assert_eq!(purchase.count, 2);
        assert_eq!(purchase.messages, 4);
        assert_eq!(purchase.bytes, 250);
        assert_eq!(purchase.errors, 0);

        let transfer = m.op_snapshot(Role::Peer, OpKind::Transfer);
        assert_eq!(transfer.errors, 1);

        let report = m.report();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.total_messages(), 8);
        assert_eq!(report.total_bytes(), 1249);
        assert_eq!(report.role_messages(Role::Broker), 4);
        assert_eq!(report.role_count(Role::Peer), 1);
    }

    #[test]
    fn named_series_are_shared_by_name() {
        let m = Metrics::new();
        m.counter("loadsim.payments").add(3);
        m.counter("loadsim.payments").inc();
        m.gauge("wallet.size").set(-2);
        let report = m.report();
        assert_eq!(report.counters["loadsim.payments"], 4);
        assert_eq!(report.gauges["wallet.size"], -2);
    }

    #[test]
    fn named_histograms_report_and_render() {
        let m = Metrics::new();
        m.histogram("crypto.dsa.verify").record(Duration::from_micros(50));
        m.histogram("crypto.dsa.verify").record(Duration::from_micros(70));
        let report = m.report();
        let h = &report.histograms["crypto.dsa.verify"];
        assert_eq!(h.count, 2);
        assert_eq!(h.mean_nanos, 60_000.0);
        assert!(h.p50_nanos >= 50_000);
        let table = report.render_table();
        assert!(table.contains("hist     crypto.dsa.verify"), "{table}");
    }

    #[test]
    fn report_table_renders_every_row() {
        let m = Metrics::new();
        m.observe(
            &Event::new(Role::Broker, OpKind::Purchase)
                .with_traffic(2, 100)
                .with_duration(Duration::from_micros(5)),
        );
        let table = m.report().render_table();
        assert!(table.contains("broker"));
        assert!(table.contains("purchase"));
        assert!(table.contains("us"), "latency rendered in microseconds: {table}");
    }

    #[test]
    fn concurrent_observation_is_lossless() {
        let m = Arc::new(Metrics::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        m.observe(&Event::new(Role::Peer, OpKind::Issue).with_traffic(1, 10));
                    }
                });
            }
        });
        let row = m.op_snapshot(Role::Peer, OpKind::Issue);
        assert_eq!(row.count, 40_000);
        assert_eq!(row.messages, 40_000);
        assert_eq!(row.bytes, 400_000);
    }
}

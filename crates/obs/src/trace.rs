//! Recorders, the shared [`Obs`] context, and timing [`Span`]s.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, OpKind, Outcome, Role};
use crate::metrics::Metrics;

/// A sink for finished [`Event`]s.
///
/// Implementations must be shareable across threads (the evaluation
/// sweeps run simulations on scoped threads against one recorder).
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Whether recording is active. Instrumented code may skip building
    /// events entirely when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The recorder that drops everything (and reports itself disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// An in-memory recorder for tests and short experiment runs.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("event buffer poisoned").clone()
    }

    /// Removes and returns all recorded events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("event buffer poisoned"))
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event) {
        self.events.lock().expect("event buffer poisoned").push(event.clone());
    }
}

/// A cheap, clonable handle to an optional [`Recorder`].
///
/// `Tracer::disabled()` (the default) holds no recorder at all: emitting
/// through it is a single branch, and [`Obs::span`] won't even read the
/// clock.
#[derive(Clone, Default)]
pub struct Tracer {
    recorder: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.enabled()).finish()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer { recorder: None }
    }

    /// A tracer feeding `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Tracer { recorder: Some(recorder) }
    }

    /// Whether events reach a live recorder.
    pub fn enabled(&self) -> bool {
        self.recorder.as_deref().is_some_and(Recorder::enabled)
    }

    /// Emits one event (no-op when disabled).
    pub fn emit(&self, event: &Event) {
        if let Some(recorder) = &self.recorder {
            recorder.record(event);
        }
    }
}

/// The observability context instrumented layers carry: an event stream
/// ([`Tracer`]) plus an optional aggregation registry ([`Metrics`]).
///
/// The disabled default is designed to make instrumentation free: no
/// allocation, no clock reads, one discriminant branch per site.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    tracer: Tracer,
    metrics: Option<Arc<Metrics>>,
}

impl Obs {
    /// The no-op context.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Aggregates into `metrics`, with no event stream.
    pub fn with_metrics(metrics: Arc<Metrics>) -> Self {
        Obs { tracer: Tracer::disabled(), metrics: Some(metrics) }
    }

    /// Streams events through `tracer`, with no aggregation.
    pub fn with_tracer(tracer: Tracer) -> Self {
        Obs { tracer, metrics: None }
    }

    /// Full context: events stream through `tracer` and aggregate into
    /// `metrics`.
    pub fn new(tracer: Tracer, metrics: Arc<Metrics>) -> Self {
        Obs { tracer, metrics: Some(metrics) }
    }

    /// Whether any sink is attached.
    pub fn enabled(&self) -> bool {
        self.metrics.is_some() || self.tracer.enabled()
    }

    /// The aggregation registry, if one is attached.
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.as_ref()
    }

    /// Reports one finished event to every attached sink.
    pub fn observe(&self, event: Event) {
        if let Some(metrics) = &self.metrics {
            metrics.observe(&event);
        }
        self.tracer.emit(&event);
    }

    /// Starts a timed span for one operation. When the context is
    /// disabled the span is inert (no clock read) and
    /// [`Span::finish`] does nothing.
    pub fn span(&self, role: Role, op: OpKind) -> Span<'_> {
        let start = if self.enabled() { Some(Instant::now()) } else { None };
        Span {
            obs: self,
            role,
            op,
            start,
            messages: 0,
            bytes: 0,
            batch: None,
            outcome: Outcome::Ok,
            detail: None,
        }
    }
}

/// An in-progress operation: accumulates traffic and outcome, then
/// reports one [`Event`] (with wall-clock duration) on
/// [`Span::finish`].
#[derive(Debug)]
pub struct Span<'a> {
    obs: &'a Obs,
    role: Role,
    op: OpKind,
    start: Option<Instant>,
    messages: u64,
    bytes: u64,
    batch: Option<u64>,
    outcome: Outcome,
    detail: Option<String>,
}

impl Span<'_> {
    /// Attributes `messages`/`bytes` of traffic to this operation.
    pub fn add_traffic(&mut self, messages: u64, bytes: u64) {
        self.messages = self.messages.saturating_add(messages);
        self.bytes = self.bytes.saturating_add(bytes);
    }

    /// Marks the operation failed, with a short reason.
    pub fn fail(&mut self, detail: impl Into<String>) {
        self.outcome = Outcome::Error;
        if self.obs.enabled() {
            self.detail = Some(detail.into());
        }
    }

    /// Overrides the operation kind (for dispatch sites that only learn
    /// the kind after decoding the request).
    pub fn set_op(&mut self, op: OpKind) {
        self.op = op;
    }

    /// Records how many items this operation settled together (batched
    /// dispatch sites).
    pub fn set_batch(&mut self, batch: u64) {
        self.batch = Some(batch);
    }

    /// Ends the span and reports the event. Inert when the context is
    /// disabled.
    pub fn finish(self) {
        let Some(start) = self.start else { return };
        let event = Event {
            role: self.role,
            op: self.op,
            outcome: self.outcome,
            duration: Some(start.elapsed()),
            messages: self.messages,
            bytes: self.bytes,
            batch: self.batch,
            detail: self.detail,
        };
        self.obs.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn disabled_context_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let mut span = obs.span(Role::Broker, OpKind::Purchase);
        assert!(span.start.is_none(), "no clock read when disabled");
        span.add_traffic(2, 100);
        span.finish(); // must not panic, must not record
    }

    #[test]
    fn span_reports_into_metrics_and_recorder() {
        let metrics = Arc::new(Metrics::new());
        let recorder = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(Tracer::new(recorder.clone()), metrics.clone());

        let mut span = obs.span(Role::Peer, OpKind::Transfer);
        span.add_traffic(2, 300);
        span.finish();

        let events = recorder.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].role, Role::Peer);
        assert_eq!(events[0].op, OpKind::Transfer);
        assert_eq!(events[0].messages, 2);
        assert!(events[0].duration.is_some());

        let snapshot = metrics.op_snapshot(Role::Peer, OpKind::Transfer);
        assert_eq!(snapshot.count, 1);
        assert_eq!(snapshot.bytes, 300);
    }

    #[test]
    fn failed_spans_count_as_errors() {
        let metrics = Arc::new(Metrics::new());
        let obs = Obs::with_metrics(metrics.clone());
        let mut span = obs.span(Role::Broker, OpKind::Deposit);
        span.fail("already deposited");
        span.finish();
        let snapshot = metrics.op_snapshot(Role::Broker, OpKind::Deposit);
        assert_eq!(snapshot.count, 1);
        assert_eq!(snapshot.errors, 1);
    }

    #[test]
    fn null_recorder_disables_tracer() {
        let tracer = Tracer::new(Arc::new(NullRecorder));
        assert!(!tracer.enabled());
        let obs = Obs::with_tracer(tracer);
        assert!(!obs.enabled());
    }

    #[test]
    fn memory_recorder_take_drains() {
        let recorder = MemoryRecorder::new();
        recorder.record(&Event::new(Role::Client, OpKind::Other));
        assert_eq!(recorder.take().len(), 1);
        assert!(recorder.events().is_empty());
    }
}

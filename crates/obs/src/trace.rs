//! Recorders, the shared [`Obs`] context, and timing [`Span`]s.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::ctx::TraceContext;
use crate::event::{Event, OpKind, Outcome, RetryNote, Role};
use crate::metrics::Metrics;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process trace epoch: the instant the first enabled span (or the
/// first explicit call) observed. All [`Span`] start offsets — and
/// therefore the chrome-trace timeline — are measured from here, so
/// spans from different [`Obs`] instances share one clock.
pub fn trace_epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// A sink for finished [`Event`]s.
///
/// Implementations must be shareable across threads (the evaluation
/// sweeps run simulations on scoped threads against one recorder).
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Whether recording is active. Instrumented code may skip building
    /// events entirely when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// A JSON-lines dump of recently retained events, if this recorder
    /// retains any (see `FlightRecorder`). Invariant auditors request
    /// this when a violation fires.
    fn flight_dump(&self) -> Option<String> {
        None
    }
}

/// The recorder that drops everything (and reports itself disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// An in-memory recorder for tests and short experiment runs.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("event buffer poisoned").clone()
    }

    /// Removes and returns all recorded events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("event buffer poisoned"))
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event) {
        self.events.lock().expect("event buffer poisoned").push(event.clone());
    }
}

/// A cheap, clonable handle to an optional [`Recorder`].
///
/// `Tracer::disabled()` (the default) holds no recorder at all: emitting
/// through it is a single branch, and [`Obs::span`] won't even read the
/// clock.
#[derive(Clone, Default)]
pub struct Tracer {
    recorder: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.enabled()).finish()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer { recorder: None }
    }

    /// A tracer feeding `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Tracer { recorder: Some(recorder) }
    }

    /// Whether events reach a live recorder.
    pub fn enabled(&self) -> bool {
        self.recorder.as_deref().is_some_and(Recorder::enabled)
    }

    /// Emits one event (no-op when disabled).
    pub fn emit(&self, event: &Event) {
        if let Some(recorder) = &self.recorder {
            recorder.record(event);
        }
    }

    /// The recorder's flight dump, if it retains events.
    pub fn flight_dump(&self) -> Option<String> {
        self.recorder.as_deref().and_then(Recorder::flight_dump)
    }
}

/// The observability context instrumented layers carry: an event stream
/// ([`Tracer`]) plus an optional aggregation registry ([`Metrics`]).
///
/// The disabled default is designed to make instrumentation free: no
/// allocation, no clock reads, one discriminant branch per site.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    tracer: Tracer,
    metrics: Option<Arc<Metrics>>,
}

impl Obs {
    /// The no-op context.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Aggregates into `metrics`, with no event stream.
    pub fn with_metrics(metrics: Arc<Metrics>) -> Self {
        Obs { tracer: Tracer::disabled(), metrics: Some(metrics) }
    }

    /// Streams events through `tracer`, with no aggregation.
    pub fn with_tracer(tracer: Tracer) -> Self {
        Obs { tracer, metrics: None }
    }

    /// Full context: events stream through `tracer` and aggregate into
    /// `metrics`.
    pub fn new(tracer: Tracer, metrics: Arc<Metrics>) -> Self {
        Obs { tracer, metrics: Some(metrics) }
    }

    /// Whether any sink is attached.
    pub fn enabled(&self) -> bool {
        self.metrics.is_some() || self.tracer.enabled()
    }

    /// The aggregation registry, if one is attached.
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.as_ref()
    }

    /// Reports one finished event to every attached sink.
    pub fn observe(&self, event: Event) {
        if let Some(metrics) = &self.metrics {
            metrics.observe(&event);
        }
        self.tracer.emit(&event);
    }

    /// Starts a timed span for one operation. When the context is
    /// disabled the span is inert (no clock read, no trace id drawn) and
    /// [`Span::finish`] does nothing. Enabled spans root a fresh trace;
    /// use [`Obs::child_span`] to join an existing one.
    pub fn span(&self, role: Role, op: OpKind) -> Span<'_> {
        self.span_with(role, op, TraceContext::root)
    }

    /// Starts a timed span as a child of `parent` (same trace, one hop
    /// deeper). Inert when the context is disabled, like [`Obs::span`].
    pub fn child_span(&self, role: Role, op: OpKind, parent: &TraceContext) -> Span<'_> {
        self.span_with(role, op, || parent.child())
    }

    /// The trace dump of an attached flight recorder, if any.
    pub fn flight_dump(&self) -> Option<String> {
        self.tracer.flight_dump()
    }

    fn span_with(&self, role: Role, op: OpKind, ctx: impl FnOnce() -> TraceContext) -> Span<'_> {
        let (start, ctx) = if self.enabled() {
            trace_epoch(); // pin the epoch before the first span starts
            (Some(Instant::now()), Some(ctx()))
        } else {
            (None, None)
        };
        Span {
            obs: self,
            role,
            op,
            start,
            ctx,
            messages: 0,
            bytes: 0,
            batch: None,
            retry: None,
            outcome: Outcome::Ok,
            shard: None,
            partition: None,
            detail: None,
        }
    }
}

/// An in-progress operation: accumulates traffic and outcome, then
/// reports one [`Event`] (with wall-clock duration) on
/// [`Span::finish`].
#[derive(Debug)]
pub struct Span<'a> {
    obs: &'a Obs,
    role: Role,
    op: OpKind,
    start: Option<Instant>,
    ctx: Option<TraceContext>,
    messages: u64,
    bytes: u64,
    batch: Option<u64>,
    retry: Option<RetryNote>,
    outcome: Outcome,
    shard: Option<u16>,
    partition: Option<u32>,
    detail: Option<String>,
}

impl Span<'_> {
    /// Attributes `messages`/`bytes` of traffic to this operation.
    pub fn add_traffic(&mut self, messages: u64, bytes: u64) {
        self.messages = self.messages.saturating_add(messages);
        self.bytes = self.bytes.saturating_add(bytes);
    }

    /// This span's trace context (`None` when the context is disabled).
    /// Callers append it to outgoing frames so the receiving side can
    /// parent its dispatch span under this one.
    pub fn context(&self) -> Option<TraceContext> {
        self.ctx
    }

    /// Marks this span as retry attempt `attempt` (1-based), caused by
    /// a predecessor that failed with `after`.
    pub fn mark_retry(&mut self, attempt: u32, after: &'static str) {
        self.retry = Some(RetryNote { attempt, after });
    }

    /// Marks the operation failed, with a short reason.
    pub fn fail(&mut self, detail: impl Into<String>) {
        self.outcome = Outcome::Error;
        if self.obs.enabled() {
            self.detail = Some(detail.into());
        }
    }

    /// Overrides the operation kind (for dispatch sites that only learn
    /// the kind after decoding the request).
    pub fn set_op(&mut self, op: OpKind) {
        self.op = op;
    }

    /// Records how many items this operation settled together (batched
    /// dispatch sites).
    pub fn set_batch(&mut self, batch: u64) {
        self.batch = Some(batch);
    }

    /// Attributes this operation to a broker shard (sharded dispatch
    /// sites; the label survives the queue hop into the event stream).
    pub fn set_shard(&mut self, shard: u16) {
        self.shard = Some(shard);
    }

    /// Attributes this operation to a load-simulation partition
    /// (partitioned sub-simulation runners).
    pub fn set_partition(&mut self, partition: u32) {
        self.partition = Some(partition);
    }

    /// Ends the span and reports the event. Inert when the context is
    /// disabled.
    pub fn finish(self) {
        let Some(start) = self.start else { return };
        let start_us = u64::try_from(start.saturating_duration_since(trace_epoch()).as_micros())
            .unwrap_or(u64::MAX);
        let event = Event {
            role: self.role,
            op: self.op,
            outcome: self.outcome,
            duration: Some(start.elapsed()),
            messages: self.messages,
            bytes: self.bytes,
            batch: self.batch,
            trace: self.ctx,
            retry: self.retry,
            start_us: Some(start_us),
            shard: self.shard,
            partition: self.partition,
            detail: self.detail,
        };
        self.obs.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn disabled_context_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let mut span = obs.span(Role::Broker, OpKind::Purchase);
        assert!(span.start.is_none(), "no clock read when disabled");
        span.add_traffic(2, 100);
        span.finish(); // must not panic, must not record
    }

    #[test]
    fn span_reports_into_metrics_and_recorder() {
        let metrics = Arc::new(Metrics::new());
        let recorder = Arc::new(MemoryRecorder::new());
        let obs = Obs::new(Tracer::new(recorder.clone()), metrics.clone());

        let mut span = obs.span(Role::Peer, OpKind::Transfer);
        span.add_traffic(2, 300);
        span.finish();

        let events = recorder.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].role, Role::Peer);
        assert_eq!(events[0].op, OpKind::Transfer);
        assert_eq!(events[0].messages, 2);
        assert!(events[0].duration.is_some());

        let snapshot = metrics.op_snapshot(Role::Peer, OpKind::Transfer);
        assert_eq!(snapshot.count, 1);
        assert_eq!(snapshot.bytes, 300);
    }

    #[test]
    fn failed_spans_count_as_errors() {
        let metrics = Arc::new(Metrics::new());
        let obs = Obs::with_metrics(metrics.clone());
        let mut span = obs.span(Role::Broker, OpKind::Deposit);
        span.fail("already deposited");
        span.finish();
        let snapshot = metrics.op_snapshot(Role::Broker, OpKind::Deposit);
        assert_eq!(snapshot.count, 1);
        assert_eq!(snapshot.errors, 1);
    }

    #[test]
    fn null_recorder_disables_tracer() {
        let tracer = Tracer::new(Arc::new(NullRecorder));
        assert!(!tracer.enabled());
        let obs = Obs::with_tracer(tracer);
        assert!(!obs.enabled());
    }

    #[test]
    fn enabled_spans_carry_linked_trace_contexts() {
        let recorder = Arc::new(MemoryRecorder::new());
        let obs = Obs::with_tracer(Tracer::new(recorder.clone()));

        let parent = obs.span(Role::Client, OpKind::Purchase);
        let parent_ctx = parent.context().expect("enabled span has a context");
        let mut child = obs.child_span(Role::Broker, OpKind::Purchase, &parent_ctx);
        child.mark_retry(1, "lost");
        child.finish();
        parent.finish();

        let events = recorder.events();
        assert_eq!(events.len(), 2);
        let child_ev = &events[0];
        let parent_ev = &events[1];
        let ct = child_ev.trace.expect("child carries a context");
        let pt = parent_ev.trace.expect("parent carries a context");
        assert_eq!(ct.trace_id, pt.trace_id, "same trace");
        assert_eq!(ct.parent_span_id, pt.span_id, "child links to parent");
        assert_eq!(ct.hop, pt.hop + 1);
        assert_eq!(child_ev.retry.map(|r| (r.attempt, r.after)), Some((1, "lost")));
        assert!(child_ev.start_us.is_some() && parent_ev.start_us.is_some());
    }

    #[test]
    fn disabled_spans_draw_no_trace_ids() {
        let obs = Obs::disabled();
        let span = obs.span(Role::Peer, OpKind::Transfer);
        assert!(span.context().is_none());
        let parent = TraceContext::root();
        assert!(obs.child_span(Role::Peer, OpKind::Transfer, &parent).context().is_none());
    }

    #[test]
    fn memory_recorder_take_drains() {
        let recorder = MemoryRecorder::new();
        recorder.record(&Event::new(Role::Client, OpKind::Other));
        assert_eq!(recorder.take().len(), 1);
        assert!(recorder.events().is_empty());
    }
}

//! The PPay broker: mints coins, redeems deposits, detects double spends,
//! and runs the downtime protocol for offline owners.

use std::collections::{HashMap, HashSet};

use rand::Rng;
use whopay_crypto::dsa::{DsaKeyPair, DsaPublicKey};
use whopay_num::SchnorrGroup;

use crate::coin::{Assignment, BaseCoin, SerialNumber};
use crate::user::{TransferRequest, User, UserId};

/// A successful deposit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepositReceipt {
    /// The deposited coin.
    pub serial: SerialNumber,
    /// Value credited (PPay coins are unit-valued).
    pub value: u64,
}

/// Why a deposit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepositError {
    /// The assignment chain failed verification.
    BadSignature,
    /// The depositor is not the assigned holder.
    NotHolder {
        /// Who the assignment names.
        assigned: UserId,
    },
    /// The coin was deposited before — a double spend. The owner of the
    /// coin is the accountable party (only owners can re-assign in PPay).
    DoubleSpend {
        /// The coin's (publicly known) owner, to be punished.
        owner: UserId,
    },
    /// The serial number was never minted.
    UnknownCoin(SerialNumber),
}

impl std::fmt::Display for DepositError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepositError::BadSignature => f.write_str("deposit failed signature verification"),
            DepositError::NotHolder { assigned } => {
                write!(f, "deposit by non-holder; coin is assigned to {assigned}")
            }
            DepositError::DoubleSpend { owner } => {
                write!(f, "double spend detected; coin owner {owner} is accountable")
            }
            DepositError::UnknownCoin(sn) => write!(f, "unknown coin {sn}"),
        }
    }
}

impl std::error::Error for DepositError {}

/// Why a downtime operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DowntimeError {
    /// Signature verification failed.
    BadSignature,
    /// The broker's record disagrees with the claimed holder.
    HolderMismatch {
        /// Holder per the broker's downtime state.
        expected: UserId,
    },
    /// Unknown coin.
    UnknownCoin(SerialNumber),
    /// Unknown user (not registered).
    UnknownUser(UserId),
}

impl std::fmt::Display for DowntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DowntimeError::BadSignature => f.write_str("downtime request failed verification"),
            DowntimeError::HolderMismatch { expected } => {
                write!(f, "downtime request from stale holder; broker records {expected}")
            }
            DowntimeError::UnknownCoin(sn) => write!(f, "unknown coin {sn}"),
            DowntimeError::UnknownUser(u) => write!(f, "unregistered user {u}"),
        }
    }
}

impl std::error::Error for DowntimeError {}

/// Broker-side per-coin downtime state.
#[derive(Debug, Clone)]
struct DowntimeState {
    holder: UserId,
    seq: u64,
}

/// The PPay broker.
#[derive(Debug)]
pub struct Broker {
    group: SchnorrGroup,
    keys: DsaKeyPair,
    next_serial: u64,
    /// Minted coins and their owners.
    minted: HashMap<SerialNumber, UserId>,
    /// Registered user public keys.
    users: HashMap<UserId, DsaPublicKey>,
    /// Serial numbers already redeemed (double-spend ledger).
    deposited: HashSet<SerialNumber>,
    /// State for coins managed during owner downtime, to be synchronized
    /// when owners rejoin.
    downtime: HashMap<SerialNumber, DowntimeState>,
    /// Double spends the broker has caught (owner id per incident).
    fraud_log: Vec<(SerialNumber, UserId)>,
}

impl Broker {
    /// Creates a broker with a fresh signing key.
    pub fn new<R: Rng + ?Sized>(group: SchnorrGroup, rng: &mut R) -> Self {
        let keys = DsaKeyPair::generate(&group, rng);
        Broker {
            group,
            keys,
            next_serial: 1,
            minted: HashMap::new(),
            users: HashMap::new(),
            deposited: HashSet::new(),
            downtime: HashMap::new(),
            fraud_log: Vec::new(),
        }
    }

    /// The broker's public key (verifies base coins).
    pub fn public_key(&self) -> &DsaPublicKey {
        self.keys.public()
    }

    /// Registers a user's public key (PPay identities are public).
    pub fn register(&mut self, user: &User) {
        self.users.insert(user.id(), user.public_key().clone());
    }

    /// Looks up a registered user's key.
    pub fn user_key(&self, id: UserId) -> Option<&DsaPublicKey> {
        self.users.get(&id)
    }

    /// Double-spend incidents detected so far, as (coin, accountable owner).
    pub fn fraud_log(&self) -> &[(SerialNumber, UserId)] {
        &self.fraud_log
    }

    /// Mints and sells a coin to `owner` (the PPay purchase step).
    pub fn sell_coin<R: Rng + ?Sized>(&mut self, owner: UserId, rng: &mut R) -> BaseCoin {
        let serial = SerialNumber(self.next_serial);
        self.next_serial += 1;
        self.minted.insert(serial, owner);
        let sig = self.keys.sign(&self.group, &BaseCoin::signed_bytes(owner, serial), rng);
        BaseCoin::from_parts(owner, serial, sig)
    }

    /// Redeems a coin for cash.
    ///
    /// # Errors
    ///
    /// See [`DepositError`]; in particular a second deposit of the same
    /// serial number is flagged as a double spend and attributed to the
    /// coin's owner.
    pub fn deposit<R: Rng + ?Sized>(
        &mut self,
        depositor: UserId,
        assignment: Assignment,
        _rng: &mut R,
    ) -> Result<DepositReceipt, DepositError> {
        let serial = assignment.coin().serial();
        let owner = *self.minted.get(&serial).ok_or(DepositError::UnknownCoin(serial))?;
        if !assignment.coin().verify(&self.group, self.keys.public()) {
            return Err(DepositError::BadSignature);
        }
        // The assignment may be owner-signed or broker-signed (downtime).
        let owner_key = self.users.get(&owner).ok_or(DepositError::BadSignature)?;
        let owner_ok = assignment.verify(&self.group, owner_key);
        let broker_ok = assignment.verify(&self.group, self.keys.public());
        if !owner_ok && !broker_ok {
            return Err(DepositError::BadSignature);
        }
        if assignment.holder() != depositor {
            return Err(DepositError::NotHolder { assigned: assignment.holder() });
        }
        if !self.deposited.insert(serial) {
            self.fraud_log.push((serial, owner));
            return Err(DepositError::DoubleSpend { owner });
        }
        self.downtime.remove(&serial);
        Ok(DepositReceipt { serial, value: 1 })
    }

    /// Downtime transfer: the broker re-assigns a coin whose owner is
    /// offline, after verifying the holder's signed request.
    ///
    /// # Errors
    ///
    /// See [`DowntimeError`].
    pub fn downtime_transfer<R: Rng + ?Sized>(
        &mut self,
        requester: UserId,
        request: TransferRequest,
        rng: &mut R,
    ) -> Result<Assignment, DowntimeError> {
        let serial = request.current.coin().serial();
        let owner = *self.minted.get(&serial).ok_or(DowntimeError::UnknownCoin(serial))?;
        let requester_key = self.users.get(&requester).ok_or(DowntimeError::UnknownUser(requester))?;
        let bytes = TransferRequest::signed_bytes(&request.current, request.to);
        if !requester_key.verify(&self.group, &bytes, &request.holder_sig) {
            return Err(DowntimeError::BadSignature);
        }
        // First flavor: no broker state yet — verify the owner's signature
        // on the presented assignment. Second flavor: compare to stored
        // state (the broker already manages this coin).
        let (expected_holder, seq) = match self.downtime.get(&serial) {
            Some(state) => (state.holder, state.seq),
            None => {
                let owner_key = self.users.get(&owner).ok_or(DowntimeError::UnknownUser(owner))?;
                if !request.current.verify(&self.group, owner_key) {
                    return Err(DowntimeError::BadSignature);
                }
                (request.current.holder(), request.current.seq())
            }
        };
        if expected_holder != request.current.holder() || requester != expected_holder {
            return Err(DowntimeError::HolderMismatch { expected: expected_holder });
        }
        let new_seq = seq + 1;
        self.downtime.insert(serial, DowntimeState { holder: request.to, seq: new_seq });
        let new_bytes = Assignment::signed_bytes(request.current.coin(), request.to, new_seq);
        let sig = self.keys.sign(&self.group, &new_bytes, rng);
        Ok(Assignment::from_parts(request.current.coin().clone(), request.to, new_seq, sig))
    }

    /// Synchronization for a rejoining owner: drains the downtime state for
    /// that owner's coins as `(serial, holder, seq)` tuples.
    pub fn sync_for_owner(&mut self, owner: UserId) -> Vec<(SerialNumber, UserId, u64)> {
        let serials: Vec<SerialNumber> =
            self.downtime.keys().filter(|sn| self.minted.get(sn) == Some(&owner)).copied().collect();
        serials
            .into_iter()
            .map(|sn| {
                let state = self.downtime.remove(&sn).expect("key just listed");
                (sn, state.holder, state.seq)
            })
            .collect()
    }
}

//! PPay coin structures.

use whopay_crypto::dsa::{DsaPublicKey, DsaSignature};
use whopay_crypto::hashio::Transcript;
use whopay_num::SchnorrGroup;

use crate::user::UserId;

/// A PPay coin serial number (uniquely identifies a coin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SerialNumber(pub u64);

impl std::fmt::Display for SerialNumber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sn{}", self.0)
    }
}

/// The broker-signed base coin `C = {U, sn}skB`: owner identity and serial
/// number, in the clear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseCoin {
    owner: UserId,
    serial: SerialNumber,
    broker_sig: DsaSignature,
}

impl BaseCoin {
    /// Canonical bytes the broker signs.
    pub fn signed_bytes(owner: UserId, serial: SerialNumber) -> Vec<u8> {
        Transcript::new("ppay/coin/v1").u64(owner.0).u64(serial.0).finish().to_vec()
    }

    /// Assembles a coin from parts (used by the broker at mint time).
    pub fn from_parts(owner: UserId, serial: SerialNumber, broker_sig: DsaSignature) -> Self {
        BaseCoin { owner, serial, broker_sig }
    }

    /// The coin's owner — public in PPay, unlike WhoPay.
    pub fn owner(&self) -> UserId {
        self.owner
    }

    /// The serial number.
    pub fn serial(&self) -> SerialNumber {
        self.serial
    }

    /// Verifies the broker's mint signature.
    pub fn verify(&self, group: &SchnorrGroup, broker: &DsaPublicKey) -> bool {
        broker.verify(group, &Self::signed_bytes(self.owner, self.serial), &self.broker_sig)
    }
}

/// An owner-signed assignment `{C, H, seq}skU`: the coin, its current
/// holder (public!), and the anti-replay sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    coin: BaseCoin,
    holder: UserId,
    seq: u64,
    owner_sig: DsaSignature,
}

impl Assignment {
    /// Canonical bytes the owner signs.
    pub fn signed_bytes(coin: &BaseCoin, holder: UserId, seq: u64) -> Vec<u8> {
        Transcript::new("ppay/assignment/v1")
            .u64(coin.owner.0)
            .u64(coin.serial.0)
            .u64(holder.0)
            .u64(seq)
            .finish()
            .to_vec()
    }

    /// Assembles an assignment from parts (owner or broker side).
    pub fn from_parts(coin: BaseCoin, holder: UserId, seq: u64, owner_sig: DsaSignature) -> Self {
        Assignment { coin, holder, seq, owner_sig }
    }

    /// The underlying broker-signed coin.
    pub fn coin(&self) -> &BaseCoin {
        &self.coin
    }

    /// The current holder — in PPay everyone can read this.
    pub fn holder(&self) -> UserId {
        self.holder
    }

    /// The sequence number; transfers must strictly increase it.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Verifies the owner's signature over this assignment.
    pub fn verify(&self, group: &SchnorrGroup, owner_key: &DsaPublicKey) -> bool {
        owner_key.verify(group, &Self::signed_bytes(&self.coin, self.holder, self.seq), &self.owner_sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whopay_crypto::dsa::DsaKeyPair;
    use whopay_crypto::testing::{test_rng, tiny_group};

    #[test]
    fn base_coin_signature_binds_owner_and_serial() {
        let group = tiny_group();
        let mut rng = test_rng(1);
        let broker = DsaKeyPair::generate(group, &mut rng);
        let sig = broker.sign(group, &BaseCoin::signed_bytes(UserId(1), SerialNumber(7)), &mut rng);
        let coin = BaseCoin::from_parts(UserId(1), SerialNumber(7), sig.clone());
        assert!(coin.verify(group, broker.public()));

        // Re-binding the same signature to another owner fails.
        let forged = BaseCoin::from_parts(UserId(2), SerialNumber(7), sig);
        assert!(!forged.verify(group, broker.public()));
    }

    #[test]
    fn assignment_signature_binds_holder_and_seq() {
        let group = tiny_group();
        let mut rng = test_rng(2);
        let broker = DsaKeyPair::generate(group, &mut rng);
        let owner = DsaKeyPair::generate(group, &mut rng);
        let csig = broker.sign(group, &BaseCoin::signed_bytes(UserId(1), SerialNumber(9)), &mut rng);
        let coin = BaseCoin::from_parts(UserId(1), SerialNumber(9), csig);
        let asig = owner.sign(group, &Assignment::signed_bytes(&coin, UserId(2), 1), &mut rng);
        let assignment = Assignment::from_parts(coin.clone(), UserId(2), 1, asig.clone());
        assert!(assignment.verify(group, owner.public()));

        let replayed = Assignment::from_parts(coin.clone(), UserId(3), 1, asig.clone());
        assert!(!replayed.verify(group, owner.public()));
        let bumped = Assignment::from_parts(coin, UserId(2), 2, asig);
        assert!(!bumped.verify(group, owner.public()));
    }
}

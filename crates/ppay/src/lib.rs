#![warn(missing_docs)]

//! PPay (Yang & Garcia-Molina, CCS 2003): the baseline peer-to-peer
//! micropayment protocol that WhoPay extends.
//!
//! The WhoPay paper positions itself directly against PPay (§3.1): "PPay
//! is secure, fair and scalable, but provides no anonymity." This crate
//! implements PPay faithfully so benches and tests can compare the two
//! systems on the same substrates:
//!
//! * coins are `C = {U, sn}skB` — broker-signed (owner, serial number)
//!   pairs, so *ownership is public*;
//! * an issued coin is `{C, H, seq}skU` — the owner signs the holder's
//!   identity into the coin, so *holdership is public* too (this is the
//!   anonymity gap WhoPay closes);
//! * transfers route through the coin owner, who increments the sequence
//!   number and keeps the relinquishment proof;
//! * the downtime protocol lets the broker handle transfers of coins whose
//!   owner is offline, with state synchronized when the owner rejoins;
//! * double spending is detectable after the fact from the audit trail and
//!   attributable to a specific user.
//!
//! # Example
//!
//! ```
//! use whopay_crypto::testing;
//! use whopay_ppay::{Broker, User, UserId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let group = testing::tiny_group();
//! let mut rng = testing::test_rng(1);
//! let mut broker = Broker::new(group.clone(), &mut rng);
//!
//! let mut alice = User::new(UserId(1), group.clone(), &mut rng);
//! let mut bob = User::new(UserId(2), group.clone(), &mut rng);
//! broker.register(&alice);
//! broker.register(&bob);
//!
//! // Alice buys a coin and issues it to Bob; Bob deposits it.
//! let coin = broker.sell_coin(alice.id(), &mut rng);
//! alice.receive_purchased_coin(coin.clone(), &mut rng);
//! let issued = alice.issue(coin.serial(), bob.id(), &mut rng)?;
//! bob.receive_issued_coin(&broker, issued.clone())?;
//! let receipt = broker.deposit(bob.id(), issued, &mut rng)?;
//! assert_eq!(receipt.value, 1);
//! # Ok(())
//! # }
//! ```

mod broker;
mod coin;
mod user;

pub use broker::{Broker, DepositError, DepositReceipt, DowntimeError};
pub use coin::{Assignment, BaseCoin, SerialNumber};
pub use user::{TransferRequest, User, UserError, UserId};

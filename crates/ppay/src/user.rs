//! PPay peers: coin owners and holders.

use std::collections::HashMap;

use rand::Rng;
use whopay_crypto::dsa::{DsaKeyPair, DsaPublicKey};
use whopay_num::SchnorrGroup;

use crate::broker::Broker;
use crate::coin::{Assignment, BaseCoin, SerialNumber};

/// A PPay user identity (public in every PPay message — the system's
/// defining lack of anonymity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user{}", self.0)
    }
}

/// Errors from user-side protocol steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserError {
    /// The user does not own this coin.
    NotOwner(SerialNumber),
    /// The user does not hold this coin.
    NotHolder(SerialNumber),
    /// The transfer request's claimed holder does not match the owner's
    /// record — an attempted double spend or replay.
    HolderMismatch {
        /// Who the owner believes holds the coin.
        expected: UserId,
        /// Who claimed to hold it.
        claimed: UserId,
    },
    /// A signature failed to verify.
    BadSignature,
}

impl std::fmt::Display for UserError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UserError::NotOwner(sn) => write!(f, "not the owner of coin {sn}"),
            UserError::NotHolder(sn) => write!(f, "not the holder of coin {sn}"),
            UserError::HolderMismatch { expected, claimed } => {
                write!(f, "transfer from {claimed} but coin is held by {expected}")
            }
            UserError::BadSignature => f.write_str("signature verification failed"),
        }
    }
}

impl std::error::Error for UserError {}

/// Per-owned-coin state the owner maintains.
#[derive(Debug, Clone)]
struct OwnedCoinState {
    coin: BaseCoin,
    holder: UserId,
    seq: u64,
}

/// A transfer request `{W, CV}skV` the holder sends to the coin owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferRequest {
    /// The assignment proving the sender holds the coin.
    pub current: Assignment,
    /// The intended new holder.
    pub to: UserId,
    /// Holder's signature over (current, to).
    pub holder_sig: whopay_crypto::dsa::DsaSignature,
}

impl TransferRequest {
    /// Canonical bytes the holder signs.
    pub fn signed_bytes(current: &Assignment, to: UserId) -> Vec<u8> {
        whopay_crypto::hashio::Transcript::new("ppay/transfer-request/v1")
            .bytes(&Assignment::signed_bytes(current.coin(), current.holder(), current.seq()))
            .u64(to.0)
            .finish()
            .to_vec()
    }
}

/// A PPay peer: wallet of held coins, registry of owned coins, and the
/// audit trail of relinquishment proofs.
#[derive(Debug)]
pub struct User {
    id: UserId,
    group: SchnorrGroup,
    keys: DsaKeyPair,
    /// Coins this user owns (created for it by the broker).
    owned: HashMap<SerialNumber, OwnedCoinState>,
    /// Coins this user currently holds (can spend).
    wallet: HashMap<SerialNumber, Assignment>,
    /// Relinquishment proofs kept "in order to later prove that V has
    /// relinquished the holdership of the coin, in case of a dispute".
    audit_trail: Vec<TransferRequest>,
}

impl User {
    /// Creates a user with a fresh key pair.
    pub fn new<R: Rng + ?Sized>(id: UserId, group: SchnorrGroup, rng: &mut R) -> Self {
        let keys = DsaKeyPair::generate(&group, rng);
        User { id, group, keys, owned: HashMap::new(), wallet: HashMap::new(), audit_trail: Vec::new() }
    }

    /// This user's identity.
    pub fn id(&self) -> UserId {
        self.id
    }

    /// This user's public key (registered with the broker).
    pub fn public_key(&self) -> &DsaPublicKey {
        self.keys.public()
    }

    /// Serial numbers currently spendable from the wallet.
    pub fn held_coins(&self) -> Vec<SerialNumber> {
        self.wallet.keys().copied().collect()
    }

    /// Serial numbers of coins this user owns.
    pub fn owned_coins(&self) -> Vec<SerialNumber> {
        self.owned.keys().copied().collect()
    }

    /// Relinquishment proofs collected while managing transfers.
    pub fn audit_trail(&self) -> &[TransferRequest] {
        &self.audit_trail
    }

    /// Records a coin purchased from the broker: the user becomes both
    /// owner and holder. The seq-0 self-assignment is local bookkeeping;
    /// it is only sent out via [`User::issue`], which creates a fresh one.
    pub fn receive_purchased_coin<R: Rng + ?Sized>(&mut self, coin: BaseCoin, rng: &mut R) {
        debug_assert_eq!(coin.owner(), self.id);
        self.owned
            .insert(coin.serial(), OwnedCoinState { coin: coin.clone(), holder: self.id, seq: 0 });
        let sn = coin.serial();
        let bytes = Assignment::signed_bytes(&coin, self.id, 0);
        let sig = self.keys.sign(&self.group, &bytes, rng);
        self.wallet.insert(sn, Assignment::from_parts(coin, self.id, 0, sig));
    }

    /// Issues an owned, self-held coin to `payee` (the PPay "issue" step).
    ///
    /// # Errors
    ///
    /// [`UserError::NotOwner`] / [`UserError::NotHolder`] if this user
    /// cannot issue the coin.
    pub fn issue<R: Rng + ?Sized>(
        &mut self,
        serial: SerialNumber,
        payee: UserId,
        rng: &mut R,
    ) -> Result<Assignment, UserError> {
        let state = self.owned.get_mut(&serial).ok_or(UserError::NotOwner(serial))?;
        if state.holder != self.id {
            return Err(UserError::NotHolder(serial));
        }
        state.seq += 1;
        state.holder = payee;
        let bytes = Assignment::signed_bytes(&state.coin, payee, state.seq);
        let sig = self.keys.sign(&self.group, &bytes, rng);
        let assignment = Assignment::from_parts(state.coin.clone(), payee, state.seq, sig);
        self.wallet.remove(&serial);
        Ok(assignment)
    }

    /// Builds a signed transfer request for a held coin (sent to the coin
    /// owner, or to the broker if the owner is offline).
    ///
    /// # Errors
    ///
    /// [`UserError::NotHolder`] if the coin is not in the wallet.
    pub fn request_transfer<R: Rng + ?Sized>(
        &mut self,
        serial: SerialNumber,
        to: UserId,
        rng: &mut R,
    ) -> Result<TransferRequest, UserError> {
        let current = self.wallet.remove(&serial).ok_or(UserError::NotHolder(serial))?;
        let sig = self.keys.sign(&self.group, &TransferRequest::signed_bytes(&current, to), rng);
        Ok(TransferRequest { current, to, holder_sig: sig })
    }

    /// Owner-side transfer handling: verifies the request against the
    /// owner's holder record, increments the sequence number, and returns
    /// the new assignment for the payee.
    ///
    /// # Errors
    ///
    /// [`UserError::NotOwner`] for unknown coins,
    /// [`UserError::HolderMismatch`] when the claimed holder is stale (the
    /// double-spend signal), [`UserError::BadSignature`] for forgeries.
    pub fn handle_transfer<R: Rng + ?Sized>(
        &mut self,
        request: TransferRequest,
        requester_key: &DsaPublicKey,
        rng: &mut R,
    ) -> Result<Assignment, UserError> {
        let serial = request.current.coin().serial();
        let state = self.owned.get_mut(&serial).ok_or(UserError::NotOwner(serial))?;
        let claimed = request.current.holder();
        if state.holder != claimed {
            return Err(UserError::HolderMismatch { expected: state.holder, claimed });
        }
        let bytes = TransferRequest::signed_bytes(&request.current, request.to);
        if !requester_key.verify(&self.group, &bytes, &request.holder_sig) {
            return Err(UserError::BadSignature);
        }
        state.seq += 1;
        state.holder = request.to;
        let new_bytes = Assignment::signed_bytes(&state.coin, request.to, state.seq);
        let sig = self.keys.sign(&self.group, &new_bytes, rng);
        let assignment = Assignment::from_parts(state.coin.clone(), request.to, state.seq, sig);
        self.audit_trail.push(request);
        Ok(assignment)
    }

    /// Payee-side acceptance of an issued/transferred coin: verifies the
    /// owner's signature chain before adding it to the wallet.
    ///
    /// # Errors
    ///
    /// [`UserError::BadSignature`] if the coin or assignment fails
    /// verification.
    pub fn receive_issued_coin(
        &mut self,
        broker: &Broker,
        assignment: Assignment,
    ) -> Result<(), UserError> {
        if assignment.holder() != self.id {
            return Err(UserError::NotHolder(assignment.coin().serial()));
        }
        if !assignment.coin().verify(&self.group, broker.public_key()) {
            return Err(UserError::BadSignature);
        }
        // Assignments are owner-signed in normal operation, broker-signed
        // when they came through the downtime protocol.
        let owner_key = broker.user_key(assignment.coin().owner()).ok_or(UserError::BadSignature)?;
        let owner_ok = assignment.verify(&self.group, owner_key);
        let broker_ok = assignment.verify(&self.group, broker.public_key());
        if !owner_ok && !broker_ok {
            return Err(UserError::BadSignature);
        }
        self.wallet.insert(assignment.coin().serial(), assignment);
        Ok(())
    }

    /// Applies broker-held state on rejoin (the PPay downtime protocol's
    /// synchronization step): updates holder/seq records for owned coins
    /// the broker managed while this user was offline.
    pub fn sync_owned_coin(&mut self, serial: SerialNumber, holder: UserId, seq: u64) {
        if let Some(state) = self.owned.get_mut(&serial) {
            if seq > state.seq {
                state.seq = seq;
                state.holder = holder;
            }
        }
    }

    /// Signs arbitrary bytes (challenge–response helper for broker
    /// registration).
    pub fn sign_bytes<R: Rng + ?Sized>(
        &self,
        bytes: &[u8],
        rng: &mut R,
    ) -> whopay_crypto::dsa::DsaSignature {
        self.keys.sign(&self.group, bytes, rng)
    }
}

//! End-to-end PPay protocol tests: purchase → issue → transfer → deposit,
//! the downtime protocol, and fraud detection.

use whopay_crypto::testing::{test_rng, tiny_group};
use whopay_ppay::{Broker, DepositError, User, UserError, UserId};

struct World {
    broker: Broker,
    users: Vec<User>,
    rng: rand::rngs::StdRng,
}

fn world(n: usize, seed: u64) -> World {
    let group = tiny_group().clone();
    let mut rng = test_rng(seed);
    let mut broker = Broker::new(group.clone(), &mut rng);
    let users: Vec<User> =
        (0..n).map(|i| User::new(UserId(i as u64), group.clone(), &mut rng)).collect();
    for u in &users {
        broker.register(u);
    }
    World { broker, users, rng }
}

#[test]
fn full_coin_lifecycle() {
    let mut w = world(3, 1);
    // U purchases, issues to V; V transfers to W via U; W deposits.
    let coin = w.broker.sell_coin(UserId(0), &mut w.rng);
    let sn = coin.serial();
    w.users[0].receive_purchased_coin(coin, &mut w.rng);

    let issued = w.users[0].issue(sn, UserId(1), &mut w.rng).unwrap();
    w.users[1].receive_issued_coin(&w.broker, issued).unwrap();

    let req = w.users[1].request_transfer(sn, UserId(2), &mut w.rng).unwrap();
    let requester_key = w.users[1].public_key().clone();
    let transferred = w.users[0].handle_transfer(req, &requester_key, &mut w.rng).unwrap();
    assert_eq!(transferred.holder(), UserId(2));
    assert_eq!(transferred.seq(), 2, "seq strictly increases across issue+transfer");
    w.users[2].receive_issued_coin(&w.broker, transferred.clone()).unwrap();

    let receipt = w.broker.deposit(UserId(2), transferred, &mut w.rng).unwrap();
    assert_eq!(receipt.serial, sn);
}

#[test]
fn ppay_reveals_identities_everywhere() {
    // The anonymity gap WhoPay closes: owner and holder are in the clear.
    let mut w = world(2, 2);
    let coin = w.broker.sell_coin(UserId(0), &mut w.rng);
    let sn = coin.serial();
    w.users[0].receive_purchased_coin(coin, &mut w.rng);
    let issued = w.users[0].issue(sn, UserId(1), &mut w.rng).unwrap();
    assert_eq!(issued.coin().owner(), UserId(0), "payee learns the payer/owner");
    assert_eq!(issued.holder(), UserId(1), "owner learns the payee");
}

#[test]
fn stale_holder_transfer_is_rejected_by_owner() {
    // V transfers the coin to W, then tries to spend the same assignment
    // again — the owner's holder record catches it.
    let mut w = world(4, 3);
    let coin = w.broker.sell_coin(UserId(0), &mut w.rng);
    let sn = coin.serial();
    w.users[0].receive_purchased_coin(coin, &mut w.rng);
    let issued = w.users[0].issue(sn, UserId(1), &mut w.rng).unwrap();
    w.users[1].receive_issued_coin(&w.broker, issued.clone()).unwrap();

    let req1 = w.users[1].request_transfer(sn, UserId(2), &mut w.rng).unwrap();
    let key1 = w.users[1].public_key().clone();
    w.users[0].handle_transfer(req1, &key1, &mut w.rng).unwrap();

    // Double spend attempt: V re-presents the old assignment toward user 3.
    w.users[1].receive_issued_coin(&w.broker, issued).unwrap(); // V re-inserts stale state
    let req2 = w.users[1].request_transfer(sn, UserId(3), &mut w.rng).unwrap();
    let err = w.users[0].handle_transfer(req2, &key1, &mut w.rng).unwrap_err();
    assert_eq!(err, UserError::HolderMismatch { expected: UserId(2), claimed: UserId(1) });
}

#[test]
fn double_deposit_is_detected_and_attributed() {
    let mut w = world(3, 4);
    let coin = w.broker.sell_coin(UserId(0), &mut w.rng);
    let sn = coin.serial();
    w.users[0].receive_purchased_coin(coin, &mut w.rng);

    // The *owner* double-issues the same coin to two different payees —
    // the fraud only owners can commit in PPay.
    let issued1 = w.users[0].issue(sn, UserId(1), &mut w.rng).unwrap();
    w.users[1].receive_issued_coin(&w.broker, issued1.clone()).unwrap();
    // Fraudulent second issue: rebuild owner-side state by force.
    // (In the real system the owner just signs again; model that by a
    // second issue after manually resetting via sync.)
    w.users[0].sync_owned_coin(sn, UserId(0), 0); // no-op: seq only moves up
    let issued2_result = w.users[0].issue(sn, UserId(2), &mut w.rng);
    // The honest User type refuses (it knows it is no longer holder)…
    assert!(issued2_result.is_err());

    // …so emulate a dishonest owner by depositing the same assignment twice
    // from the holder side.
    let r1 = w.broker.deposit(UserId(1), issued1.clone(), &mut w.rng);
    assert!(r1.is_ok());
    let r2 = w.broker.deposit(UserId(1), issued1, &mut w.rng);
    assert_eq!(r2, Err(DepositError::DoubleSpend { owner: UserId(0) }));
    assert_eq!(w.broker.fraud_log(), &[(sn, UserId(0))]);
}

#[test]
fn deposit_by_non_holder_rejected() {
    let mut w = world(3, 5);
    let coin = w.broker.sell_coin(UserId(0), &mut w.rng);
    let sn = coin.serial();
    w.users[0].receive_purchased_coin(coin, &mut w.rng);
    let issued = w.users[0].issue(sn, UserId(1), &mut w.rng).unwrap();
    let err = w.broker.deposit(UserId(2), issued, &mut w.rng).unwrap_err();
    assert_eq!(err, DepositError::NotHolder { assigned: UserId(1) });
}

#[test]
fn downtime_transfer_and_owner_sync() {
    let mut w = world(4, 6);
    let coin = w.broker.sell_coin(UserId(0), &mut w.rng);
    let sn = coin.serial();
    w.users[0].receive_purchased_coin(coin, &mut w.rng);
    let issued = w.users[0].issue(sn, UserId(1), &mut w.rng).unwrap();
    w.users[1].receive_issued_coin(&w.broker, issued).unwrap();

    // Owner goes offline; V transfers to W via the broker (flavor 1: the
    // broker verifies the owner-signed assignment).
    let req = w.users[1].request_transfer(sn, UserId(2), &mut w.rng).unwrap();
    let a2 = w.broker.downtime_transfer(UserId(1), req, &mut w.rng).unwrap();
    assert_eq!(a2.holder(), UserId(2));
    w.users[2].receive_issued_coin(&w.broker, a2.clone()).unwrap();

    // W transfers to user 3 (flavor 2: the broker compares to its state).
    let req2 = w.users[2].request_transfer(sn, UserId(3), &mut w.rng).unwrap();
    let a3 = w.broker.downtime_transfer(UserId(2), req2, &mut w.rng).unwrap();
    assert_eq!(a3.holder(), UserId(3));
    assert!(a3.seq() > a2.seq());

    // Owner rejoins and synchronizes.
    let sync = w.broker.sync_for_owner(UserId(0));
    assert_eq!(sync.len(), 1);
    let (s, holder, seq) = sync[0];
    assert_eq!((s, holder), (sn, UserId(3)));
    w.users[0].sync_owned_coin(s, holder, seq);

    // After sync, the owner handles the next transfer with correct state.
    w.users[3].receive_issued_coin(&w.broker, a3).unwrap();
    let req3 = w.users[3].request_transfer(sn, UserId(1), &mut w.rng).unwrap();
    let key3 = w.users[3].public_key().clone();
    let a4 = w.users[0].handle_transfer(req3, &key3, &mut w.rng).unwrap();
    assert_eq!(a4.holder(), UserId(1));
}

#[test]
fn downtime_transfer_by_stale_holder_rejected() {
    let mut w = world(4, 7);
    let coin = w.broker.sell_coin(UserId(0), &mut w.rng);
    let sn = coin.serial();
    w.users[0].receive_purchased_coin(coin, &mut w.rng);
    let issued = w.users[0].issue(sn, UserId(1), &mut w.rng).unwrap();
    w.users[1].receive_issued_coin(&w.broker, issued.clone()).unwrap();

    let req = w.users[1].request_transfer(sn, UserId(2), &mut w.rng).unwrap();
    w.broker.downtime_transfer(UserId(1), req, &mut w.rng).unwrap();

    // Replay the old assignment through the broker.
    w.users[1].receive_issued_coin(&w.broker, issued).unwrap();
    let replay = w.users[1].request_transfer(sn, UserId(3), &mut w.rng).unwrap();
    let err = w.broker.downtime_transfer(UserId(1), replay, &mut w.rng).unwrap_err();
    assert!(matches!(err, whopay_ppay::DowntimeError::HolderMismatch { .. }));
}

#[test]
fn forged_transfer_request_rejected() {
    let mut w = world(3, 8);
    let coin = w.broker.sell_coin(UserId(0), &mut w.rng);
    let sn = coin.serial();
    w.users[0].receive_purchased_coin(coin, &mut w.rng);
    let issued = w.users[0].issue(sn, UserId(1), &mut w.rng).unwrap();
    w.users[1].receive_issued_coin(&w.broker, issued).unwrap();

    let req = w.users[1].request_transfer(sn, UserId(2), &mut w.rng).unwrap();
    // Present the request with the wrong requester key (user 2's).
    let wrong_key = w.users[2].public_key().clone();
    let err = w.users[0].handle_transfer(req, &wrong_key, &mut w.rng).unwrap_err();
    assert_eq!(err, UserError::BadSignature);
}

#[test]
fn audit_trail_records_relinquishments() {
    let mut w = world(3, 9);
    let coin = w.broker.sell_coin(UserId(0), &mut w.rng);
    let sn = coin.serial();
    w.users[0].receive_purchased_coin(coin, &mut w.rng);
    let issued = w.users[0].issue(sn, UserId(1), &mut w.rng).unwrap();
    w.users[1].receive_issued_coin(&w.broker, issued).unwrap();
    let req = w.users[1].request_transfer(sn, UserId(2), &mut w.rng).unwrap();
    let key1 = w.users[1].public_key().clone();
    w.users[0].handle_transfer(req, &key1, &mut w.rng).unwrap();
    assert_eq!(w.users[0].audit_trail().len(), 1);
    assert_eq!(w.users[0].audit_trail()[0].to, UserId(2));
}

//! The alternating-renewal on/off session process (peer churn).
//!
//! "Peers join and leave the system: online session lengths follow
//! exponential distribution with mean µ, and offline session lengths
//! follow exponential distribution with mean ν. … the availability of
//! peers can be roughly indicated by the value α = µ/(µ+ν)." (§6.1)

use rand::Rng;

use crate::dist::Exponential;
use crate::time::SimTime;

/// A peer's availability process: alternating exponential online and
/// offline sessions.
///
/// # Examples
///
/// ```
/// use whopay_sim::{churn::ChurnProcess, SimTime, sim_rng};
///
/// let mut rng = sim_rng(3);
/// let mut churn = ChurnProcess::start(
///     SimTime::from_hours(2), // µ
///     SimTime::from_hours(2), // ν
///     &mut rng,
/// );
/// assert!((churn.availability() - 0.5).abs() < 1e-9);
/// let first_toggle = churn.next_toggle();
/// assert!(first_toggle > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    online_len: Exponential,
    offline_len: Exponential,
    /// State that will hold *after* `next_toggle` fires.
    online: bool,
    next_toggle: SimTime,
}

impl ChurnProcess {
    /// Starts a peer in a random phase of its cycle: online with
    /// probability α, with the first toggle exponentially distributed.
    ///
    /// Starting "in steady state" avoids a transient where every peer is
    /// online at t = 0.
    pub fn start<R: Rng + ?Sized>(mu: SimTime, nu: SimTime, rng: &mut R) -> Self {
        let online_len = Exponential::from_mean(mu);
        let offline_len = Exponential::from_mean(nu);
        let alpha = mu.as_millis() as f64 / (mu.as_millis() + nu.as_millis()) as f64;
        let start_online =
            (rand::RngExt::random::<u64>(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < alpha;
        // Memorylessness: the residual session is exponential with the same
        // mean, so sampling a fresh session length is exact.
        let first =
            if start_online { online_len.sample_time(rng) } else { offline_len.sample_time(rng) };
        ChurnProcess { online_len, offline_len, online: start_online, next_toggle: first }
    }

    /// Whether the peer is online *now* (before the pending toggle).
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Long-run availability α = µ/(µ+ν).
    pub fn availability(&self) -> f64 {
        let mu = self.online_len.mean().as_millis() as f64;
        let nu = self.offline_len.mean().as_millis() as f64;
        mu / (mu + nu)
    }

    /// Absolute time of the next state change.
    pub fn next_toggle(&self) -> SimTime {
        self.next_toggle
    }

    /// Applies the pending toggle (the caller pops it from its event queue
    /// at `next_toggle()`), samples the following session, and returns the
    /// new online state.
    pub fn toggle<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.online = !self.online;
        let next_len = if self.online {
            self.online_len.sample_time(rng)
        } else {
            self.offline_len.sample_time(rng)
        };
        self.next_toggle += next_len;
        self.online
    }

    /// Advances the process to absolute time `t`, applying every toggle
    /// that fires at or before `t`, and returns the online state at `t`.
    ///
    /// This is the driver for coarse-grained harnesses (chaos/downtime
    /// tests) that sample availability at operation times instead of
    /// processing an event queue.
    pub fn advance_to<R: Rng + ?Sized>(&mut self, t: SimTime, rng: &mut R) -> bool {
        while self.next_toggle <= t {
            self.toggle(rng);
        }
        self.online
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_rng;

    /// Simulate one peer for a long horizon and measure time-averaged
    /// availability.
    fn measured_availability(mu_h: u64, nu_h: u64, seed: u64) -> f64 {
        let mut rng = sim_rng(seed);
        let mut churn =
            ChurnProcess::start(SimTime::from_hours(mu_h), SimTime::from_hours(nu_h), &mut rng);
        let horizon = SimTime::from_days(2000);
        let mut online_ms = 0u64;
        let mut last = SimTime::ZERO;
        loop {
            let toggle_at = churn.next_toggle().min(horizon);
            if churn.is_online() {
                online_ms += (toggle_at - last).as_millis();
            }
            last = toggle_at;
            if churn.next_toggle() >= horizon {
                break;
            }
            churn.toggle(&mut rng);
        }
        online_ms as f64 / horizon.as_millis() as f64
    }

    #[test]
    fn fifty_percent_availability() {
        let a = measured_availability(2, 2, 1);
        assert!((a - 0.5).abs() < 0.03, "availability {a}");
    }

    #[test]
    fn high_availability() {
        let a = measured_availability(8, 2, 2);
        assert!((a - 0.8).abs() < 0.03, "availability {a}");
    }

    #[test]
    fn low_availability() {
        let a = measured_availability(1, 4, 3);
        assert!((a - 0.2).abs() < 0.03, "availability {a}");
    }

    #[test]
    fn toggles_alternate() {
        let mut rng = sim_rng(4);
        let mut churn = ChurnProcess::start(SimTime::from_hours(1), SimTime::from_hours(1), &mut rng);
        let mut prev = churn.is_online();
        let mut prev_time = SimTime::ZERO;
        for _ in 0..100 {
            let t = churn.next_toggle();
            assert!(t > prev_time, "toggle times strictly increase");
            prev_time = t;
            let now = churn.toggle(&mut rng);
            assert_ne!(now, prev, "state alternates");
            prev = now;
        }
    }

    #[test]
    fn advance_to_matches_manual_toggling() {
        let mut rng_a = sim_rng(6);
        let mut rng_b = sim_rng(6);
        let mut a = ChurnProcess::start(SimTime::from_hours(1), SimTime::from_hours(3), &mut rng_a);
        let mut b = ChurnProcess::start(SimTime::from_hours(1), SimTime::from_hours(3), &mut rng_b);
        for step in 1..200u64 {
            let t = SimTime::from_mins(step * 37);
            let online = a.advance_to(t, &mut rng_a);
            while b.next_toggle() <= t {
                b.toggle(&mut rng_b);
            }
            assert_eq!(online, b.is_online(), "divergence at step {step}");
            assert_eq!(a.next_toggle(), b.next_toggle());
        }
    }

    #[test]
    fn steady_state_start_mixes_phases() {
        let mut rng = sim_rng(5);
        let online_starts = (0..1000)
            .filter(|_| {
                ChurnProcess::start(SimTime::from_hours(2), SimTime::from_hours(2), &mut rng)
                    .is_online()
            })
            .count();
        assert!((400..600).contains(&online_starts), "online starts {online_starts}");
    }
}

//! Random-variate samplers used by the paper's workload model.
//!
//! The setup (§6.1, Table 1): "online session lengths follow exponential
//! distribution with mean µ, and offline session lengths follow exponential
//! distribution with mean ν … candidate payment events arrive as an
//! independent Poisson process with rate 1 payment per 5 minutes".
//!
//! A Poisson process is sampled by exponential inter-arrival times, so the
//! exponential sampler is the only primitive needed.

use rand::Rng;

use crate::time::SimTime;

/// Samples a uniform double in the open interval `(0, 1)`.
fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        // 53 random mantissa bits → uniform in [0, 1).
        let u = (rand::RngExt::random::<u64>(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

/// An exponential distribution parameterized by its *mean* (the paper
/// always specifies means: µ, ν, 5-minute payment inter-arrivals).
///
/// # Examples
///
/// ```
/// use whopay_sim::{dist::Exponential, SimTime, sim_rng};
///
/// let session = Exponential::from_mean(SimTime::from_hours(2));
/// let mut rng = sim_rng(7);
/// let sample = session.sample_time(&mut rng);
/// assert!(sample > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean_ms: f64,
}

impl Exponential {
    /// Exponential with the given mean duration.
    ///
    /// # Panics
    ///
    /// Panics if the mean is zero.
    pub fn from_mean(mean: SimTime) -> Self {
        assert!(mean > SimTime::ZERO, "exponential mean must be positive");
        Exponential { mean_ms: mean.as_millis() as f64 }
    }

    /// The distribution mean.
    pub fn mean(&self) -> SimTime {
        SimTime::from_millis(self.mean_ms as u64)
    }

    /// Draws a duration (at least 1 ms, so events never collide with their
    /// own scheduling instant).
    pub fn sample_time<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        let x = -self.mean_ms * open_unit(rng).ln();
        SimTime::from_millis((x.round() as u64).max(1))
    }
}

/// A Poisson arrival process with a fixed mean inter-arrival time; yields
/// successive absolute arrival instants.
///
/// # Examples
///
/// ```
/// use whopay_sim::{dist::PoissonProcess, SimTime, sim_rng};
///
/// let mut arrivals = PoissonProcess::new(SimTime::from_mins(5));
/// let mut rng = sim_rng(1);
/// let t1 = arrivals.next_arrival(SimTime::ZERO, &mut rng);
/// let t2 = arrivals.next_arrival(t1, &mut rng);
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PoissonProcess {
    inter_arrival: Exponential,
}

impl PoissonProcess {
    /// A process with the given mean inter-arrival time.
    pub fn new(mean_inter_arrival: SimTime) -> Self {
        PoissonProcess { inter_arrival: Exponential::from_mean(mean_inter_arrival) }
    }

    /// The next arrival strictly after `now`.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> SimTime {
        now + self.inter_arrival.sample_time(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_rng;

    #[test]
    fn exponential_mean_is_close() {
        let mean = SimTime::from_hours(2);
        let exp = Exponential::from_mean(mean);
        let mut rng = sim_rng(42);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| exp.sample_time(&mut rng).as_millis()).sum();
        let sample_mean = total as f64 / n as f64;
        let expect = mean.as_millis() as f64;
        // Standard error of the mean for exp is mean/sqrt(n) ≈ 0.7%; allow 5%.
        assert!(
            (sample_mean - expect).abs() / expect < 0.05,
            "sample mean {sample_mean} vs expected {expect}"
        );
    }

    #[test]
    fn exponential_is_memoryless_ish() {
        // P(X > 2m) should be about e^-2 ≈ 0.135.
        let mean = SimTime::from_mins(5);
        let exp = Exponential::from_mean(mean);
        let mut rng = sim_rng(43);
        let n = 20_000;
        let over = (0..n).filter(|_| exp.sample_time(&mut rng) > SimTime::from_mins(10)).count();
        let frac = over as f64 / n as f64;
        assert!((frac - 0.1353).abs() < 0.02, "tail fraction {frac}");
    }

    #[test]
    fn poisson_arrivals_are_strictly_increasing() {
        let mut p = PoissonProcess::new(SimTime::from_mins(5));
        let mut rng = sim_rng(44);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            let next = p.next_arrival(t, &mut rng);
            assert!(next > t);
            t = next;
        }
    }

    #[test]
    fn poisson_rate_matches_mean() {
        // With 5-minute inter-arrivals, 10 simulated days hold ~2880 events.
        let mut p = PoissonProcess::new(SimTime::from_mins(5));
        let mut rng = sim_rng(45);
        let horizon = SimTime::from_days(10);
        let mut t = SimTime::ZERO;
        let mut count = 0u64;
        loop {
            t = p.next_arrival(t, &mut rng);
            if t > horizon {
                break;
            }
            count += 1;
        }
        assert!((count as f64 - 2880.0).abs() < 200.0, "count {count}");
    }

    #[test]
    fn deterministic_given_seed() {
        let exp = Exponential::from_mean(SimTime::from_mins(5));
        let a: Vec<u64> = {
            let mut rng = sim_rng(7);
            (0..10).map(|_| exp.sample_time(&mut rng).as_millis()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = sim_rng(7);
            (0..10).map(|_| exp.sample_time(&mut rng).as_millis()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_rejected() {
        Exponential::from_mean(SimTime::ZERO);
    }
}

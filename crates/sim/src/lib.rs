#![warn(missing_docs)]

//! A small, deterministic discrete-event simulation engine.
//!
//! The WhoPay paper's evaluation (§6) is a discrete-event simulation:
//! peers alternate exponentially distributed online/offline sessions,
//! candidate payments arrive as Poisson processes, and coins are renewed
//! on a fixed period over a 10-simulated-day horizon. This crate provides
//! the engine those experiments run on:
//!
//! * [`SimTime`] — integer milliseconds of simulated time (no floating
//!   point in the clock, so runs are exactly reproducible);
//! * [`EventQueue`] — a monotonic priority queue of timestamped events
//!   with deterministic FIFO tie-breaking;
//! * [`dist`] — exponential and Poisson-process samplers built on a seeded
//!   RNG;
//! * [`churn`] — the alternating-renewal on/off session process the paper
//!   uses to model peer availability;
//! * [`lifecycle`] — the full discovery → pending → connected →
//!   churn-out peer life-cycle state machine generalizing [`churn`].
//!
//! [`EventQueue`] is a calendar queue (O(1) amortized operations);
//! [`BinaryHeapQueue`] keeps the original heap scheduler as the
//! differential-testing oracle.
//!
//! # Example
//!
//! ```
//! use whopay_sim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(5), "world");
//! q.schedule(SimTime::from_secs(1), "hello");
//! let (t1, e1) = q.pop().unwrap();
//! assert_eq!((t1, e1), (SimTime::from_secs(1), "hello"));
//! assert_eq!(q.pop().unwrap().1, "world");
//! assert!(q.pop().is_none());
//! ```

pub mod churn;
pub mod dist;
pub mod lifecycle;
mod queue;
mod time;

pub use lifecycle::{LifecycleConfig, LifecycleProcess, LifecycleState};
pub use queue::{BinaryHeapQueue, EventQueue, SchedKey};
pub use time::SimTime;

/// Deterministic RNG for simulations: a seeded `StdRng`.
pub fn sim_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

//! The peer life-cycle state machine: discovery → pending → connected →
//! churn-out.
//!
//! The paper's availability model ([`crate::churn`]) is a two-state
//! on/off process. Peer life-cycle simulators of real deployments show
//! that the *path back online* matters for topology dynamics: a
//! returning peer first rediscovers the overlay (bootstrap lookups),
//! then sits pending (handshake/registration with the broker) before it
//! is connected and can take part in payments. This module models that
//! full cycle:
//!
//! ```text
//! Discovery → Pending → Connected → ChurnOut → Discovery → …
//! ```
//!
//! with exponentially distributed dwell times per state. Setting the
//! discovery and/or pending means to zero *skips* those states
//! entirely — no dwell, no RNG draw — so the degenerate configuration
//! [`LifecycleConfig::on_off`] consumes exactly the same random-number
//! stream as [`crate::churn::ChurnProcess`] and reproduces the paper's
//! two-state model bit-for-bit (the loadsim regression suites rely on
//! this).
//!
//! Only [`LifecycleState::Connected`] peers participate in payments;
//! churned-out (and discovering/pending) peers neither send nor receive.

use rand::Rng;

use crate::dist::Exponential;
use crate::time::SimTime;

/// One phase of a peer's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LifecycleState {
    /// Bootstrapping: looking up the overlay, not yet reachable.
    Discovery = 0,
    /// Handshaking/registering with the broker; reachable but not yet
    /// serving or receiving payments.
    Pending = 1,
    /// Fully online: can pay, be paid, serve transfers and renewals.
    Connected = 2,
    /// Offline (churned out of the overlay).
    ChurnOut = 3,
}

impl LifecycleState {
    /// All states, in cycle order.
    pub const ALL: [LifecycleState; 4] = [
        LifecycleState::Discovery,
        LifecycleState::Pending,
        LifecycleState::Connected,
        LifecycleState::ChurnOut,
    ];

    /// Whether a peer in this state takes part in payments.
    pub fn is_connected(self) -> bool {
        self == LifecycleState::Connected
    }

    /// Whether `self → to` is a legal transition under *some*
    /// configuration: the cycle edge to the next state, or an edge that
    /// skips zero-mean discovery/pending states. Self-loops and
    /// backward edges are never legal.
    pub fn can_transition(self, to: LifecycleState) -> bool {
        use LifecycleState::*;
        matches!(
            (self, to),
            (Discovery, Pending)
                | (Discovery, Connected) // pending skipped
                | (Pending, Connected)
                | (Connected, ChurnOut)
                | (ChurnOut, Discovery)
                | (ChurnOut, Pending)   // discovery skipped
                | (ChurnOut, Connected) // both skipped (the on/off model)
        )
    }
}

/// Mean dwell times per state; zero discovery/pending means skip the
/// state (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct LifecycleConfig {
    discovery: Option<Exponential>,
    pending: Option<Exponential>,
    connected: Exponential,
    churned: Exponential,
    /// Raw means, kept for [`LifecycleConfig::availability`].
    means_ms: [u64; 4],
}

impl LifecycleConfig {
    /// The full four-state cycle. Zero `discovery`/`pending` means skip
    /// those states.
    ///
    /// # Panics
    ///
    /// Panics if `connected` (µ) or `churned` (ν) is zero.
    pub fn new(discovery: SimTime, pending: SimTime, connected: SimTime, churned: SimTime) -> Self {
        let opt = |t: SimTime| (t > SimTime::ZERO).then(|| Exponential::from_mean(t));
        LifecycleConfig {
            discovery: opt(discovery),
            pending: opt(pending),
            connected: Exponential::from_mean(connected),
            churned: Exponential::from_mean(churned),
            means_ms: [
                discovery.as_millis(),
                pending.as_millis(),
                connected.as_millis(),
                churned.as_millis(),
            ],
        }
    }

    /// The paper's two-state on/off model: discovery and pending
    /// skipped, online sessions of mean `mu`, offline of mean `nu`.
    /// Draw-for-draw compatible with [`crate::churn::ChurnProcess`].
    pub fn on_off(mu: SimTime, nu: SimTime) -> Self {
        Self::new(SimTime::ZERO, SimTime::ZERO, mu, nu)
    }

    /// Long-run fraction of time spent connected:
    /// µ / (µ + ν + discovery + pending).
    pub fn availability(&self) -> f64 {
        let total: u64 = self.means_ms.iter().sum();
        self.means_ms[LifecycleState::Connected as usize] as f64 / total as f64
    }

    /// The state entered after `from`, skipping zero-mean states.
    pub fn next_state(&self, from: LifecycleState) -> LifecycleState {
        match from {
            LifecycleState::Discovery => {
                if self.pending.is_some() {
                    LifecycleState::Pending
                } else {
                    LifecycleState::Connected
                }
            }
            LifecycleState::Pending => LifecycleState::Connected,
            LifecycleState::Connected => LifecycleState::ChurnOut,
            LifecycleState::ChurnOut => {
                if self.discovery.is_some() {
                    LifecycleState::Discovery
                } else if self.pending.is_some() {
                    LifecycleState::Pending
                } else {
                    LifecycleState::Connected
                }
            }
        }
    }

    /// Samples the dwell time for `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is a skipped (zero-mean) state — skipped states
    /// are never entered, so asking for their dwell is a logic error.
    pub fn sample_dwell<R: Rng + ?Sized>(&self, state: LifecycleState, rng: &mut R) -> SimTime {
        let dist = match state {
            LifecycleState::Discovery => self.discovery.as_ref().expect("discovery state is skipped"),
            LifecycleState::Pending => self.pending.as_ref().expect("pending state is skipped"),
            LifecycleState::Connected => &self.connected,
            LifecycleState::ChurnOut => &self.churned,
        };
        dist.sample_time(rng)
    }

    /// Samples a starting state and first-transition time, mirroring
    /// [`crate::churn::ChurnProcess::start`]: connected with probability
    /// α, churned out otherwise, with the residual dwell sampled fresh
    /// (exact, by memorylessness). Exactly two draws — one uniform, one
    /// exponential — the same stream `ChurnProcess::start` consumes.
    pub fn sample_start<R: Rng + ?Sized>(&self, rng: &mut R) -> (LifecycleState, SimTime) {
        let alpha = self.start_alpha();
        let connected =
            (rand::RngExt::random::<u64>(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < alpha;
        let state = if connected { LifecycleState::Connected } else { LifecycleState::ChurnOut };
        (state, self.sample_dwell(state, rng))
    }

    /// The probability a peer starts connected: α = µ/(µ+ν), matching
    /// the two-state steady state. (Discovery/pending dwell is charged
    /// to the following cycles; starting peers are split between the
    /// two long-dwell states so the transient is negligible when the
    /// connecting path is short relative to sessions.)
    fn start_alpha(&self) -> f64 {
        let mu = self.means_ms[LifecycleState::Connected as usize] as f64;
        let nu = self.means_ms[LifecycleState::ChurnOut as usize] as f64;
        mu / (mu + nu)
    }
}

/// A self-contained peer life-cycle process: current state plus the
/// absolute time of the next transition, advanced by [`step`].
///
/// This is the object-per-peer API mirroring
/// [`crate::churn::ChurnProcess`]; the arena-based load simulator
/// stores only the state byte per peer and drives [`LifecycleConfig`]
/// directly.
///
/// [`step`]: LifecycleProcess::step
///
/// # Examples
///
/// ```
/// use whopay_sim::{LifecycleConfig, LifecycleProcess, SimTime, sim_rng};
///
/// let cfg = LifecycleConfig::new(
///     SimTime::from_secs(30), // discovery
///     SimTime::from_secs(10), // pending
///     SimTime::from_hours(2), // connected (µ)
///     SimTime::from_hours(2), // churned out (ν)
/// );
/// let mut rng = sim_rng(3);
/// let mut peer = LifecycleProcess::start(cfg, &mut rng);
/// let from = peer.state();
/// let to = peer.step(&mut rng);
/// assert!(from.can_transition(to));
/// ```
#[derive(Debug, Clone)]
pub struct LifecycleProcess {
    config: LifecycleConfig,
    state: LifecycleState,
    next_transition: SimTime,
}

impl LifecycleProcess {
    /// Starts a peer in a random phase (see
    /// [`LifecycleConfig::sample_start`]).
    pub fn start<R: Rng + ?Sized>(config: LifecycleConfig, rng: &mut R) -> Self {
        let (state, first) = config.sample_start(rng);
        LifecycleProcess { config, state, next_transition: first }
    }

    /// The current state (before the pending transition).
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// Whether the peer takes part in payments *now*.
    pub fn is_connected(&self) -> bool {
        self.state.is_connected()
    }

    /// Long-run availability (see [`LifecycleConfig::availability`]).
    pub fn availability(&self) -> f64 {
        self.config.availability()
    }

    /// Absolute time of the next state change.
    pub fn next_transition(&self) -> SimTime {
        self.next_transition
    }

    /// Applies the pending transition (the caller pops it from its
    /// event queue at [`next_transition`]), samples the new state's
    /// dwell, and returns the new state.
    ///
    /// [`next_transition`]: LifecycleProcess::next_transition
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> LifecycleState {
        let next = self.config.next_state(self.state);
        debug_assert!(self.state.can_transition(next), "{:?} -> {next:?}", self.state);
        self.state = next;
        self.next_transition += self.config.sample_dwell(next, rng);
        next
    }

    /// Advances to absolute time `t`, applying every transition due at
    /// or before `t`, and returns the state at `t`.
    pub fn advance_to<R: Rng + ?Sized>(&mut self, t: SimTime, rng: &mut R) -> LifecycleState {
        while self.next_transition <= t {
            self.step(rng);
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnProcess;
    use crate::sim_rng;

    fn full_config() -> LifecycleConfig {
        LifecycleConfig::new(
            SimTime::from_secs(30),
            SimTime::from_secs(10),
            SimTime::from_hours(2),
            SimTime::from_hours(2),
        )
    }

    #[test]
    fn transition_matrix_has_no_illegal_edges() {
        // Every observed (from, to) pair across many steps and several
        // configurations must be in the legal edge set, and in the full
        // configuration must follow the strict 4-cycle.
        let configs = [
            full_config(),
            LifecycleConfig::on_off(SimTime::from_hours(1), SimTime::from_hours(4)),
            LifecycleConfig::new(
                SimTime::ZERO,
                SimTime::from_secs(5),
                SimTime::from_hours(1),
                SimTime::from_hours(1),
            ),
            LifecycleConfig::new(
                SimTime::from_secs(5),
                SimTime::ZERO,
                SimTime::from_hours(1),
                SimTime::from_hours(1),
            ),
        ];
        for (ci, cfg) in configs.iter().enumerate() {
            let mut rng = sim_rng(77 + ci as u64);
            let mut p = LifecycleProcess::start(*cfg, &mut rng);
            for _ in 0..500 {
                let from = p.state();
                let to = p.step(&mut rng);
                assert!(from.can_transition(to), "config {ci}: illegal {from:?} -> {to:?}");
                assert_ne!(from, to, "self-loops are never legal");
            }
        }
        // The full config walks the strict cycle.
        let mut rng = sim_rng(99);
        let mut p = LifecycleProcess::start(full_config(), &mut rng);
        for _ in 0..100 {
            let from = p.state();
            let expect = match from {
                LifecycleState::Discovery => LifecycleState::Pending,
                LifecycleState::Pending => LifecycleState::Connected,
                LifecycleState::Connected => LifecycleState::ChurnOut,
                LifecycleState::ChurnOut => LifecycleState::Discovery,
            };
            assert_eq!(p.step(&mut rng), expect);
        }
    }

    #[test]
    fn illegal_edges_rejected_by_matrix() {
        use LifecycleState::*;
        for s in LifecycleState::ALL {
            assert!(!s.can_transition(s), "{s:?} self-loop");
        }
        for (from, to) in [
            (Connected, Discovery),
            (Connected, Pending),
            (Pending, Discovery),
            (Pending, ChurnOut),
            (Discovery, ChurnOut),
            (ChurnOut, ChurnOut),
        ] {
            assert!(!from.can_transition(to), "{from:?} -> {to:?} must be illegal");
        }
    }

    #[test]
    fn on_off_config_matches_churn_process_draw_for_draw() {
        let (mu, nu) = (SimTime::from_hours(2), SimTime::from_mins(45));
        for seed in 0..20u64 {
            let mut rng_a = sim_rng(seed);
            let mut rng_b = sim_rng(seed);
            let mut churn = ChurnProcess::start(mu, nu, &mut rng_a);
            let mut cycle = LifecycleProcess::start(LifecycleConfig::on_off(mu, nu), &mut rng_b);
            assert_eq!(churn.is_online(), cycle.is_connected(), "seed {seed}");
            assert_eq!(churn.next_toggle(), cycle.next_transition(), "seed {seed}");
            for step in 0..200 {
                let online = churn.toggle(&mut rng_a);
                let state = cycle.step(&mut rng_b);
                assert_eq!(online, state.is_connected(), "seed {seed} step {step}");
                assert_eq!(churn.next_toggle(), cycle.next_transition(), "seed {seed} step {step}");
            }
        }
    }

    #[test]
    fn availability_accounts_for_connecting_path() {
        let cfg = full_config();
        let expect = SimTime::from_hours(2).as_millis() as f64
            / (SimTime::from_hours(4) + SimTime::from_secs(40)).as_millis() as f64;
        assert!((cfg.availability() - expect).abs() < 1e-12);
        let onoff = LifecycleConfig::on_off(SimTime::from_hours(2), SimTime::from_hours(2));
        assert!((onoff.availability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measured_connected_fraction_matches_availability() {
        let cfg = LifecycleConfig::new(
            SimTime::from_mins(10),
            SimTime::from_mins(5),
            SimTime::from_hours(2),
            SimTime::from_hours(1),
        );
        let mut rng = sim_rng(11);
        let mut p = LifecycleProcess::start(cfg, &mut rng);
        let horizon = SimTime::from_days(2000);
        let mut connected_ms = 0u64;
        let mut last = SimTime::ZERO;
        while p.next_transition() < horizon {
            let at = p.next_transition();
            if p.is_connected() {
                connected_ms += (at - last).as_millis();
            }
            last = at;
            p.step(&mut rng);
        }
        if p.is_connected() {
            connected_ms += (horizon - last).as_millis();
        }
        let measured = connected_ms as f64 / horizon.as_millis() as f64;
        assert!((measured - cfg.availability()).abs() < 0.03, "measured {measured}");
    }

    #[test]
    fn advance_to_matches_manual_stepping() {
        let mut rng_a = sim_rng(6);
        let mut rng_b = sim_rng(6);
        let mut a = LifecycleProcess::start(full_config(), &mut rng_a);
        let mut b = LifecycleProcess::start(full_config(), &mut rng_b);
        for step in 1..200u64 {
            let t = SimTime::from_mins(step * 37);
            let state = a.advance_to(t, &mut rng_a);
            while b.next_transition() <= t {
                b.step(&mut rng_b);
            }
            assert_eq!(state, b.state(), "divergence at step {step}");
            assert_eq!(a.next_transition(), b.next_transition());
        }
    }
}

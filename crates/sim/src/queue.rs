//! The event queue: a calendar-queue scheduler with a binary-heap
//! reference implementation.
//!
//! [`EventQueue`] is the production scheduler: a *calendar queue*
//! (R. Brown, CACM 1988) with O(1) amortized insert and pop. Events are
//! hashed into rotating day-buckets by timestamp; events more than one
//! "year" (bucket count × bucket width) ahead wait in an overflow heap
//! until the clock comes within a year of them. The bucket count doubles
//! and halves with occupancy and the bucket width is re-estimated from
//! the live event spread on every resize, so the average bucket holds
//! O(1) events across six orders of magnitude of queue size.
//!
//! [`BinaryHeapQueue`] is the original `BinaryHeap`-backed scheduler,
//! kept as the differential-testing oracle: `tests/queue_equiv.rs`
//! proptests that both produce identical pop sequences (including
//! simultaneous events) for random schedules.
//!
//! Both queues order events by the same [`SchedKey`] — strictly by
//! `(time, seq)`, so simultaneous events pop in the order they were
//! scheduled and runs replay deterministically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// The total order both schedulers pop in: time first, then insertion
/// sequence (FIFO among simultaneous events).
///
/// The sequence number is a `u64` that increments once per scheduled
/// event and must never wrap: at 10⁹ events/sec it would take ~580 years
/// to overflow, so wrapping is treated as a logic error (debug-asserted
/// at the increment) rather than handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedKey {
    /// Event timestamp.
    pub time: SimTime,
    /// Insertion sequence number (unique per queue).
    pub seq: u64,
}

impl PartialOrd for SchedKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SchedKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// An entry in either queue: a key plus its payload.
struct Entry<E> {
    key: SchedKey,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other.key.cmp(&self.key)
    }
}

/// Clock, sequence counter, and diagnostics shared by both queue
/// implementations.
#[derive(Debug)]
struct QueueCore {
    now: SimTime,
    next_seq: u64,
    scheduled: u64,
}

impl QueueCore {
    fn new() -> Self {
        QueueCore { now: SimTime::ZERO, next_seq: 0, scheduled: 0 }
    }

    /// Validates `at`, then mints the next [`SchedKey`].
    fn admit(&mut self, at: SimTime) -> SchedKey {
        assert!(at >= self.now, "scheduling into the past: {at} < {now}", now = self.now);
        debug_assert!(self.next_seq != u64::MAX, "event sequence counter exhausted");
        let key = SchedKey { time: at, seq: self.next_seq };
        self.next_seq += 1;
        self.scheduled += 1;
        key
    }

    fn advance(&mut self, to: SimTime) {
        debug_assert!(to >= self.now);
        self.now = to;
    }
}

/// The original binary-heap scheduler, kept as the differential oracle
/// for [`EventQueue`] (see the module docs). Same API, same
/// deterministic `(time, seq)` pop order, O(log n) operations.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    core: QueueCore,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for BinaryHeapQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinaryHeapQueue")
            .field("now", &self.core.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        BinaryHeapQueue { heap: BinaryHeap::new(), core: QueueCore::new() }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (diagnostics).
    pub fn scheduled_count(&self) -> u64 {
        self.core.scheduled
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — events cannot be
    /// scheduled in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let key = self.core.admit(at);
        self.heap.push(Entry { key, event });
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.core.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.core.advance(entry.key.time);
        Some((entry.key.time, entry.event))
    }

    /// Pops the earliest event only if it is at or before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(entry) if entry.key.time <= horizon => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.time)
    }
}

/// Initial (and minimum) bucket count; always a power of two so the
/// bucket index is a mask, not a modulo.
const MIN_BUCKETS: usize = 4;

/// A calendar-queue scheduler: a priority queue of timestamped events
/// with a monotonic clock, O(1) amortized insert and pop.
///
/// `pop` returns events in nondecreasing `(time, seq)` order — exactly
/// the order [`BinaryHeapQueue`] produces — and advances
/// [`EventQueue::now`]; scheduling an event before `now` is a logic
/// error and panics, which catches causality bugs at their source.
///
/// # Structure
///
/// * `buckets[i]` holds events whose timestamp hashes to day `i` of the
///   current year (`bucket = (t / width) & mask`), each bucket sorted
///   descending so its minimum is the last element;
/// * events further than one year ahead of `now` wait in `overflow` (a
///   min-heap) and migrate into buckets as the clock approaches them;
/// * on every factor-of-two occupancy change the bucket array resizes
///   and the width is re-estimated from the live event spread, keeping
///   mean occupancy O(1).
pub struct EventQueue<E> {
    /// Each bucket sorted descending by [`SchedKey`]; min at the tail.
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket width in milliseconds (always ≥ 1).
    width: u64,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: usize,
    /// `width * buckets.len()`: the calendar year in milliseconds.
    year: u64,
    /// Events ≥ one year ahead of `now`, as a min-heap.
    overflow: BinaryHeap<Entry<E>>,
    /// Events currently in `buckets` (excludes `overflow`).
    in_buckets: usize,
    core: QueueCore,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.core.now)
            .field("pending", &self.len())
            .field("buckets", &self.buckets.len())
            .field("width_ms", &self.width)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1,
            mask: MIN_BUCKETS - 1,
            year: MIN_BUCKETS as u64,
            overflow: BinaryHeap::new(),
            in_buckets: 0,
            core: QueueCore::new(),
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled (diagnostics).
    pub fn scheduled_count(&self) -> u64 {
        self.core.scheduled
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — events cannot be
    /// scheduled in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let key = self.core.admit(at);
        self.insert(Entry { key, event });
        let n = self.len();
        if n > 2 * self.buckets.len()
            || (n < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS)
        {
            self.resize(n);
        }
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.core.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.remove_min()?;
        self.core.advance(entry.key.time);
        let n = self.len();
        if n > 0 && n < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            self.resize(n);
        }
        Some((entry.key.time, entry.event))
    }

    /// Pops the earliest event only if it is at or before `horizon`.
    ///
    /// Use this to run a simulation to a fixed end time while leaving
    /// later events (e.g. pending renewals) unprocessed.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next event, if any.
    ///
    /// Overflow events migrate into buckets lazily (only on
    /// [`Self::pop`]), so after the clock jumps an overflow event can
    /// sit within the current year while a later arrival lands in a
    /// bucket — the answer is the minimum over both stores.
    pub fn peek_time(&self) -> Option<SimTime> {
        let bucketed = (self.in_buckets > 0).then(|| self.locate_min().time);
        let overflow = self.overflow.peek().map(|e| e.key.time);
        match (bucketed, overflow) {
            (Some(b), Some(o)) => Some(b.min(o)),
            (b, o) => b.or(o),
        }
    }

    /// Places an entry into its bucket or the overflow year.
    ///
    /// Invariant: every bucketed entry satisfies `time < insert_now +
    /// year ≤ now + year` (the clock only advances), so a one-year lap
    /// starting at `now`'s bucket always covers every bucketed event.
    fn insert(&mut self, entry: Entry<E>) {
        let t = entry.key.time.as_millis();
        if t - self.core.now.as_millis() >= self.year {
            self.overflow.push(entry);
            return;
        }
        let bucket = &mut self.buckets[(t / self.width) as usize & self.mask];
        // Sorted descending: find where this key slots so the tail stays
        // the minimum. Most inserts land near the front (later times).
        let pos = bucket.partition_point(|e| e.key > entry.key);
        bucket.insert(pos, entry);
        self.in_buckets += 1;
    }

    /// Moves overflow events that are now within one year of the clock
    /// into their buckets.
    fn migrate_overflow(&mut self) {
        let now = self.core.now.as_millis();
        while let Some(head) = self.overflow.peek() {
            if head.key.time.as_millis() - now >= self.year {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry");
            let t = entry.key.time.as_millis();
            let bucket = &mut self.buckets[(t / self.width) as usize & self.mask];
            let pos = bucket.partition_point(|e| e.key > entry.key);
            bucket.insert(pos, entry);
            self.in_buckets += 1;
        }
    }

    /// The bucket holding the minimum bucketed entry. Requires
    /// `in_buckets > 0`.
    ///
    /// Scans one calendar lap from `now`'s bucket: window `k` covers
    /// timestamps `[(start+k)·width, (start+k+1)·width)`; the first
    /// bucket whose minimum falls inside its window holds the global
    /// minimum (windows are disjoint and increasing, and the insert
    /// invariant guarantees every bucketed event lies within one lap).
    fn locate_min_bucket(&self) -> usize {
        let start = self.core.now.as_millis() / self.width;
        for k in 0..=self.buckets.len() as u64 {
            let idx = (start + k) as usize & self.mask;
            if let Some(tail) = self.buckets[idx].last() {
                if tail.key.time.as_millis() < (start + k + 1) * self.width {
                    return idx;
                }
            }
        }
        unreachable!("bucketed event outside its calendar year");
    }

    /// The minimum bucketed key. Requires `in_buckets > 0`.
    fn locate_min(&self) -> SchedKey {
        self.buckets[self.locate_min_bucket()].last().expect("nonempty bucket").key
    }

    /// Removes and returns the overall minimum entry.
    fn remove_min(&mut self) -> Option<Entry<E>> {
        self.migrate_overflow();
        if self.in_buckets > 0 {
            // Bucketed events are all < now + year; overflow events are
            // all ≥ now + year, so the bucket minimum wins outright.
            let idx = self.locate_min_bucket();
            self.in_buckets -= 1;
            self.buckets[idx].pop()
        } else {
            self.overflow.pop()
        }
    }

    /// Rebuilds the calendar for the current occupancy: bucket count is
    /// the next power of two ≥ `n`, width the mean gap between live
    /// events (estimated from their spread), and every event re-hashed.
    /// O(n), amortized O(1) per operation by the factor-of-two trigger.
    fn resize(&mut self, n: usize) {
        let count = n.next_power_of_two().max(MIN_BUCKETS);
        let mut drained: Vec<Entry<E>> = Vec::with_capacity(n);
        for bucket in &mut self.buckets {
            drained.append(bucket);
        }
        drained.extend(self.overflow.drain());

        // Deterministic width estimate in the style of Brown's original:
        // twice the mean gap between the soonest events, so near-term
        // buckets hold O(1) events even when a long tail (e.g. renewals
        // days out) stretches the overall spread. Far-tail events simply
        // ride the overflow year. Simultaneous bursts degenerate to the
        // uniform-spread estimate, then to width 1.
        const SAMPLE: usize = 32;
        let mut soonest: Vec<u64> = Vec::with_capacity(SAMPLE);
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for e in &drained {
            let t = e.key.time.as_millis();
            lo = lo.min(t);
            hi = hi.max(t);
            match soonest.binary_search(&t) {
                Ok(pos) | Err(pos) if pos < SAMPLE => {
                    if soonest.len() == SAMPLE {
                        soonest.pop();
                    }
                    soonest.insert(pos, t);
                }
                _ => {}
            }
        }
        let head_spread = soonest.last().unwrap() - soonest[0];
        self.width = if head_spread > 0 {
            (2 * head_spread / soonest.len() as u64).max(1)
        } else {
            ((hi - lo) / n as u64).max(1)
        };
        self.mask = count - 1;
        self.year = self.width.saturating_mul(count as u64);
        if self.buckets.len() != count {
            self.buckets.resize_with(count, Vec::new);
        }
        self.in_buckets = 0;
        for entry in drained {
            self.insert(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn heap_queue_scheduling_into_the_past_panics() {
        let mut q = BinaryHeapQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(10), 'b');
        assert_eq!(q.pop_until(SimTime::from_secs(5)).map(|(_, e)| e), Some('a'));
        assert_eq!(q.pop_until(SimTime::from_secs(5)), None);
        assert_eq!(q.len(), 1, "later event stays queued");
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), 'x');
        q.pop();
        q.schedule_in(SimTime::from_secs(3), 'y');
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn far_future_events_ride_the_overflow_year() {
        let mut q = EventQueue::new();
        // Tight cluster now, one event years of bucket-widths away.
        for i in 0..8u64 {
            q.schedule(SimTime::from_millis(i), i);
        }
        q.schedule(SimTime::from_days(400), 99);
        let mut order = Vec::new();
        while let Some((_, e)) = q.pop() {
            order.push(e);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7, 99]);
    }

    #[test]
    fn grows_and_shrinks_through_resizes() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_millis(i * 37 % 50_000), i);
        }
        assert!(q.buckets.len() >= 4096, "grew with occupancy: {}", q.buckets.len());
        let mut last = SimTime::ZERO;
        let mut popped = 0u64;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
        }
        assert_eq!(popped, 10_000);
    }

    #[test]
    fn sched_key_orders_by_time_then_seq() {
        let a = SchedKey { time: SimTime::from_secs(1), seq: 9 };
        let b = SchedKey { time: SimTime::from_secs(2), seq: 0 };
        let c = SchedKey { time: SimTime::from_secs(1), seq: 10 };
        assert!(a < b && a < c && c < b);
    }
}

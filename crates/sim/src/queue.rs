//! The event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the heap: ordered by time, then by insertion sequence so
/// that simultaneous events pop in the order they were scheduled
/// (deterministic replay).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with a monotonic clock.
///
/// `pop` returns events in nondecreasing time order and advances
/// [`EventQueue::now`]; scheduling an event before `now` is a logic error
/// and panics, which catches causality bugs at their source.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue").field("now", &self.now).field("pending", &self.heap.len()).finish()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), now: SimTime::ZERO, next_seq: 0, scheduled: 0 }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (diagnostics).
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — events cannot be
    /// scheduled in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "scheduling into the past: {at} < {now}", now = self.now);
        self.heap.push(Entry { time: at, seq: self.next_seq, event });
        self.next_seq += 1;
        self.scheduled += 1;
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Pops the earliest event only if it is at or before `horizon`.
    ///
    /// Use this to run a simulation to a fixed end time while leaving
    /// later events (e.g. pending renewals) unprocessed.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(entry) if entry.time <= horizon => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(10), 'b');
        assert_eq!(q.pop_until(SimTime::from_secs(5)).map(|(_, e)| e), Some('a'));
        assert_eq!(q.pop_until(SimTime::from_secs(5)), None);
        assert_eq!(q.len(), 1, "later event stays queued");
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), 'x');
        q.pop();
        q.schedule_in(SimTime::from_secs(3), 'y');
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }
}

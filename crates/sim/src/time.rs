//! Integer simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in whole milliseconds from the
/// simulation epoch.
///
/// Millisecond resolution keeps the clock integral (bit-for-bit
/// reproducible runs) while being far finer than any interval in the
/// paper's setup (the shortest is the 5-minute payment inter-arrival
/// mean).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000)
    }

    /// From whole days.
    pub const fn from_days(d: u64) -> Self {
        SimTime(d * 86_400_000)
    }

    /// From fractional hours (rounded to the nearest millisecond).
    pub fn from_hours_f64(h: f64) -> Self {
        SimTime((h * 3_600_000.0).round() as u64)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional hours since the epoch.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics on underflow in debug builds, like integer subtraction.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        let (d, rem) = (ms / 86_400_000, ms % 86_400_000);
        let (h, rem) = (rem / 3_600_000, rem % 3_600_000);
        let (m, rem) = (rem / 60_000, rem % 60_000);
        let s = rem as f64 / 1000.0;
        if d > 0 {
            write!(f, "{d}d{h:02}h{m:02}m{s:05.2}s")
        } else {
            write!(f, "{h:02}h{m:02}m{s:05.2}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
    }

    #[test]
    fn fractional_hours_round_trip() {
        let t = SimTime::from_hours_f64(1.5);
        assert_eq!(t, SimTime::from_mins(90));
        assert!((t.as_hours_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(3);
        assert_eq!(a + b, SimTime::from_secs(8));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert!(b < a);
    }

    #[test]
    fn display_formats_days() {
        let t = SimTime::from_days(2) + SimTime::from_hours(3) + SimTime::from_mins(4);
        assert_eq!(t.to_string(), "2d03h04m00.00s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "00h00m01.50s");
    }
}

use whopay_sim::{EventQueue, SimTime};

#[test]
fn peek_after_overflow_pop() {
    let mut q = EventQueue::new();
    // year = 4ms initially (4 buckets * width 1)
    q.schedule(SimTime::from_millis(100), 'a'); // overflow
    q.schedule(SimTime::from_millis(102), 'b'); // overflow
    assert_eq!(q.pop(), Some((SimTime::from_millis(100), 'a'))); // clock jumps to 100
                                                                 // 103 - 100 = 3 < year(4) -> bucketed; 'b' at 102 still in overflow
    q.schedule(SimTime::from_millis(103), 'c');
    assert_eq!(q.peek_time(), Some(SimTime::from_millis(102)), "peek must see 'b'");
    // pop_until at horizon 102 must deliver 'b'
    assert_eq!(q.pop_until(SimTime::from_millis(102)), Some((SimTime::from_millis(102), 'b')));
}

//! Property-based tests for the discrete-event engine.

use proptest::prelude::*;
use whopay_sim::{sim_rng, EventQueue, SimTime};

proptest! {
    #[test]
    fn events_pop_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn ties_break_in_insertion_order(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_millis(t), i);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_never_returns_later_events(times in proptest::collection::vec(0u64..1000, 1..100), horizon in 0u64..1000) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_millis(t), t);
        }
        let horizon = SimTime::from_millis(horizon);
        let mut popped = 0usize;
        while let Some((t, _)) = q.pop_until(horizon) {
            prop_assert!(t <= horizon);
            popped += 1;
        }
        let expected = times.iter().filter(|&&t| SimTime::from_millis(t) <= horizon).count();
        prop_assert_eq!(popped, expected);
    }

    #[test]
    fn exponential_samples_are_positive_and_deterministic(seed in any::<u64>(), mean_mins in 1u64..600) {
        use whopay_sim::dist::Exponential;
        let dist = Exponential::from_mean(SimTime::from_mins(mean_mins));
        let a: Vec<u64> = {
            let mut rng = sim_rng(seed);
            (0..20).map(|_| dist.sample_time(&mut rng).as_millis()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = sim_rng(seed);
            (0..20).map(|_| dist.sample_time(&mut rng).as_millis()).collect()
        };
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&ms| ms >= 1));
    }

    #[test]
    fn churn_alternates_and_advances(seed in any::<u64>(), mu_m in 1u64..600, nu_m in 1u64..600) {
        use whopay_sim::churn::ChurnProcess;
        let mut rng = sim_rng(seed);
        let mut churn = ChurnProcess::start(SimTime::from_mins(mu_m), SimTime::from_mins(nu_m), &mut rng);
        let mut prev_state = churn.is_online();
        let mut prev_time = SimTime::ZERO;
        for _ in 0..50 {
            let t = churn.next_toggle();
            prop_assert!(t > prev_time);
            let now = churn.toggle(&mut rng);
            prop_assert_ne!(now, prev_state);
            prev_state = now;
            prev_time = t;
        }
    }

    #[test]
    fn sim_time_units_compose(h in 0u64..10_000) {
        prop_assert_eq!(SimTime::from_hours(h), SimTime::from_mins(h * 60));
        prop_assert_eq!(SimTime::from_hours(h).as_hours_f64(), h as f64);
    }
}

//! Differential tests: the calendar-queue [`EventQueue`] must produce
//! exactly the pop sequence of the [`BinaryHeapQueue`] oracle — same
//! `(time, seq)` total order, same FIFO tie-breaks — for random
//! schedules, including interleaved schedule/pop traffic and bursts of
//! simultaneous events.

use proptest::prelude::*;
use whopay_sim::{sim_rng, BinaryHeapQueue, EventQueue, SimTime};

/// Replays `script` against both queues in lockstep, comparing every
/// observable: popped (time, payload), clock, lengths, peeked times.
///
/// Script steps: `Schedule(delay_ms)` (relative to the current clock, so
/// it is always legal) and `Pop`.
#[derive(Debug, Clone, Copy)]
enum Step {
    Schedule(u64),
    Pop,
}

fn replay(steps: &[Step]) {
    let mut cal = EventQueue::new();
    let mut heap = BinaryHeapQueue::new();
    let mut payload = 0u64;
    for (i, step) in steps.iter().enumerate() {
        match *step {
            Step::Schedule(delay) => {
                let d = SimTime::from_millis(delay);
                cal.schedule_in(d, payload);
                heap.schedule_in(d, payload);
                payload += 1;
            }
            Step::Pop => {
                assert_eq!(cal.pop(), heap.pop(), "pop at step {i}");
            }
        }
        // Peek after *every* step: a pop can jump the clock far enough
        // that an overflow event enters the current year, and the next
        // schedule may bucket a later event — the peek must still see
        // the overflow minimum (the `peek_bug` regression).
        assert_eq!(cal.peek_time(), heap.peek_time(), "peek at step {i}");
        assert_eq!(cal.now(), heap.now(), "clock at step {i}");
        assert_eq!(cal.len(), heap.len(), "len at step {i}");
        assert_eq!(cal.scheduled_count(), heap.scheduled_count());
    }
    // Drain whatever is left: full order equivalence.
    loop {
        let (a, b) = (cal.pop(), heap.pop());
        assert_eq!(a, b, "drain");
        if a.is_none() {
            break;
        }
    }
}

proptest! {
    #[test]
    fn random_schedules_pop_identically(
        delays in proptest::collection::vec(0u64..500_000, 1..300),
    ) {
        let steps: Vec<Step> = delays.into_iter().map(Step::Schedule).collect();
        replay(&steps);
    }

    #[test]
    fn interleaved_schedule_and_pop_stay_in_lockstep(
        ops in proptest::collection::vec(0u64..1_000_000, 10..400),
    ) {
        // Derive a mixed script deterministically from the input: low
        // bits choose the action, high bits the delay. Clamp delays to a
        // few scales so resizes and the overflow year both trigger.
        let steps: Vec<Step> = ops
            .iter()
            .map(|&v| {
                if v % 3 == 0 {
                    Step::Pop
                } else if v % 7 == 0 {
                    Step::Schedule((v >> 3) * 1000) // far future: overflow year
                } else {
                    Step::Schedule((v >> 3) % 5_000)
                }
            })
            .collect();
        replay(&steps);
    }

    #[test]
    fn simultaneous_bursts_break_ties_fifo(
        burst in 2usize..60,
        t in 0u64..10_000,
        extra in proptest::collection::vec(0u64..10_000, 0..40),
    ) {
        let mut steps: Vec<Step> = Vec::new();
        // A burst of identical timestamps among scattered events.
        for &e in &extra {
            steps.push(Step::Schedule(e));
        }
        for _ in 0..burst {
            steps.push(Step::Schedule(t));
        }
        replay(&steps);
    }
}

/// Exponential inter-arrival traffic shaped like the load simulator's
/// (many short payment gaps, occasional multi-day renewals), driven to
/// full drain.
#[test]
fn loadsim_shaped_traffic_pops_identically() {
    use rand::RngExt;
    let mut rng = sim_rng(0xCA1E);
    let mut steps = Vec::new();
    for i in 0..5_000u64 {
        steps.push(match i % 11 {
            0 => Step::Pop,
            1 => Step::Schedule(259_200_000), // a 3-day renewal
            _ => Step::Schedule(rng.random_range(0..600_000)),
        });
    }
    replay(&steps);
}

/// The calendar queue keeps the heap's causality guard: scheduling
/// before `now` still panics after the clock has advanced.
#[test]
#[should_panic(expected = "scheduling into the past")]
fn calendar_queue_still_panics_on_past_scheduling() {
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_secs(10), ());
    q.pop();
    q.schedule(SimTime::from_secs(9), ());
}

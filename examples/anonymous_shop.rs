//! Issuer anonymity via coin shops (§5.2, approach 2) plus the PayWord
//! micropayment credit window (§7).
//!
//! Coin issue is only semi-anonymous: the coin names its owner. Coin
//! shops fix this — "peers do not own, and hence never issue coins. Peers
//! spend coins only using the transfer procedure, which is anonymous."
//! Here a shop stocks coins from the broker; anonymous buyers purchase
//! through the issue procedure (group-signed, identity never revealed)
//! and then pay each other by pure transfers. On top, two peers run a
//! PayWord credit window so that sub-coin micropayments aggregate into a
//! single coin settlement.
//!
//! Run with: `cargo run --release --example anonymous_shop`

use whopay::core::micropay::{MicropayReceiver, MicropaySender};
use whopay::core::{Broker, CoinShop, Judge, Peer, PeerId, SystemParams, Timestamp};
use whopay::crypto::testing;

fn main() {
    let mut rng = testing::test_rng(42);
    let params = SystemParams::new(testing::tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);

    let mk_peer = |id: u64, judge: &mut Judge, broker: &mut Broker, rng: &mut rand::rngs::StdRng| {
        let gk = judge.enroll(PeerId(id), rng);
        let p = Peer::new(
            PeerId(id),
            params.clone(),
            broker.public_key().clone(),
            judge.public_key().clone(),
            gk,
            rng,
        );
        broker.register_peer(PeerId(id), p.public_key().clone());
        p
    };

    // The shop is an ordinary (registered, non-anonymous) peer in the
    // coin-issuing business; Alice and Bob want anonymity.
    let shop_peer = mk_peer(100, &mut judge, &mut broker, &mut rng);
    let mut alice = mk_peer(1, &mut judge, &mut broker, &mut rng);
    let mut bob = mk_peer(2, &mut judge, &mut broker, &mut rng);
    let mut shop = CoinShop::new(shop_peer, 1);

    let now = Timestamp(0);
    shop.stock_up(&mut broker, 5, now, &mut rng).expect("stocking");
    println!("shop stocked {} coins from the broker (fee {}/coin)\n", shop.stock(), shop.fee());

    // Alice buys two coins anonymously: her invite is group-signed, so the
    // shop serves her without ever learning PeerId(1).
    let mut alice_coins = Vec::new();
    for _ in 0..2 {
        let (invite, session) = alice.begin_receive(&mut rng);
        let (grant, fee) = shop.sell_coin(&invite, now, &mut rng).expect("sale");
        let coin = alice.accept_grant(grant, session, now).expect("coin verifies");
        alice_coins.push(coin);
        println!("alice bought {coin} anonymously (fee {fee})");
    }
    println!("shop earnings so far: {}\n", shop.earnings());

    // Alice pays Bob by *transfer* through the shop (the coins' owner):
    // fully anonymous on both sides.
    let coin = alice_coins[0];
    let (invite, session) = bob.begin_receive(&mut rng);
    let treq = alice.request_transfer(coin, &invite, &mut rng).expect("transfer request");
    let grant = shop.peer.handle_transfer(treq, now, &mut rng).expect("transfer via shop");
    bob.accept_grant(grant, session, now).expect("bob verifies");
    alice.complete_transfer(coin);
    println!("alice paid bob one coin by anonymous transfer via the shop");

    // Micropayments: Alice streams 100 sub-coin payments to Bob through a
    // PayWord window with a 50-unit threshold; each threshold crossing is
    // settled with one real WhoPay coin.
    let gk_alice = judge.enroll(PeerId(1), &mut rng); // fresh window credential
    let (mut window, commitment) =
        MicropaySender::open(params.group(), judge.public_key(), &gk_alice, 100, 10, &mut rng);
    let mut bob_window = MicropayReceiver::accept(params.group(), judge.public_key(), &commitment, 50)
        .expect("commitment verifies");
    println!("\npayword window open: capacity {}, settle every 50 units", window.remaining());

    let mut settlements = 0;
    for tick in 1..=100u64 {
        let pw = window.pay(1).expect("within capacity");
        bob_window.receive(pw).expect("payword verifies");
        if bob_window.settlement_due() {
            // Settle with a real coin: alice transfers her second shop
            // coin to bob.
            let coin = alice_coins[1];
            if alice.held_coins().contains(&coin) {
                let (invite, session) = bob.begin_receive(&mut rng);
                let treq = alice.request_transfer(coin, &invite, &mut rng).unwrap();
                let grant = shop.peer.handle_transfer(treq, now.plus(tick), &mut rng).unwrap();
                bob.accept_grant(grant, session, now.plus(tick)).unwrap();
                alice.complete_transfer(coin);
            }
            bob_window.mark_settled().unwrap();
            settlements += 1;
            println!("  tick {tick}: threshold reached → settled with a WhoPay transfer");
        }
    }
    println!(
        "\n100 micropayments aggregated into {settlements} real settlements; \
         bob holds {} coin(s)",
        bob.held_coins().len()
    );
    assert_eq!(settlements, 2);
}

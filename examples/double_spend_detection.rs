//! Real-time double-spending detection (§5.1), end to end.
//!
//! A dishonest coin owner tries to spend the same coin twice. The public
//! binding list — a Chord DHT where only the coin key (or the broker) can
//! write each coin's record — catches it twice over:
//!
//! 1. the *payee check*: the second payee refuses payment because the
//!    public binding does not match the grant it was offered;
//! 2. the *holder monitor*: the honest holder is notified the moment its
//!    coin's public binding moves, and reports the conflicting bindings
//!    (self-incriminating evidence only the owner could have signed).
//!
//! Run with: `cargo run --release --example double_spend_detection`

use whopay::core::{dsd, Broker, Judge, Peer, PeerId, PurchaseMode, SystemParams, Timestamp};
use whopay::crypto::dsa::DsaKeyPair;
use whopay::crypto::testing;
use whopay::dht::{Dht, DhtConfig, RingId, SignedRecord, Writer};

fn main() {
    let mut rng = testing::test_rng(1337);
    let params = SystemParams::new(testing::tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);

    let mut peers: Vec<Peer> = (0..3u64)
        .map(|i| {
            let gk = judge.enroll(PeerId(i), &mut rng);
            let p = Peer::new(
                PeerId(i),
                params.clone(),
                broker.public_key().clone(),
                judge.public_key().clone(),
                gk,
                &mut rng,
            );
            broker.register_peer(PeerId(i), p.public_key().clone());
            p
        })
        .collect();

    // The trusted DHT infrastructure: 16 nodes, 3x replication.
    let mut dht = Dht::new(params.group().clone(), broker.public_key().clone(), DhtConfig::default());
    for _ in 0..16 {
        dht.join(RingId::random(&mut rng));
    }
    let entry = dht.node_ids()[0];
    println!("DHT ready: {} nodes, replication 3\n", dht.node_count());

    let now = Timestamp(0);

    // Mallory (peer 0) buys a coin and publishes its initial binding.
    let (req, pending) = peers[0].create_purchase_request(PurchaseMode::Identified, &mut rng);
    let minted = broker.handle_purchase(&req, &mut rng).unwrap();
    let coin = peers[0].complete_purchase(minted, pending, now, &mut rng).unwrap();
    dsd::publish_owner_binding(&peers[0], coin, &mut dht, entry, &mut rng).unwrap();
    println!("mallory owns {coin}; initial binding published");

    // She issues it to honest Bob (peer 1), publishing faithfully — Bob
    // verifies the public binding before accepting, then monitors it.
    let (invite, session) = peers[1].begin_receive(&mut rng);
    let grant = peers[0].issue_coin(coin, &invite, now, &mut rng).unwrap();
    dsd::publish_owner_binding(&peers[0], coin, &mut dht, entry, &mut rng).unwrap();
    dsd::verify_grant_published(&mut dht, entry, &grant).expect("public binding matches");
    let held_seq = grant.binding.seq();
    let coin_pk = grant.minted.coin_pk().clone();
    peers[1].accept_grant(grant, session, now).unwrap();

    let mut monitor = dsd::HoldingMonitor::new();
    monitor.watch(&mut dht, coin, &coin_pk, held_seq);
    println!("bob accepted the coin (seq {held_seq}) and is monitoring its public binding\n");

    // Mallory now double-spends: she signs a *conflicting* binding for a
    // fabricated holder key (she knows the coin's private key, so the DHT
    // must accept her write) hoping to pay Carol with the same coin.
    let fake_holder = DsaKeyPair::generate(params.group(), &mut rng);
    let conflicting = {
        let owned = peers[0].owned_coin(&coin).unwrap();
        let mut value = whopay::core::codec::Writer::new();
        value.int(fake_holder.public().element()).u64(held_seq + 1).u64(999_999);
        let value = value.finish();
        let msg = SignedRecord::signed_bytes(&coin_pk, &value, held_seq + 1, Writer::Subject);
        SignedRecord {
            subject: coin_pk.clone(),
            value,
            version: held_seq + 1,
            writer: Writer::Subject,
            signature: owned.coin_keys.sign(params.group(), &msg, &mut rng),
        }
    };
    dht.put(entry, conflicting).unwrap();
    println!("mallory published a conflicting binding (seq {})…", held_seq + 1);

    // Detection 1: Bob's monitor fires immediately.
    let alarms = monitor.poll(&mut dht);
    assert_eq!(alarms.len(), 1);
    println!(
        "ALARM: bob's coin {} moved from seq {} to seq {} while he holds it",
        alarms[0].coin, alarms[0].held_seq, alarms[0].observed_seq
    );

    // Detection 2: Carol, offered the *original* grant replayed by some
    // accomplice, checks the public list and refuses.
    let (invite_c, _session_c) = peers[2].begin_receive(&mut rng);
    let replay = peers[0].owned_coin(&coin).unwrap();
    let _ = (&invite_c, replay);
    let stale_check = dsd::read_public_state(&mut dht, entry, &coin_pk).unwrap();
    assert!(stale_check.seq > held_seq);
    println!(
        "carol's payee check sees seq {} ≠ offered seq {} → payment refused",
        stale_check.seq, held_seq
    );

    // Bob reports the fraud; the broker records it and the judge can be
    // called in. Mallory's coin ownership is on the coin itself, so she is
    // identified without any group-signature opening.
    broker.report_fraud(coin, format!("public binding conflict at seq {}", held_seq + 1), Vec::new());
    println!("\nfraud recorded against the coin's owner: {:?}", peers[0].id());
    assert_eq!(broker.fraud_cases().len(), 1);

    // Negative control: a non-owner cannot tamper with the public list at
    // all — the DHT's access control rejects the write.
    let mallory2 = DsaKeyPair::generate(params.group(), &mut rng);
    let forged = {
        let mut value = whopay::core::codec::Writer::new();
        value.int(mallory2.public().element()).u64(held_seq + 2).u64(999_999);
        let value = value.finish();
        let msg = SignedRecord::signed_bytes(&coin_pk, &value, held_seq + 2, Writer::Subject);
        SignedRecord {
            subject: coin_pk.clone(),
            value,
            version: held_seq + 2,
            writer: Writer::Subject,
            signature: mallory2.sign(params.group(), &msg, &mut rng),
        }
    };
    let err = dht.put(entry, forged).unwrap_err();
    println!("outsider write to the coin's binding rejected by the DHT: {err}");
    println!("\nDHT stats: {:?}", dht.stats());
}

//! The paper's motivating scenario (§1): a pay-per-download file sharing
//! system, "where a virtual payment system is used to encourage fair
//! sharing of resources among peers and discourage free riders".
//!
//! Twenty peers trade file downloads for coins over several simulated
//! hours: downloaders pay one coin per file, preferring anonymous
//! transfers; uploaders accumulate coins and occasionally cash out. The
//! example prints the resulting economy and shows that the broker handled
//! only a small fraction of the activity — WhoPay's scalability story in
//! miniature.
//!
//! Run with: `cargo run --release --example file_sharing_market`

use rand::RngExt;
use whopay::core::{Broker, CoinId, Judge, Peer, PeerId, PurchaseMode, SystemParams, Timestamp};
use whopay::crypto::testing;

const PEERS: usize = 20;
const DOWNLOADS: usize = 150;

fn main() {
    let mut rng = testing::test_rng(77);
    let params = SystemParams::new(testing::tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);

    let mut peers: Vec<Peer> = (0..PEERS as u64)
        .map(|i| {
            let gk = judge.enroll(PeerId(i), &mut rng);
            let p = Peer::new(
                PeerId(i),
                params.clone(),
                broker.public_key().clone(),
                judge.public_key().clone(),
                gk,
                &mut rng,
            );
            broker.register_peer(PeerId(i), p.public_key().clone());
            p
        })
        .collect();

    let mut now = Timestamp(0);
    let mut transfers = 0u64;
    let mut issues = 0u64;
    let mut downloads_served = [0u32; PEERS];
    let mut earnings = [0u64; PEERS];

    for round in 0..DOWNLOADS {
        now = now.plus(60); // one download a minute
        let downloader = rng.random_range(0..PEERS);
        let uploader = loop {
            let u = rng.random_range(0..PEERS);
            if u != downloader {
                break u;
            }
        };

        // The uploader opens an anonymous receive session for this sale.
        let (invite, session) = peers[uploader].begin_receive(&mut rng);

        // Pay with a held coin (anonymous transfer) when possible;
        // otherwise issue an owned coin; otherwise buy one first.
        let grant = if let Some(&coin) = peers[downloader].held_coins().first() {
            let owner = owner_of(&peers, coin);
            let treq = peers[downloader].request_transfer(coin, &invite, &mut rng).unwrap();
            let g = peers[owner].handle_transfer(treq, now, &mut rng).unwrap();
            peers[downloader].complete_transfer(coin);
            transfers += 1;
            g
        } else {
            let coin = match peers[downloader].unissued_coins().first() {
                Some(&c) => c,
                None => {
                    let (req, pending) =
                        peers[downloader].create_purchase_request(PurchaseMode::Identified, &mut rng);
                    let minted = broker.handle_purchase(&req, &mut rng).unwrap();
                    peers[downloader].complete_purchase(minted, pending, now, &mut rng).unwrap()
                }
            };
            issues += 1;
            peers[downloader].issue_coin(coin, &invite, now, &mut rng).unwrap()
        };
        peers[uploader].accept_grant(grant, session, now).expect("payment verifies");
        downloads_served[uploader] += 1;

        // Every 25 rounds the current uploader cashes out its wallet.
        if round % 25 == 24 {
            for coin in peers[uploader].held_coins() {
                let dep = peers[uploader].request_deposit(coin, &mut rng).unwrap();
                if broker.handle_deposit(&dep, now).is_ok() {
                    peers[uploader].complete_deposit(coin);
                    earnings[uploader] += 1;
                }
            }
        }
    }

    println!("file-sharing market: {PEERS} peers, {DOWNLOADS} downloads\n");
    println!("{:>5} {:>10} {:>10} {:>12}", "peer", "served", "cashed", "still held");
    for i in 0..PEERS {
        println!(
            "{:>5} {:>10} {:>10} {:>12}",
            i,
            downloads_served[i],
            earnings[i],
            peers[i].held_coins().len()
        );
    }
    let stats = broker.stats();
    let broker_ops = stats.purchases + stats.deposits + stats.downtime_transfers + stats.syncs;
    let peer_ops = transfers + issues;
    println!("\npayments by anonymous transfer: {transfers}; by issue: {issues}");
    println!(
        "broker operations: {broker_ops} vs peer-to-peer payment operations: {peer_ops} \
         ({}% handled without the broker's involvement in the payment path)",
        100 * transfers / (transfers + issues).max(1)
    );
    assert_eq!(broker.fraud_cases().len(), 0, "honest market produced no fraud");
}

/// Finds which peer owns a coin (downloaders need to route transfer
/// requests to the owner; a deployment reads this from the coin itself or
/// its i3 handle).
fn owner_of(peers: &[Peer], coin: CoinId) -> usize {
    peers
        .iter()
        .position(|p| p.owned_coin(&coin).is_some())
        .expect("every circulating coin has an owner")
}

//! A miniature of the paper's evaluation (§6): run the load simulator at
//! a few availability levels and print how the work splits between the
//! broker and the peers.
//!
//! The full figure sweeps live in `whopay-bench`
//! (`cargo run --release -p whopay-bench --bin all_figures`); this
//! example is a fast, human-readable taste of the same machinery.
//!
//! Run with: `cargo run --release --example load_simulation`

use whopay::eval::{config::SimConfig, loadsim, MicroWeights, Op, Policy, SyncStrategy};
use whopay::sim::SimTime;

fn main() {
    let weights = MicroWeights::TABLE3;
    println!(
        "{:<18}{:>8}{:>14}{:>14}{:>14}{:>12}",
        "availability", "α", "broker CPU", "peer CPU avg", "ratio", "broker %"
    );
    for (mu_h, nu_h) in [(1u64, 4u64), (2, 2), (8, 2), (32, 2)] {
        let mut cfg = SimConfig::paper_defaults(Policy::I, SyncStrategy::Proactive);
        cfg.n_peers = 200;
        cfg.mu = SimTime::from_hours(mu_h);
        cfg.nu = SimTime::from_hours(nu_h);
        cfg.horizon = SimTime::from_days(5);
        let r = loadsim::run(&cfg);
        println!(
            "µ={mu_h:>2}h ν={nu_h}h       {:>8.2}{:>14.0}{:>14.1}{:>14.1}{:>11.1}%",
            r.availability,
            r.broker_cpu(weights),
            r.peer_cpu_avg(weights),
            r.cpu_ratio(weights),
            100.0 * r.broker_cpu_share(weights),
        );
    }

    println!("\noperation mix at 50% availability (policy I vs policy III, lazy sync):");
    for policy in [Policy::I, Policy::III] {
        let mut cfg = SimConfig::paper_defaults(policy, SyncStrategy::Lazy);
        cfg.n_peers = 200;
        cfg.horizon = SimTime::from_days(5);
        let r = loadsim::run(&cfg);
        println!("\n  {}:", policy.label());
        for (op, n) in r.counts.iter() {
            if n > 0 {
                println!("    {:<22}{n:>10}", op.label());
            }
        }
        assert!(r.counts.get(Op::Transfer) > 0);
    }
}

//! WhoPay over the wire: entities behind byte endpoints on the simulated
//! network, with every protocol message encoded, decoded, and counted.
//!
//! The protocol objects are sans-IO; `whopay::core::service` puts the
//! broker and a coin owner behind `whopay::net` endpoints. This example
//! runs a payment end to end over that network, then prints the measured
//! traffic — the concrete counterpart of the paper's per-operation
//! communication cost model (§6.2).
//!
//! Run with: `cargo run --release --example networked_payment`

use std::cell::RefCell;
use std::rc::Rc;

use whopay::core::service::{
    attach_broker, attach_client, attach_peer, clock, deposit_via, purchase_via, request_issue_via,
    request_transfer_via, send_invite,
};
use whopay::core::{Broker, Judge, Peer, PeerId, PurchaseMode, SystemParams, Timestamp};
use whopay::crypto::testing;
use whopay::net::Network;

fn main() {
    let mut rng = testing::test_rng(31);
    let params = SystemParams::new(testing::tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);

    let mk = |id: u64, judge: &mut Judge, broker: &mut Broker, rng: &mut rand::rngs::StdRng| {
        let gk = judge.enroll(PeerId(id), rng);
        let p = Peer::new(
            PeerId(id),
            params.clone(),
            broker.public_key().clone(),
            judge.public_key().clone(),
            gk,
            rng,
        );
        broker.register_peer(PeerId(id), p.public_key().clone());
        p
    };
    let owner = mk(0, &mut judge, &mut broker, &mut rng);
    let mut payer = mk(1, &mut judge, &mut broker, &mut rng);
    let mut payee = mk(2, &mut judge, &mut broker, &mut rng);

    // Wire everything to the network.
    let mut net = Network::new();
    let clk = clock(Timestamp(0));
    let broker = Rc::new(RefCell::new(broker));
    let broker_ep = attach_broker(&mut net, broker.clone(), clk.clone(), 1);
    let owner = Rc::new(RefCell::new(owner));
    let owner_ep = attach_peer(&mut net, owner.clone(), clk.clone(), 2);
    let payer_ep = attach_client(&mut net, "payer");
    let payee_ep = attach_client(&mut net, "payee");
    println!("network up: {} endpoints\n", net.endpoint_count());

    let now = Timestamp(0);

    // The owner buys a coin from the broker — two wire messages.
    let coin = {
        let mut o = owner.borrow_mut();
        purchase_via(&mut net, owner_ep, broker_ep, &mut o, PurchaseMode::Identified, now, &mut rng)
            .expect("purchase over the wire")
    };
    println!("owner bought {coin} over the wire ({})", net.stats());

    // Payer buys it from the owner (issue), then pays payee (transfer via
    // the owner's endpoint).
    let (invite, session) = payer.begin_receive(&mut rng);
    send_invite(&mut net, payer_ep, owner_ep, &invite).unwrap();
    let grant = request_issue_via(&mut net, payer_ep, owner_ep, coin, &invite).unwrap();
    payer.accept_grant(grant, session, now).unwrap();
    println!("payer holds the coin after a networked issue ({})", net.stats());

    let (invite2, session2) = payee.begin_receive(&mut rng);
    send_invite(&mut net, payee_ep, payer_ep, &invite2).unwrap();
    let treq = payer.request_transfer(coin, &invite2, &mut rng).unwrap();
    let grant2 = request_transfer_via(&mut net, payer_ep, owner_ep, treq, false).unwrap();
    payee.accept_grant(grant2, session2, now).unwrap();
    payer.complete_transfer(coin);
    println!("payee holds the coin after a networked transfer ({})", net.stats());

    // Owner drops offline mid-run; the payee's deposit still works (the
    // broker endpoint is up), and a direct renewal attempt fails cleanly.
    net.set_online(owner_ep, false);
    let rreq = payee.request_renewal(coin, &mut rng).unwrap();
    let direct =
        whopay::core::service::request_renewal_via(&mut net, payee_ep, owner_ep, rreq.clone(), false);
    println!("renewal with owner offline: {}", direct.unwrap_err());
    let renewed = whopay::core::service::request_renewal_via(&mut net, payee_ep, broker_ep, rreq, true)
        .expect("downtime renewal via broker");
    payee.apply_renewal(coin, renewed).unwrap();

    let dreq = payee.request_deposit(coin, &mut rng).unwrap();
    let receipt = deposit_via(&mut net, payee_ep, broker_ep, dreq).unwrap();
    payee.complete_deposit(coin);
    println!("deposited {} for {} unit(s)\n", receipt.coin, receipt.value);

    println!("total wire traffic:       {}", net.stats());
    println!("broker endpoint traffic:  {}", net.endpoint_stats(broker_ep));
    println!("owner endpoint traffic:   {}", net.endpoint_stats(owner_ep));
}

//! Quickstart: the complete life of one WhoPay coin.
//!
//! Sets up the trusted entities (judge, broker), enrolls three peers, and
//! walks a coin through purchase → issue → transfer → renewal → deposit,
//! printing what each party sees — in particular, what it *cannot* see:
//! holder identities are fresh pseudonymous keys at every hop.
//!
//! Run with: `cargo run --release --example quickstart`

use whopay::core::{Broker, Judge, Peer, PeerId, PurchaseMode, SystemParams, Timestamp};
use whopay::crypto::testing;

fn main() {
    let mut rng = testing::test_rng(2024);
    // Small parameters so the example runs instantly; production-strength
    // parameters come from SchnorrGroup::generate(1024, 160, …).
    let params = SystemParams::new(testing::tiny_group().clone());

    // The trusted authorities: the judge holds the group master key, the
    // broker mints coins.
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);

    // Three peers enroll with the judge and register with the broker.
    let mut peers: Vec<Peer> = (0..3)
        .map(|i| {
            let id = PeerId(i);
            let gk = judge.enroll(id, &mut rng);
            let p = Peer::new(
                id,
                params.clone(),
                broker.public_key().clone(),
                judge.public_key().clone(),
                gk,
                &mut rng,
            );
            broker.register_peer(id, p.public_key().clone());
            p
        })
        .collect();
    println!("enrolled {} peers with the judge; broker ready\n", judge.enrolled());

    let now = Timestamp(0);

    // 1. Purchase: Alice (peer 0) generates a coin key pair and asks the
    //    broker to sign the public key. The coin IS that public key.
    let (req, pending) = peers[0].create_purchase_request(PurchaseMode::Identified, &mut rng);
    let minted = broker.handle_purchase(&req, &mut rng).expect("purchase");
    let coin = peers[0].complete_purchase(minted, pending, now, &mut rng).expect("mint verifies");
    println!("1. purchase : alice owns coin {coin}");

    // 2. Issue: Bob (peer 1) sends a fresh holder key; Alice binds the
    //    coin to it. Bob's invite is group-signed — Alice cannot tell who
    //    the payee is.
    let (invite, session) = peers[1].begin_receive(&mut rng);
    let grant = peers[0].issue_coin(coin, &invite, now, &mut rng).expect("issue");
    println!(
        "2. issue    : coin bound to pseudonymous holder key …{} (seq {})",
        &grant.binding.holder_pk().to_hex()[..8],
        grant.binding.seq()
    );
    peers[1].accept_grant(grant, session, now).expect("grant verifies");

    // 3. Transfer: Bob pays Carol (peer 2) through the owner Alice. Alice
    //    sees only holder keys and group signatures — neither payer nor
    //    payee identity.
    let (invite2, session2) = peers[2].begin_receive(&mut rng);
    let treq = peers[1].request_transfer(coin, &invite2, &mut rng).expect("hold proof");
    let grant2 = peers[0].handle_transfer(treq, now.plus(60), &mut rng).expect("transfer");
    println!(
        "3. transfer : rebound to …{} (seq {}); owner learned no identities",
        &grant2.binding.holder_pk().to_hex()[..8],
        grant2.binding.seq()
    );
    peers[2].accept_grant(grant2, session2, now.plus(60)).expect("grant verifies");
    peers[1].complete_transfer(coin);

    // 4. Renewal: Carol extends the coin's expiration via the owner.
    let rreq = peers[2].request_renewal(coin, &mut rng).expect("renewal request");
    let renewed = peers[0].handle_renewal(rreq, now.plus(120), &mut rng).expect("renewal");
    println!("4. renewal  : binding now expires at {}", renewed.expires());
    peers[2].apply_renewal(coin, renewed).expect("renewed binding verifies");

    // 5. Deposit: Carol redeems the coin anonymously — the broker verifies
    //    holdership without learning who she is.
    let dep = peers[2].request_deposit(coin, &mut rng).expect("deposit request");
    let receipt = broker.handle_deposit(&dep, now.plus(180)).expect("deposit");
    // (A greedy Carol signs a second deposit before settling — used below.)
    let dep2 = peers[2].request_deposit(coin, &mut rng).expect("deposit request");
    peers[2].complete_deposit(coin);
    println!("5. deposit  : broker paid out {} unit(s) for {}", receipt.value, receipt.coin);

    // Re-delivering the *identical* request is an idempotent replay: the
    // broker answers with the original receipt instead of double-crediting.
    let replayed = broker.handle_deposit(&dep, now.plus(240)).expect("idempotent replay");
    assert_eq!(replayed, receipt);
    println!("\nreplayed deposit answered idempotently: {:?}", replayed.coin);

    // A *freshly signed* second deposit of the same coin is real fraud:
    // it is caught, and the judge reveals exactly the offending party.
    let err = broker.handle_deposit(&dep2, now.plus(240)).unwrap_err();
    println!("double deposit rejected: {err}");
    for case in broker.fraud_cases() {
        println!(
            "judge opens fraud case '{}': parties {:?}",
            case.description,
            judge.reveal_parties(case)
        );
    }
    println!("\nbroker op counts: {:?}", broker.stats());
}

#!/usr/bin/env bash
# Quick-mode crypto benchmark runner: the Table 2 primitive bench, the
# arithmetic-backbone microbench, and the machine-readable summaries
# (BENCH_*.json at the repository root). Record tracked values in
# EXPERIMENTS.md when they move. Pass --ablation to also regenerate the
# ablation/figure console logs under target/ablation/, --shard to run
# only the sharded-broker scaling bench (BENCH_shard.json), --loadsim
# to run only the million-peer load-simulator bench (BENCH_loadsim.json),
# --micropay to run only the streaming-micropayment bench
# (BENCH_micropay.json), or --merkle to run only the state-commitment
# bench (BENCH_merkle.json).
set -euo pipefail
cd "$(dirname "$0")/.."

CPUS="$(nproc 2>/dev/null || echo 1)"
if [ "$CPUS" -le 1 ]; then
    echo "!!> WARNING: only $CPUS CPU visible to this run." >&2
    echo "!!> Threaded rows (parallel verify / vpool / partitioned-sim entries)" >&2
    echo "!!> measure time-sliced scheduling, NOT parallel speedup. Check host_cpus" >&2
    echo "!!> in the BENCH_*.json files before citing any threaded number." >&2
fi

# On the first multi-core run, re-assert every number that an earlier
# single-CPU host had to record as unproven: bench_shard_json's ≥1.6×
# two-shard gate and bench_verify_json's threaded speedup rows only
# assert when host_cpus > 1 (ROADMAP open item 1).
reassert_multicore_gates() {
    [ "$CPUS" -gt 1 ] || return 0
    for b in shard verify; do
        if [ ! -f "BENCH_${b}.json" ] \
            || grep -q '"scaling_asserted": false' "BENCH_${b}.json" \
            || grep -q '_unproven' "BENCH_${b}.json"; then
            echo "==> multi-core host: re-running bench_${b}_json to assert its scaling gates"
            cargo run --release --offline -q -p whopay-bench --bin "bench_${b}_json"
        fi
    done
}

# Consolidated report of which recorded numbers are still unproven on
# this host (single-CPU artifacts carry scaling_asserted=false and
# *_unproven row markers until a multi-core run replaces them).
unproven_summary() {
    echo "==> unproven numbers remaining:"
    local found=0 f
    for f in BENCH_*.json; do
        [ -f "$f" ] || continue
        if grep -q '"scaling_asserted": false' "$f"; then
            echo "    $f: scaling_asserted=false (threaded rows are time-sliced, not parallel)"
            found=1
        elif grep -q '_unproven' "$f"; then
            echo "    $f: carries *_unproven rows"
            found=1
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "    none: every recorded number is asserted on this host"
    fi
}

if [ "${1:-}" = "--shard" ]; then
    if [ "$CPUS" -le 1 ]; then
        echo "!!> WARNING: shard workers serialize on $CPUS CPU; BENCH_shard.json will" >&2
        echo "!!> carry \"scaling_asserted\": false and its speedups are not evidence." >&2
    fi
    echo "==> bench_shard_json (BENCH_shard.json)"
    cargo run --release --offline -q -p whopay-bench --bin bench_shard_json
    reassert_multicore_gates
    unproven_summary
    echo "==> bench.sh: done (--shard)"
    exit 0
fi

if [ "${1:-}" = "--loadsim" ]; then
    echo "==> bench_loadsim_json (BENCH_loadsim.json)"
    cargo run --release --offline -q -p whopay-bench --bin bench_loadsim_json
    reassert_multicore_gates
    unproven_summary
    echo "==> bench.sh: done (--loadsim)"
    exit 0
fi

if [ "${1:-}" = "--merkle" ]; then
    echo "==> bench_merkle_json (BENCH_merkle.json)"
    cargo run --release --offline -q -p whopay-bench --bin bench_merkle_json
    reassert_multicore_gates
    unproven_summary
    echo "==> bench.sh: done (--merkle)"
    exit 0
fi

if [ "${1:-}" = "--micropay" ]; then
    echo "==> bench_micropay_json (BENCH_micropay.json)"
    cargo run --release --offline -q -p whopay-bench --bin bench_micropay_json
    reassert_multicore_gates
    unproven_summary
    echo "==> bench.sh: done (--micropay)"
    exit 0
fi

echo "==> cargo bench: table2_dsa (DSA-1024 keygen/sign/verify)"
cargo bench -p whopay-bench --bench table2_dsa --offline

echo "==> cargo bench: modexp (Montgomery backbone microbench)"
cargo bench -p whopay-bench --bench modexp --offline

echo "==> bench_crypto_json (BENCH_crypto.json)"
cargo run --release --offline -q -p whopay-bench --bin bench_crypto_json

echo "==> bench_verify_json (BENCH_verify.json)"
cargo run --release --offline -q -p whopay-bench --bin bench_verify_json

echo "==> bench_wire_json (BENCH_wire.json)"
cargo run --release --offline -q -p whopay-bench --bin bench_wire_json

echo "==> bench_obs_json (BENCH_obs.json + target/obs/ flight dump & chrome trace)"
cargo run --release --offline -q -p whopay-bench --bin bench_obs_json

echo "==> bench_shard_json (BENCH_shard.json)"
cargo run --release --offline -q -p whopay-bench --bin bench_shard_json

echo "==> bench_loadsim_json (BENCH_loadsim.json)"
cargo run --release --offline -q -p whopay-bench --bin bench_loadsim_json

echo "==> bench_micropay_json (BENCH_micropay.json)"
cargo run --release --offline -q -p whopay-bench --bin bench_micropay_json

echo "==> bench_merkle_json (BENCH_merkle.json)"
cargo run --release --offline -q -p whopay-bench --bin bench_merkle_json

if [ "${1:-}" = "--ablation" ]; then
    # Console logs live under the (git-ignored) target tree; EXPERIMENTS.md
    # quotes numbers from these runs.
    mkdir -p target/ablation
    echo "==> all_figures (target/ablation/figures_output.txt)"
    cargo run --release --offline -q -p whopay-bench --bin all_figures \
        | tee target/ablation/figures_output.txt
    echo "==> table3_report (target/ablation/table3_output.txt)"
    cargo run --release --offline -q -p whopay-bench --bin table3_report \
        | tee target/ablation/table3_output.txt
    for ab in downtime lifecycle policies real_messages vs_centralized; do
        echo "==> ablation_${ab} (target/ablation/ablation_${ab}_output.txt)"
        cargo run --release --offline -q -p whopay-bench --bin "ablation_${ab}" \
            | tee "target/ablation/ablation_${ab}_output.txt"
    done
fi

reassert_multicore_gates
unproven_summary
echo "==> bench.sh: done"

#!/usr/bin/env bash
# Quick-mode crypto benchmark runner: the Table 2 primitive bench, the
# arithmetic-backbone microbench, and the machine-readable summary
# (BENCH_crypto.json at the repository root). Record tracked values in
# EXPERIMENTS.md when they move.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo bench: table2_dsa (DSA-1024 keygen/sign/verify)"
cargo bench -p whopay-bench --bench table2_dsa --offline

echo "==> cargo bench: modexp (Montgomery backbone microbench)"
cargo bench -p whopay-bench --bench modexp --offline

echo "==> bench_crypto_json (BENCH_crypto.json)"
cargo run --release --offline -q -p whopay-bench --bin bench_crypto_json

echo "==> bench_verify_json (BENCH_verify.json)"
cargo run --release --offline -q -p whopay-bench --bin bench_verify_json

echo "==> bench_wire_json (BENCH_wire.json)"
cargo run --release --offline -q -p whopay-bench --bin bench_wire_json

echo "==> bench.sh: done"

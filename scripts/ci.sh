#!/usr/bin/env bash
# The canonical tier-1 gate for this repository: release build + full
# test suite, plus formatting and lint checks when the toolchain
# components are installed (they are skipped gracefully when absent, as
# in minimal offline containers).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> cargo test -p whopay-num --release (arithmetic differential suite)"
cargo test -p whopay-num -q --release --offline

echo "==> cargo test -p whopay-crypto --release (batch soundness + differential suite)"
cargo test -p whopay-crypto -q --release --offline

echo "==> cargo test -p whopay-core --release (wire fast-path: props, alloc guard [<2 allocs/request, tracing disabled], reconciliation)"
cargo test -p whopay-core -q --release --offline --test wire_props --test alloc_regression --test wire_reconcile

echo "==> WHOPAY_VPOOL_THREADS=1 cargo test -q (serial-pool determinism pass)"
WHOPAY_VPOOL_THREADS=1 cargo test -q --offline

echo "==> cargo test --release --test chaos (chaos suite, pinned seed)"
cargo test -q --release --offline --test chaos

echo "==> WHOPAY_CHAOS_SEED=20260807 cargo test --release --test chaos (chaos suite, alternate seed)"
WHOPAY_CHAOS_SEED=20260807 cargo test -q --release --offline --test chaos

echo "==> cargo test --release --test chaos sharded (sharded broker: shard crash + lost-commit detection)"
cargo test -q --release --offline --test chaos sharded
cargo test -q --release --offline --test chaos lost_cross_shard

echo "==> cargo test --release --test chaos streaming (PayWord stream: faults + mid-stream shard crash)"
cargo test -q --release --offline --test chaos streaming_micropay

echo "==> WHOPAY_NET_THREADS=1 cargo test -q --release (event-queue single-thread equivalence pass)"
WHOPAY_NET_THREADS=1 cargo test -q --release --offline

echo "==> cargo test -p whopay-net --release (fault-schedule determinism + queue/sync equivalence props)"
cargo test -p whopay-net -q --release --offline --test fault_props --test queue_equiv

echo "==> cargo test -p whopay-core --release --test recovery_lazy (lazy sig-cache re-priming on recovery)"
cargo test -p whopay-core -q --release --offline --test recovery_lazy

echo "==> cargo test --release --test tracing (causal tracing: retry span chains, trace-id uniqueness)"
cargo test -q --release --offline --test tracing

echo "==> cargo test -p whopay-core --release audit (invariant auditor unit suite)"
cargo test -p whopay-core -q --release --offline --lib audit

echo "==> cargo test -p whopay-sim --release --test queue_equiv (calendar queue ≡ binary heap props)"
cargo test -p whopay-sim -q --release --offline --test queue_equiv

echo "==> cargo test -p whopay-sim --release lifecycle (peer life-cycle transition matrix + churn equivalence)"
cargo test -p whopay-sim -q --release --offline --lib lifecycle

echo "==> cargo test -p whopay-eval --release (arena ≡ legacy differential + partitioned determinism)"
cargo test -p whopay-eval -q --release --offline --test arena_equiv --test partitioned

echo "==> cargo test -p whopay-eval --release --test scale_smoke (pinned-seed 100k-peer partitioned run, < 30 s budget)"
cargo test -p whopay-eval -q --release --offline --test scale_smoke -- --ignored

echo "==> cargo test -p whopay-crypto --release --test payword_props (hash-chain / skip-verification differential props)"
cargo test -p whopay-crypto -q --release --offline --test payword_props

echo "==> cargo test -p whopay-core --release (micropay flow + differential props)"
cargo test -p whopay-core -q --release --offline --test micropay_flow --test micropay_props

echo "==> cargo test -p whopay-eval --release --lib streaming (pinned-seed streaming smoke: conservation, churn, partition invariance)"
cargo test -p whopay-eval -q --release --offline --lib streaming

echo "==> cargo test -p whopay-core --release (Merkle differential props + journal tamper/torn-tail evidence props)"
cargo test -p whopay-core -q --release --offline --test merkle_props --test tamper_props

echo "==> cargo test --release --test byzantine_dht (proof-checked lookups vs Byzantine DHT nodes)"
cargo test -q --release --offline --test byzantine_dht

echo "==> cargo test --release --test chaos adversarial (adversarial corruption chaos: journal/snapshot/record tampering)"
cargo test -q --release --offline --test chaos adversarial

echo "==> cargo bench --no-run (benches stay compilable)"
cargo bench --no-run --offline

echo "==> cargo build --release --bin bench_shard_json (shard-scaling bench stays buildable)"
cargo build --release --offline -p whopay-bench --bin bench_shard_json

echo "==> cargo build --release --bin bench_loadsim_json (load-sim scaling bench stays buildable)"
cargo build --release --offline -p whopay-bench --bin bench_loadsim_json

echo "==> cargo build --release --bin bench_micropay_json (streaming-micropay bench stays buildable)"
cargo build --release --offline -p whopay-bench --bin bench_micropay_json

echo "==> cargo build --release --bin bench_merkle_json (state-commitment bench stays buildable)"
cargo build --release --offline -p whopay-bench --bin bench_merkle_json

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "==> cargo fmt not installed; skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping"
fi

echo "==> ci.sh: all checks passed"

#![warn(missing_docs)]

//! **WhoPay** — a scalable and anonymous payment system for peer-to-peer
//! environments.
//!
//! This is the facade crate of a full reproduction of *WhoPay: A Scalable
//! and Anonymous Payment System for Peer-to-Peer Environments* (Wei,
//! Chen, Smith, Vo; ICDCS 2006 / UCB-CSD-5-1386). It re-exports every
//! layer of the system:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `whopay-core` | the WhoPay protocol: broker, judge, peers, coin shops, extensions |
//! | [`ppay`] | `whopay-ppay` | the PPay baseline WhoPay is measured against |
//! | [`crypto`] | `whopay-crypto` | SHA-256, DSA, Schnorr, ElGamal, group signatures, Shamir, PayWord |
//! | [`num`] | `whopay-num` | arbitrary-precision arithmetic and Schnorr-group generation |
//! | [`dht`] | `whopay-dht` | the Chord DHT behind real-time double-spending detection |
//! | [`net`] | `whopay-net` | in-memory transport with traffic accounting + i3 indirection |
//! | [`sim`] | `whopay-sim` | the discrete-event simulation engine |
//! | [`eval`] | `whopay-eval` | the paper's evaluation: load simulator, cost model, figure data |
//! | [`obs`] | `whopay-obs` | structured protocol tracing, metrics registry, JSON-lines events |
//!
//! See the `examples/` directory for runnable walkthroughs (quickstart,
//! the pay-per-download market from the paper's introduction, real-time
//! double-spend detection, anonymous coin shops) and `whopay-bench` for
//! the benchmarks and figure generators. DESIGN.md maps every table and
//! figure of the paper to the code that regenerates it.
//!
//! # Quickstart
//!
//! ```
//! use whopay::core::{Broker, Judge, Peer, PeerId, PurchaseMode, SystemParams, Timestamp};
//! use whopay::crypto::testing;
//!
//! let mut rng = testing::test_rng(1);
//! let params = SystemParams::new(testing::tiny_group().clone());
//! let mut judge = Judge::new(params.group().clone(), &mut rng);
//! let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);
//! let gk = judge.enroll(PeerId(1), &mut rng);
//! let mut alice = Peer::new(
//!     PeerId(1),
//!     params.clone(),
//!     broker.public_key().clone(),
//!     judge.public_key().clone(),
//!     gk,
//!     &mut rng,
//! );
//! broker.register_peer(alice.id(), alice.public_key().clone());
//! let (req, pending) = alice.create_purchase_request(PurchaseMode::Identified, &mut rng);
//! let minted = broker.handle_purchase(&req, &mut rng).unwrap();
//! let coin = alice.complete_purchase(minted, pending, Timestamp(0), &mut rng).unwrap();
//! assert_eq!(alice.unissued_coins(), vec![coin]);
//! ```

pub use whopay_core as core;
pub use whopay_crypto as crypto;
pub use whopay_dht as dht;
pub use whopay_eval as eval;
pub use whopay_net as net;
pub use whopay_num as num;
pub use whopay_obs as obs;
pub use whopay_ppay as ppay;
pub use whopay_sim as sim;

//! Tests of the paper's anonymity and fairness properties (§2, §4.3) as
//! observable facts about the data structures that cross trust
//! boundaries — what the broker, the owner, and the payee actually see.

use whopay::core::{Broker, Judge, Peer, PeerId, PurchaseMode, SystemParams, Timestamp};
use whopay::crypto::testing;
use whopay::num::BigUint;

struct World {
    params: SystemParams,
    judge: Judge,
    broker: Broker,
    peers: Vec<Peer>,
    rng: rand::rngs::StdRng,
}

fn world(n: usize, seed: u64) -> World {
    let mut rng = testing::test_rng(seed);
    let params = SystemParams::new(testing::tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);
    let peers: Vec<Peer> = (0..n as u64)
        .map(|i| {
            let gk = judge.enroll(PeerId(i), &mut rng);
            let p = Peer::new(
                PeerId(i),
                params.clone(),
                broker.public_key().clone(),
                judge.public_key().clone(),
                gk,
                &mut rng,
            );
            broker.register_peer(PeerId(i), p.public_key().clone());
            p
        })
        .collect();
    World { params, judge, broker, peers, rng }
}

#[test]
fn transfer_request_contains_no_identity_linkable_values() {
    // §4.3: "During coin transfer, the coin does not contain holder
    // identity and both the payer and the payee use their group private
    // keys" — verify the actual request bytes reference no peer identity
    // key and no peer id.
    let mut w = world(3, 1);
    let now = Timestamp(0);
    let (req, pending) = w.peers[0].create_purchase_request(PurchaseMode::Identified, &mut w.rng);
    let minted = w.broker.handle_purchase(&req, &mut w.rng).unwrap();
    let coin = w.peers[0].complete_purchase(minted, pending, now, &mut w.rng).unwrap();
    let (invite, session) = w.peers[1].begin_receive(&mut w.rng);
    let grant = w.peers[0].issue_coin(coin, &invite, now, &mut w.rng).unwrap();
    w.peers[1].accept_grant(grant, session, now).unwrap();

    let (invite2, _s2) = w.peers[2].begin_receive(&mut w.rng);
    let treq = w.peers[1].request_transfer(coin, &invite2, &mut w.rng).unwrap();

    // No field of the transfer request equals any peer's identity key.
    let identity_elems: Vec<&BigUint> = w.peers.iter().map(|p| p.public_key().element()).collect();
    for elem in [&treq.new_holder_pk, treq.current.holder_pk()] {
        for id_elem in &identity_elems {
            assert_ne!(&elem, id_elem, "holder keys are fresh pseudonyms, not identity keys");
        }
    }
}

#[test]
fn two_payments_by_the_same_peer_are_unlinkable() {
    // Unlinkability: the artifacts of two spends by the same peer share
    // no common value an observer could join on — fresh holder keys,
    // fresh nonces, fresh group-signature ciphertexts.
    let mut w = world(3, 2);
    let now = Timestamp(0);

    let mut artifacts = Vec::new();
    for _ in 0..2 {
        let (req, pending) = w.peers[0].create_purchase_request(PurchaseMode::Identified, &mut w.rng);
        let minted = w.broker.handle_purchase(&req, &mut w.rng).unwrap();
        let coin = w.peers[0].complete_purchase(minted, pending, now, &mut w.rng).unwrap();
        let (invite, session) = w.peers[1].begin_receive(&mut w.rng);
        let grant = w.peers[0].issue_coin(coin, &invite, now, &mut w.rng).unwrap();
        w.peers[1].accept_grant(grant, session, now).unwrap();
        let (invite2, _s) = w.peers[2].begin_receive(&mut w.rng);
        let treq = w.peers[1].request_transfer(coin, &invite2, &mut w.rng).unwrap();
        artifacts.push(treq);
    }

    let a = &artifacts[0];
    let b = &artifacts[1];
    assert_ne!(a.current.holder_pk(), b.current.holder_pk(), "fresh holder key per payment");
    assert_ne!(a.new_holder_pk, b.new_holder_pk);
    assert_ne!(a.nonce, b.nonce);
    assert_ne!(
        a.group_sig.ciphertext(),
        b.group_sig.ciphertext(),
        "group signatures are unlinkable (fresh ElGamal randomness)"
    );
    // Yet the judge links both to the same member.
    assert_eq!(
        w.judge.open(&a.group_sig),
        w.judge.open(&b.group_sig),
        "the judge, and only the judge, can link them"
    );
}

#[test]
fn deposit_hides_the_depositor_from_the_broker() {
    // §4.3: "during coin deposit, the broker does not know who is
    // requesting the deposit." The deposit request carries only the coin,
    // a pseudonymous holder key, and a group signature.
    let mut w = world(2, 3);
    let now = Timestamp(0);
    let (req, pending) = w.peers[0].create_purchase_request(PurchaseMode::Identified, &mut w.rng);
    let minted = w.broker.handle_purchase(&req, &mut w.rng).unwrap();
    let coin = w.peers[0].complete_purchase(minted, pending, now, &mut w.rng).unwrap();
    let (invite, session) = w.peers[1].begin_receive(&mut w.rng);
    let grant = w.peers[0].issue_coin(coin, &invite, now, &mut w.rng).unwrap();
    w.peers[1].accept_grant(grant, session, now).unwrap();
    let dep = w.peers[1].request_deposit(coin, &mut w.rng).unwrap();

    for p in &w.peers {
        assert_ne!(dep.binding.holder_pk(), p.public_key().element());
    }
    // The broker accepts it without ever resolving an identity…
    w.broker.handle_deposit(&dep, now).unwrap();
    // …while the judge could (fairness), if this were a fraud case.
    assert_eq!(w.judge.open(&dep.group_sig), whopay::core::RevealedIdentity::Peer(PeerId(1)));
}

#[test]
fn owner_anonymous_coins_reveal_no_owner_to_anyone() {
    // §5.2 approach 3: the minted coin itself carries no owner identity;
    // the broker's record of the purchase is a group signature it cannot
    // open.
    let mut w = world(2, 4);
    let now = Timestamp(0);
    let (req, pending) = w.peers[0].create_purchase_request(PurchaseMode::Anonymous, &mut w.rng);
    assert!(req.identity_sig.is_none(), "anonymous purchases carry no identity signature");
    assert!(req.group_sig.is_some(), "…but remain accountable via group signature");
    let minted = w.broker.handle_purchase(&req, &mut w.rng).unwrap();
    assert_eq!(minted.owner(), &whopay::core::OwnerTag::Anonymous);
    let coin = w.peers[0].complete_purchase(minted, pending, now, &mut w.rng).unwrap();

    // The coin still spends normally.
    let (invite, session) = w.peers[1].begin_receive(&mut w.rng);
    let grant = w.peers[0].issue_coin(coin, &invite, now, &mut w.rng).unwrap();
    w.peers[1].accept_grant(grant, session, now).unwrap();

    // And the judge can still attribute the purchase if fraud emerges.
    assert_eq!(
        w.judge.open(req.group_sig.as_ref().unwrap()),
        whopay::core::RevealedIdentity::Peer(PeerId(0))
    );
    let _ = &w.params;
}

#[test]
fn fairness_reveals_only_the_transactions_parties() {
    // §2 Fairness: "this process should not reveal any information about
    // other transactions." Opening one fraud case identifies its party;
    // other transactions' group signatures remain unopened artifacts the
    // broker never learns identities from.
    let mut w = world(3, 5);
    let now = Timestamp(0);

    // Honest payment by peer 2 (its group signature exists somewhere).
    let (req, pending) = w.peers[0].create_purchase_request(PurchaseMode::Identified, &mut w.rng);
    let minted = w.broker.handle_purchase(&req, &mut w.rng).unwrap();
    let c1 = w.peers[0].complete_purchase(minted, pending, now, &mut w.rng).unwrap();
    let (invite, session) = w.peers[2].begin_receive(&mut w.rng);
    let grant = w.peers[0].issue_coin(c1, &invite, now, &mut w.rng).unwrap();
    w.peers[2].accept_grant(grant, session, now).unwrap();

    // Fraudulent double deposit by peer 1 on a second coin.
    let (req2, pending2) = w.peers[0].create_purchase_request(PurchaseMode::Identified, &mut w.rng);
    let minted2 = w.broker.handle_purchase(&req2, &mut w.rng).unwrap();
    let c2 = w.peers[0].complete_purchase(minted2, pending2, now, &mut w.rng).unwrap();
    let (invite2, session2) = w.peers[1].begin_receive(&mut w.rng);
    let grant2 = w.peers[0].issue_coin(c2, &invite2, now, &mut w.rng).unwrap();
    w.peers[1].accept_grant(grant2, session2, now).unwrap();
    let dep = w.peers[1].request_deposit(c2, &mut w.rng).unwrap();
    w.broker.handle_deposit(&dep, now).unwrap();
    // A *freshly signed* second deposit (an identical resend would be an
    // idempotent replay, not fraud).
    let dep2 = w.peers[1].request_deposit(c2, &mut w.rng).unwrap();
    let _ = w.broker.handle_deposit(&dep2, now);

    // Exactly one fraud case, naming exactly the double-depositor.
    let cases = w.broker.fraud_cases();
    assert_eq!(cases.len(), 1);
    assert_eq!(cases[0].coin, c2);
    let revealed = w.judge.reveal_parties(&cases[0]);
    assert_eq!(revealed, vec![whopay::core::RevealedIdentity::Peer(PeerId(1))]);
    // Peer 2's honest transaction was never part of any referral.
    assert_eq!(cases[0].group_sigs.len(), 1);
}

//! Byzantine-DHT regression: binding lookups verified against the
//! broker's Merkle commitment survive nodes that serve stale or forged
//! records.
//!
//! The DSD trusts whichever node serves a binding record. An honest
//! cluster validates writes (signature + monotonic version), but a
//! *Byzantine* node skips validation and serves whatever it likes:
//! yesterday's record (a stale replay hiding a rebinding), a record
//! signed by an attacker instead of the coin key, or bit-rotted bytes.
//! [`dsd::read_public_state_verified`] closes this hole: the payee
//! fetches a [`BindingProof`] from the broker — the committed coin leaf,
//! a Merkle path, and a signed `(root, seq)` — and checks the served
//! record against it before trusting a word of it.
//!
//! Each test pins one attack: the honest path succeeds (including
//! fetching the proof over a 2%-fault network with retries), a stale
//! replay raises [`CoreError::StaleBinding`], a forged owner raises
//! [`CoreError::BadSignature`], an equivocation at the committed
//! sequence raises [`CoreError::PublicBindingMismatch`], a proof for the
//! wrong coin raises [`CoreError::BadProof`], and tampered record bytes
//! never verify. Where the plain [`dsd::read_public_state`] would have
//! accepted the hostile record, the test says so — that contrast is the
//! point of the proof-checked path.

use std::cell::RefCell;
use std::rc::Rc;

use whopay::core::codec::Writer as WireWriter;
use whopay::core::service::{
    attach_broker, attach_client, binding_proof_via_retry, clock, install_wire_classifier,
};
use whopay::core::{
    dsd, Broker, CoreError, Judge, Peer, PeerId, PurchaseMode, SystemParams, Timestamp,
};
use whopay::crypto::dsa::DsaKeyPair;
use whopay::crypto::testing::{test_rng, tiny_group};
use whopay::dht::{Dht, DhtConfig, RingId, SignedRecord, Writer};
use whopay::net::{
    FaultInjector, FaultPlan, FaultRates, Network, RetryPolicy, TamperInjector, TamperPlan,
    TamperTarget,
};
use whopay::num::BigUint;
use whopay::obs::Obs;

struct World {
    params: SystemParams,
    broker: Broker,
    peers: Vec<Peer>,
    dht: Dht,
    entry: RingId,
    rng: rand::rngs::StdRng,
}

fn world(seed: u64) -> World {
    let mut rng = test_rng(seed);
    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);
    let peers: Vec<Peer> = (0..3u64)
        .map(|i| {
            let gk = judge.enroll(PeerId(i), &mut rng);
            let p = Peer::new(
                PeerId(i),
                params.clone(),
                broker.public_key().clone(),
                judge.public_key().clone(),
                gk,
                &mut rng,
            );
            broker.register_peer(PeerId(i), p.public_key().clone());
            p
        })
        .collect();
    let mut dht = Dht::new(params.group().clone(), broker.public_key().clone(), DhtConfig::default());
    for _ in 0..16 {
        dht.join(RingId::random(&mut rng));
    }
    let entry = dht.node_ids()[0];
    World { params, broker, peers, dht, entry, rng }
}

/// Drives one coin to a broker-committed downtime binding: peer 0 mints
/// and issues to peer 1, publishes the owner binding, then peer 1 pays
/// peer 2 through the broker's downtime path (owner dark) and the broker
/// publishes the rebinding. Afterwards the broker's committed leaf for
/// the coin carries `Some(binding)` — the anchor every freshness check
/// in this file verifies against. Returns the coin and its public key.
fn coin_with_committed_binding(w: &mut World) -> (whopay::core::types::CoinId, BigUint) {
    let now = Timestamp(0);
    let (req, pending) = w.peers[0].create_purchase_request(PurchaseMode::Identified, &mut w.rng);
    let minted = w.broker.handle_purchase(&req, &mut w.rng).unwrap();
    let coin = w.peers[0].complete_purchase(minted, pending, now, &mut w.rng).unwrap();
    let (invite, session) = w.peers[1].begin_receive(&mut w.rng);
    let grant = w.peers[0].issue_coin(coin, &invite, now, &mut w.rng).unwrap();
    w.peers[1].accept_grant(grant, session, now).unwrap();
    dsd::publish_owner_binding(&w.peers[0], coin, &mut w.dht, w.entry, &mut w.rng).unwrap();

    // Owner goes dark; the broker serves the transfer and publishes the
    // rebinding itself, committing it to the ledger as it goes.
    let (invite2, session2) = w.peers[2].begin_receive(&mut w.rng);
    let treq = w.peers[1].request_transfer(coin, &invite2, &mut w.rng).unwrap();
    let grant2 = w.broker.handle_downtime_transfer(&treq, Timestamp(10), &mut w.rng).unwrap();
    w.broker.publish_binding(&grant2.binding, &mut w.dht, w.entry, &mut w.rng).unwrap();
    w.peers[2].accept_grant(grant2, session2, Timestamp(10)).unwrap();
    w.peers[1].complete_transfer(coin);

    let coin_pk = w.peers[0].owned_coin(&coin).unwrap().minted.coin_pk().clone();
    (coin, coin_pk)
}

/// Builds a hostile record over `value` at `version`, signed by `keys`
/// as the subject — the shape a Byzantine node serves when the signing
/// key is wrong (forgery) or the content lies (equivocation).
fn subject_record(
    w: &mut World,
    coin_pk: &BigUint,
    value: Vec<u8>,
    version: u64,
    keys: &DsaKeyPair,
) -> SignedRecord {
    let msg = SignedRecord::signed_bytes(coin_pk, &value, version, Writer::Subject);
    SignedRecord {
        subject: coin_pk.clone(),
        value,
        version,
        writer: Writer::Subject,
        signature: keys.sign(w.params.group(), &msg, &mut w.rng),
    }
}

#[test]
fn honest_lookup_verifies_against_the_committed_leaf() {
    let mut w = world(0xB12A_0001);
    let (coin, coin_pk) = coin_with_committed_binding(&mut w);

    let proof = w.broker.binding_proof(&coin, &mut w.rng).expect("ledger is on by default");
    proof.verify(w.params.group(), w.broker.public_key()).expect("fresh proof verifies");
    let committed = proof.leaf.binding.clone().expect("downtime path left a committed binding");

    // The honest cluster serves the broker's own rebinding; the verified
    // read accepts it and it matches the committed leaf exactly.
    let state = dsd::read_public_state_verified(
        &mut w.dht,
        w.entry,
        &coin_pk,
        &proof,
        w.params.group(),
        w.broker.public_key(),
    )
    .expect("honest record passes the commitment check");
    assert_eq!(state, committed, "served state is the committed state");
    assert_eq!(state.seq, committed.seq);
}

#[test]
fn proof_fetch_over_a_faulty_network_succeeds_with_retries() {
    // The payee does not need a clean channel to the broker to get its
    // anchor: under a 2% drop/duplicate/corrupt/timeout storm the retry
    // loop still lands a proof, and the proof still verifies.
    let mut w = world(0xB12A_0002);
    let (coin, coin_pk) = coin_with_committed_binding(&mut w);

    let mut net = Network::new();
    install_wire_classifier(&mut net);
    let broker = Rc::new(RefCell::new(w.broker));
    let broker_ep = attach_broker(&mut net, broker.clone(), clock(Timestamp(20)), 77);
    let payee_ep = attach_client(&mut net, "payee");
    let plan = FaultPlan::new().with_default(FaultRates {
        drop: 0.02,
        duplicate: 0.02,
        corrupt: 0.02,
        timeout: 0.02,
    });
    net.install_faults(FaultInjector::new(plan, 0xB12A ^ 0xFA17));

    let policy = RetryPolicy::new(8).backoff(10, 1_000).budget(100_000);
    let proof = binding_proof_via_retry(
        &mut net,
        payee_ep,
        broker_ep,
        coin,
        &policy,
        &mut w.rng,
        &Obs::disabled(),
    )
    .expect("retries beat a 2% fault storm");
    assert_eq!(proof.leaf.coin, coin);
    proof
        .verify(w.params.group(), broker.borrow().public_key())
        .expect("network-fetched proof verifies");

    let state = dsd::read_public_state_verified(
        &mut w.dht,
        w.entry,
        &coin_pk,
        &proof,
        w.params.group(),
        broker.borrow().public_key(),
    )
    .expect("verified lookup with a network-fetched proof");
    assert_eq!(Some(state), proof.leaf.binding);
}

#[test]
fn stale_replay_is_rejected_where_plain_read_accepts_it() {
    let mut w = world(0xB12A_0003);

    // Capture the owner's published record *before* the downtime
    // rebinding — a perfectly signed, perfectly decodable record that is
    // simply out of date once the broker commits the transfer.
    let now = Timestamp(0);
    let (req, pending) = w.peers[0].create_purchase_request(PurchaseMode::Identified, &mut w.rng);
    let minted = w.broker.handle_purchase(&req, &mut w.rng).unwrap();
    let coin = w.peers[0].complete_purchase(minted, pending, now, &mut w.rng).unwrap();
    let (invite, session) = w.peers[1].begin_receive(&mut w.rng);
    let grant = w.peers[0].issue_coin(coin, &invite, now, &mut w.rng).unwrap();
    w.peers[1].accept_grant(grant, session, now).unwrap();
    dsd::publish_owner_binding(&w.peers[0], coin, &mut w.dht, w.entry, &mut w.rng).unwrap();
    let coin_pk = w.peers[0].owned_coin(&coin).unwrap().minted.coin_pk().clone();
    let stale = w.dht.get(w.entry, dsd::binding_key(&coin_pk)).expect("owner record published");

    let (invite2, session2) = w.peers[2].begin_receive(&mut w.rng);
    let treq = w.peers[1].request_transfer(coin, &invite2, &mut w.rng).unwrap();
    let grant2 = w.broker.handle_downtime_transfer(&treq, Timestamp(10), &mut w.rng).unwrap();
    w.broker.publish_binding(&grant2.binding, &mut w.dht, w.entry, &mut w.rng).unwrap();
    w.peers[2].accept_grant(grant2, session2, Timestamp(10)).unwrap();
    w.peers[1].complete_transfer(coin);

    let proof = w.broker.binding_proof(&coin, &mut w.rng).unwrap();
    let committed = proof.leaf.binding.clone().expect("rebinding was committed");
    assert!(stale.version < committed.seq, "the captured record predates the rebinding");

    // A Byzantine node replays the stale record. Its signature is
    // genuine and its version monotone from an empty store, so even an
    // *honest* fresh cluster accepts and serves it...
    let mut byz =
        Dht::new(w.params.group().clone(), w.broker.public_key().clone(), DhtConfig::default());
    byz.join(RingId::random(&mut w.rng));
    let byz_entry = byz.node_ids()[0];
    byz.put(byz_entry, stale.clone()).expect("a valid old record re-enters an empty cluster");

    // ...and the unverified read trusts it: the payee would hand the
    // coin to a holder the broker already rebound away from.
    let replayed = dsd::read_public_state(&mut byz, byz_entry, &coin_pk).unwrap();
    assert_eq!(replayed.seq, stale.version, "plain read accepts the replay");

    // The proof-checked read catches the replay by sequence.
    let err = dsd::read_public_state_verified(
        &mut byz,
        byz_entry,
        &coin_pk,
        &proof,
        w.params.group(),
        w.broker.public_key(),
    )
    .unwrap_err();
    match err {
        CoreError::StaleBinding { expected_seq, presented_seq } => {
            assert_eq!(expected_seq, committed.seq);
            assert_eq!(presented_seq, stale.version);
        }
        other => panic!("stale replay misclassified as {other:?}"),
    }
}

#[test]
fn forged_owner_is_rejected_where_plain_decode_accepts_it() {
    let mut w = world(0xB12A_0004);
    let (coin, coin_pk) = coin_with_committed_binding(&mut w);
    let proof = w.broker.binding_proof(&coin, &mut w.rng).unwrap();
    let committed = proof.leaf.binding.clone().unwrap();

    // The attacker names itself holder at a sequence *past* the
    // commitment, so the freshness check alone cannot object — only the
    // coin-key signature stands between the forgery and acceptance.
    let attacker = DsaKeyPair::generate(w.params.group(), &mut w.rng);
    let forged_seq = committed.seq + 1;
    let value = {
        let mut wr = WireWriter::new();
        wr.int(attacker.public().element()).u64(forged_seq).u64(committed.expires.0);
        wr.finish()
    };
    let forged = subject_record(&mut w, &coin_pk, value, forged_seq, &attacker);

    // Honest storage refuses the write outright — the forgery can only
    // reach a payee through a node that skips validation.
    assert!(w.dht.put(w.entry, forged.clone()).is_err(), "honest cluster rejects the forgery");

    // A Byzantine node plants it anyway, and the unverified read through
    // the *real* lookup path swallows the lie whole: the payload decodes
    // cleanly and names the attacker as holder.
    w.dht.inject_byzantine_record(forged);
    let lie = dsd::read_public_state(&mut w.dht, w.entry, &coin_pk).unwrap();
    assert_eq!(&lie.holder_pk, attacker.public().element(), "plain read accepts the forgery");

    // The proof-checked read over the same cluster rejects it.
    let err = dsd::read_public_state_verified(
        &mut w.dht,
        w.entry,
        &coin_pk,
        &proof,
        w.params.group(),
        w.broker.public_key(),
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::BadSignature), "forged owner detected as {err:?}");
}

#[test]
fn equivocation_at_the_committed_sequence_is_rejected() {
    let mut w = world(0xB12A_0005);
    let (coin, coin_pk) = coin_with_committed_binding(&mut w);
    let proof = w.broker.binding_proof(&coin, &mut w.rng).unwrap();
    let committed = proof.leaf.binding.clone().unwrap();

    // The *coin key itself* signs a record at exactly the committed
    // sequence but naming a different holder — an equivocating owner
    // telling one payee one story and the ledger another. The signature
    // and version both check out; only leaf equality catches the fork.
    let coin_keys = w.peers[0].owned_coin(&coin).unwrap().coin_keys.clone();
    let other = DsaKeyPair::generate(w.params.group(), &mut w.rng);
    let value = {
        let mut wr = WireWriter::new();
        wr.int(other.public().element()).u64(committed.seq).u64(committed.expires.0);
        wr.finish()
    };
    let fork = subject_record(&mut w, &coin_pk, value, committed.seq, &coin_keys);
    assert!(fork.verify(w.params.group(), w.broker.public_key()), "the fork is genuinely signed");

    w.dht.inject_byzantine_record(fork);
    let err = dsd::read_public_state_verified(
        &mut w.dht,
        w.entry,
        &coin_pk,
        &proof,
        w.params.group(),
        w.broker.public_key(),
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::PublicBindingMismatch), "equivocation detected as {err:?}");
}

#[test]
fn proof_for_a_different_coin_proves_nothing() {
    let mut w = world(0xB12A_0006);
    let (coin, coin_pk) = coin_with_committed_binding(&mut w);

    // Mint a second, unrelated coin and take *its* (valid!) proof.
    let now = Timestamp(0);
    let (req, pending) = w.peers[0].create_purchase_request(PurchaseMode::Identified, &mut w.rng);
    let minted = w.broker.handle_purchase(&req, &mut w.rng).unwrap();
    let other_coin = w.peers[0].complete_purchase(minted, pending, now, &mut w.rng).unwrap();
    assert_ne!(coin, other_coin);
    let wrong_proof = w.broker.binding_proof(&other_coin, &mut w.rng).unwrap();
    wrong_proof.verify(w.params.group(), w.broker.public_key()).expect("valid for its own coin");

    // A Byzantine node pairing coin A's record with coin B's proof must
    // not launder the record past verification.
    let record = w.dht.get(w.entry, dsd::binding_key(&coin_pk)).unwrap();
    let err =
        dsd::verify_published_record(&record, &wrong_proof, w.params.group(), w.broker.public_key())
            .unwrap_err();
    assert!(matches!(err, CoreError::BadProof), "cross-coin proof detected as {err:?}");
}

#[test]
fn tampered_record_bytes_never_verify() {
    let mut w = world(0xB12A_0007);
    let (coin, coin_pk) = coin_with_committed_binding(&mut w);
    let proof = w.broker.binding_proof(&coin, &mut w.rng).unwrap();
    let honest = w.dht.get(w.entry, dsd::binding_key(&coin_pk)).unwrap();

    // Deterministically bit-rot the record's value bytes at a spread of
    // keyed positions — a Byzantine (or merely broken) node serving
    // corrupted storage. The record's signature covers the value, so
    // every flip must surface as a rejection, never as state.
    let mut inj = TamperInjector::new(TamperPlan::new(), 0xB12A_0007);
    for object in 0..32u64 {
        let mut hostile = honest.clone();
        let bit = inj.force(TamperTarget::Record, object, &mut hostile.value).expect("non-empty value");
        w.dht.inject_byzantine_record(hostile);
        let result = dsd::read_public_state_verified(
            &mut w.dht,
            w.entry,
            &coin_pk,
            &proof,
            w.params.group(),
            w.broker.public_key(),
        );
        match result {
            Err(
                CoreError::BadSignature
                | CoreError::Malformed
                | CoreError::StaleBinding { .. }
                | CoreError::PublicBindingMismatch,
            ) => {}
            Err(other) => panic!("bit {bit}: unexpected rejection {other:?}"),
            Ok(state) => panic!("bit {bit}: tampered record verified as {state:?}"),
        }
    }
    assert_eq!(inj.injected(), 32, "every probe flipped a bit");
    // Restoring the honest record restores acceptance — the rejections
    // above were the flips' doing, not a broken fixture.
    w.dht.inject_byzantine_record(honest);
    dsd::read_public_state_verified(
        &mut w.dht,
        w.entry,
        &coin_pk,
        &proof,
        w.params.group(),
        w.broker.public_key(),
    )
    .expect("honest record still verifies");
}

//! Chaos harness: full coin lifecycles under a seeded fault schedule.
//!
//! The network drops, duplicates, corrupts, and times out deliveries
//! (each at a few percent), severs one link for a partition window, and
//! the broker crashes and recovers from its journal mid-run. Clients go
//! through the retry-wrapped service helpers, so every resend is the
//! byte-identical request the server-side replay memos key on.
//!
//! Invariants checked:
//! * **Value is conserved** — every minted coin is either deposited
//!   exactly once or still circulating; broker-side counters agree with
//!   the client-side ledger.
//! * **No double deposits** — zero fraud cases: idempotent replays are
//!   answered from memos, never double-applied.
//! * **Crash recovery is exact** — [`Broker::recover`] replays the
//!   journal (round-tripped through bytes) to a broker whose snapshot
//!   and stats equal the pre-crash broker field by field.
//! * **Every accepted payment is eventually depositable** — after the
//!   fault injector is removed, every coin a payee accepted (and every
//!   coin stranded with the payer by an abandoned transfer) deposits.
//!
//! The default seed is pinned; override with `WHOPAY_CHAOS_SEED=n` to
//! explore other schedules.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use whopay::core::micropay::{MicropayHost, MicropaySender};
use whopay::core::service::{
    attach_broker, attach_client, attach_micropay_host, attach_peer, attach_shard_endpoints,
    attach_shard_endpoints_obs, clock, deposit_batch_via_obs, deposit_via_retry,
    install_wire_classifier, open_chain_via_retry, purchase_via_retry, redeem_chain_via,
    redeem_chain_via_retry, request_issue_via_retry, request_renewal_via_retry,
    request_transfer_via_retry, shared_clock, surface_recovery_violations, tick_via, SharedClock,
};
use whopay::core::{
    dsd, shard_of_chain, Broker, CheckpointState, CoinId, DepositRequest, Invariant, Journal,
    JournalOp, Judge, Peer, PeerId, PurchaseMode, ShardedBroker, SystemParams, Timestamp,
};
use whopay::crypto::dsa::DsaKeyPair;
use whopay::crypto::group_sig::GroupPublicKey;
use whopay::crypto::testing::{test_rng, tiny_group};
use whopay::dht::{Dht, DhtConfig, RingId};
use whopay::net::{
    EndpointId, FaultInjector, FaultPlan, FaultRates, Network, RetryPolicy, TamperInjector, TamperPlan,
    TamperTarget,
};
use whopay::obs::{install_panic_hook, FlightRecorder, Obs, Outcome, Tracer};

const LIFECYCLES: u64 = 24;
const CHECKPOINT_AT: u64 = 5;
const CRASH_AT: u64 = 11;

fn chaos_seed() -> u64 {
    std::env::var("WHOPAY_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC4A05)
}

struct ChaosWorld {
    net: Network,
    params: SystemParams,
    judge: Judge,
    broker: Rc<RefCell<Broker>>,
    broker_ep: EndpointId,
    owner: Rc<RefCell<Peer>>,
    owner_ep: EndpointId,
    payer: Peer,
    payer_ep: EndpointId,
    payee: Peer,
    payee_ep: EndpointId,
    clk: whopay::core::service::Clock,
    rng: rand::rngs::StdRng,
}

fn chaos_world(seed: u64) -> ChaosWorld {
    let mut rng = test_rng(seed);
    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);
    let mk = |id: u64, judge: &mut Judge, broker: &mut Broker, rng: &mut rand::rngs::StdRng| {
        let gk = judge.enroll(PeerId(id), rng);
        let p = Peer::new(
            PeerId(id),
            params.clone(),
            broker.public_key().clone(),
            judge.public_key().clone(),
            gk,
            rng,
        );
        broker.register_peer(PeerId(id), p.public_key().clone());
        p
    };
    let owner = mk(0, &mut judge, &mut broker, &mut rng);
    let payer = mk(1, &mut judge, &mut broker, &mut rng);
    let payee = mk(2, &mut judge, &mut broker, &mut rng);
    broker.enable_journal();

    let mut net = Network::new();
    install_wire_classifier(&mut net);
    let clk = clock(Timestamp(0));
    let broker = Rc::new(RefCell::new(broker));
    let broker_ep = attach_broker(&mut net, broker.clone(), clk.clone(), 1000 + seed);
    let owner = Rc::new(RefCell::new(owner));
    let owner_ep = attach_peer(&mut net, owner.clone(), clk.clone(), 2000 + seed);
    let payer_ep = attach_client(&mut net, "payer");
    let payee_ep = attach_client(&mut net, "payee");

    // The fault schedule: every delivery is at risk, and the payee–broker
    // link (the deposit path) is severed for one delivery window.
    let plan = FaultPlan::new()
        .with_default(FaultRates { drop: 0.02, duplicate: 0.02, corrupt: 0.02, timeout: 0.02 })
        .partition(payee_ep, broker_ep, 40, 80);
    net.install_faults(FaultInjector::new(plan, seed ^ 0xFA17));

    ChaosWorld {
        net,
        params,
        judge,
        broker,
        broker_ep,
        owner,
        owner_ep,
        payer,
        payer_ep,
        payee,
        payee_ep,
        clk,
        rng,
    }
}

/// Which entity ended up holding a coin the run could not deposit yet.
#[allow(clippy::large_enum_variant)]
enum Stranded {
    /// The payee holds it (deposit abandoned — the original request is
    /// kept so the drain resends the identical bytes).
    Payee(CoinId, DepositRequest),
    /// The payer holds it (transfer or acceptance abandoned).
    Payer(CoinId),
}

/// Crash the broker and rebuild it from its journal, asserting the
/// recovered state equals the pre-crash state field by field.
fn crash_and_recover(w: &mut ChaosWorld) {
    let (pre_snapshot, pre_stats, journal_bytes, keys) = {
        let b = w.broker.borrow();
        (b.snapshot(), b.stats(), b.journal().expect("journalling enabled").to_bytes(), b.export_keys())
    };
    // The journal survives the crash as bytes (the durable artifact); the
    // keys come from the operator's out-of-band config.
    let journal = Journal::from_bytes(&journal_bytes).expect("journal decodes");
    let recovered = Broker::recover(w.params.clone(), w.judge.public_key().clone(), keys, &journal);
    let post = recovered.snapshot();
    assert_eq!(post.registered, pre_snapshot.registered, "registered peers survive recovery");
    assert_eq!(post.coins, pre_snapshot.coins, "coin records survive recovery exactly");
    assert_eq!(post.fraud, pre_snapshot.fraud, "fraud cases survive recovery");
    assert_eq!(recovered.stats(), pre_stats, "counters survive recovery");
    *w.broker.borrow_mut() = recovered;
}

#[test]
fn lifecycles_under_faults_conserve_value() {
    let seed = chaos_seed();
    let mut w = chaos_world(seed);
    let policy = RetryPolicy::new(8).backoff(10, 1_000).budget(100_000);
    // Clients run traced: every retry attempt chains under its failed
    // predecessor in the flight recorder, and if any assertion below
    // trips, the panic hook dumps the recorded run for the post-mortem.
    let flight = std::sync::Arc::new(FlightRecorder::new());
    install_panic_hook(&flight);
    let obs = Obs::with_tracer(Tracer::new(flight.clone()));

    let mut deposited: Vec<CoinId> = Vec::new();
    let mut stranded: Vec<Stranded> = Vec::new();

    for i in 0..LIFECYCLES {
        let now = Timestamp(100 * i);
        w.clk.set(now);

        // Purchase: owner buys a coin from the broker.
        let coin = {
            let mut owner = w.owner.borrow_mut();
            match purchase_via_retry(
                &mut w.net,
                w.owner_ep,
                w.broker_ep,
                &mut owner,
                PurchaseMode::Identified,
                now,
                &policy,
                &mut w.rng,
                &obs,
            ) {
                Ok(coin) => coin,
                // An abandoned purchase may still have minted server-side;
                // conservation is asserted from broker state below.
                Err(_) => continue,
            }
        };

        // Issue: owner pays the payer.
        let (invite, session) = w.payer.begin_receive(&mut w.rng);
        let grant = match request_issue_via_retry(
            &mut w.net, w.payer_ep, w.owner_ep, coin, &invite, &policy, &mut w.rng, &obs,
        ) {
            Ok(grant) => grant,
            Err(_) => continue,
        };
        if w.payer.accept_grant(grant, session, now).is_err() {
            continue;
        }

        // Transfer: payer pays the payee via the owner.
        let (invite2, session2) = w.payee.begin_receive(&mut w.rng);
        let treq = w.payer.request_transfer(coin, &invite2, &mut w.rng).expect("payer holds");
        let transferred = match request_transfer_via_retry(
            &mut w.net, w.payer_ep, w.owner_ep, treq, false, &policy, &mut w.rng, &obs,
        ) {
            Ok(grant2) => w.payee.accept_grant(grant2, session2, now).is_ok(),
            Err(_) => false,
        };
        if !transferred {
            // The payer never relinquished: its binding still deposits.
            stranded.push(Stranded::Payer(coin));
            continue;
        }
        w.payer.complete_transfer(coin);

        // Every third lifecycle the payee renews before depositing.
        if i % 3 == 2 {
            let rreq = w.payee.request_renewal(coin, &mut w.rng).expect("payee holds");
            if let Ok(renewed) = request_renewal_via_retry(
                &mut w.net, w.payee_ep, w.owner_ep, rreq, false, &policy, &mut w.rng, &obs,
            ) {
                let _ = w.payee.apply_renewal(coin, renewed);
            }
        }

        // Deposit: built once so an abandoned attempt can be drained with
        // the identical bytes (and answered from the replay memo if the
        // broker already applied it).
        let dreq = w.payee.request_deposit(coin, &mut w.rng).expect("payee holds");
        match deposit_via_retry(
            &mut w.net,
            w.payee_ep,
            w.broker_ep,
            dreq.clone(),
            &policy,
            &mut w.rng,
            &obs,
        ) {
            Ok(receipt) => {
                assert_eq!(receipt.coin, coin);
                w.payee.complete_deposit(coin);
                deposited.push(coin);
            }
            Err(_) => stranded.push(Stranded::Payee(coin, dreq)),
        }

        if i == CHECKPOINT_AT {
            w.broker.borrow_mut().checkpoint_journal();
            assert_eq!(
                w.broker.borrow().journal().unwrap().len(),
                1,
                "checkpoint folds the journal to one entry"
            );
        }
        if i == CRASH_AT {
            crash_and_recover(&mut w);
        }
    }

    // The schedule really injected faults, and the retry layer really
    // absorbed some of them.
    let injector = w.net.clear_faults().expect("injector installed");
    let fstats = injector.stats();
    assert!(fstats.total() > 0, "no faults injected: {fstats:?}");
    assert!(fstats.partitions > 0, "partition window never hit: {fstats:?}");
    assert!(policy.stats().retries > 0, "no retries exercised: {:?}", policy.stats());

    // Fault-free drain: every accepted payment is eventually depositable.
    let now = Timestamp(100 * LIFECYCLES);
    w.clk.set(now);
    for s in stranded {
        match s {
            Stranded::Payee(coin, dreq) => {
                let receipt = deposit_via_retry(
                    &mut w.net,
                    w.payee_ep,
                    w.broker_ep,
                    dreq,
                    &policy,
                    &mut w.rng,
                    &obs,
                )
                .expect("drained payee deposit");
                assert_eq!(receipt.coin, coin);
                w.payee.complete_deposit(coin);
                deposited.push(coin);
            }
            Stranded::Payer(coin) => {
                let dreq = w.payer.request_deposit(coin, &mut w.rng).expect("payer holds");
                let receipt = deposit_via_retry(
                    &mut w.net,
                    w.payer_ep,
                    w.broker_ep,
                    dreq,
                    &policy,
                    &mut w.rng,
                    &obs,
                )
                .expect("drained payer deposit");
                assert_eq!(receipt.coin, coin);
                w.payer.complete_deposit(coin);
                deposited.push(coin);
            }
        }
    }

    // Value conservation, from the broker's own books: every minted coin
    // is deposited exactly once or still circulating, the deposited set
    // matches the client-side ledger, and no fraud case was raised (the
    // only re-presentations were idempotent replays).
    let broker = w.broker.borrow();
    let stats = broker.stats();
    let snap = broker.snapshot();
    let deposited_broker = snap.coins.iter().filter(|(_, s)| s.deposited).count();
    assert_eq!(snap.coins.len() as u64, stats.purchases, "every mint has a record");
    assert_eq!(deposited_broker, deposited.len(), "broker and client ledgers agree");
    assert_eq!(stats.deposits as usize, deposited.len(), "each coin credited exactly once");
    let mut unique = deposited.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), deposited.len(), "no coin deposited twice");
    assert!(broker.fraud_cases().is_empty(), "replays must not raise fraud: {:?}", {
        broker.fraud_cases()
    });
    for coin in &deposited {
        assert!(!broker.is_circulating(coin), "deposited coin still circulating");
    }

    // The always-on auditor watched every committed mutation (including
    // the journal replay during the mid-run crash) and agrees.
    let audit = broker.audit();
    assert!(audit.ok(), "invariant auditor flagged violations: {:?}", audit.violations());
    assert_eq!(audit.minted(), stats.purchases, "auditor saw every mint");
    assert_eq!(audit.deposited(), stats.deposits, "auditor saw every deposit");

    // The traced run left a usable flight record: at least one retried
    // attempt chains under a failed predecessor span.
    let events = flight.snapshot();
    let retried = events.iter().find(|e| e.retry.is_some()).expect("faulted run records retries");
    let trace = retried.trace.expect("retried spans are traced");
    assert!(
        events.iter().any(|e| e.trace.is_some_and(|t| t.span_id == trace.parent_span_id)),
        "retry attempt's failed predecessor is in the flight record"
    );
}

// ---------------------------------------------------------------------------
// Sharded-broker chaos: the same lifecycle storm against a broker whose
// coin state is split across shards, including a mid-run crash of one
// shard and an injected cross-shard commit loss.
// ---------------------------------------------------------------------------

const SHARDS: usize = 3;
const CRASH_SHARD: usize = 1;

struct ShardedWorld {
    net: Network,
    sharded: Arc<ShardedBroker>,
    shard_eps: Vec<EndpointId>,
    owner: Rc<RefCell<Peer>>,
    owner_ep: EndpointId,
    payer: Peer,
    payer_ep: EndpointId,
    payee: Peer,
    payee_ep: EndpointId,
    clk: whopay::core::service::Clock,
    sclk: SharedClock,
    rng: rand::rngs::StdRng,
}

fn sharded_world(seed: u64, shards: usize) -> ShardedWorld {
    let mut rng = test_rng(seed);
    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let sharded =
        Arc::new(ShardedBroker::new(params.clone(), judge.public_key().clone(), shards, &mut rng));
    let mk = |id: u64, judge: &mut Judge, rng: &mut rand::rngs::StdRng| {
        let gk = judge.enroll(PeerId(id), rng);
        let p = Peer::new(
            PeerId(id),
            params.clone(),
            sharded.public_key().clone(),
            judge.public_key().clone(),
            gk,
            rng,
        );
        sharded.register_peer(PeerId(id), p.public_key().clone());
        p
    };
    let owner = mk(0, &mut judge, &mut rng);
    let payer = mk(1, &mut judge, &mut rng);
    let payee = mk(2, &mut judge, &mut rng);
    sharded.enable_journals();

    let mut net = Network::new();
    install_wire_classifier(&mut net);
    let clk = clock(Timestamp(0));
    let sclk = shared_clock(Timestamp(0));
    let shard_eps = attach_shard_endpoints(&mut net, sharded.clone(), sclk.clone(), 1000 + seed);
    let owner = Rc::new(RefCell::new(owner));
    let owner_ep = attach_peer(&mut net, owner.clone(), clk.clone(), 2000 + seed);
    let payer_ep = attach_client(&mut net, "payer");
    let payee_ep = attach_client(&mut net, "payee");

    // Same storm as the single-broker run; the severed link covers the
    // deposit path to shard 0.
    let plan = FaultPlan::new()
        .with_default(FaultRates { drop: 0.02, duplicate: 0.02, corrupt: 0.02, timeout: 0.02 })
        .partition(payee_ep, shard_eps[0], 40, 80);
    net.install_faults(FaultInjector::new(plan, seed ^ 0xFA17));

    ShardedWorld {
        net,
        sharded,
        shard_eps,
        owner,
        owner_ep,
        payer,
        payer_ep,
        payee,
        payee_ep,
        clk,
        sclk,
        rng,
    }
}

/// Crash one shard and rebuild it in place from its journal, asserting
/// the recovered shard equals the pre-crash shard field by field while
/// the other shards keep serving untouched.
fn crash_and_recover_shard(sharded: &ShardedBroker, s: usize) {
    let (pre_snapshot, pre_stats) = {
        let b = sharded.lock_shard(s);
        (b.snapshot(), b.stats())
    };
    let bytes = sharded.journal_bytes(s).expect("journalling enabled");
    let journal = Journal::from_bytes(&bytes).expect("shard journal decodes");
    sharded.recover_shard(s, &journal);
    let b = sharded.lock_shard(s);
    assert_eq!(b.snapshot(), pre_snapshot, "shard {s} recovery reconverges exactly");
    assert_eq!(b.stats(), pre_stats, "shard {s} counters survive recovery");
    assert_eq!(b.sig_cache().len(), 0, "shard recovery re-primes lazily, not during replay");
}

#[test]
fn sharded_lifecycles_survive_faults_and_shard_crash() {
    let seed = chaos_seed();
    let mut w = sharded_world(seed, SHARDS);
    let policy = RetryPolicy::new(8).backoff(10, 1_000).budget(100_000);
    let obs = Obs::disabled();

    let mut deposited: Vec<CoinId> = Vec::new();
    let mut stranded: Vec<Stranded> = Vec::new();

    for i in 0..LIFECYCLES {
        let now = Timestamp(100 * i);
        w.clk.set(now);
        w.sclk.store(now.0, Ordering::SeqCst);

        // Purchase: any shard endpoint accepts it — the router inside
        // the sharded broker locks the owning shard either way.
        let purchase_ep = w.shard_eps[(i as usize) % SHARDS];
        let coin = {
            let mut owner = w.owner.borrow_mut();
            match purchase_via_retry(
                &mut w.net,
                w.owner_ep,
                purchase_ep,
                &mut owner,
                PurchaseMode::Identified,
                now,
                &policy,
                &mut w.rng,
                &obs,
            ) {
                Ok(coin) => coin,
                Err(_) => continue,
            }
        };

        let (invite, session) = w.payer.begin_receive(&mut w.rng);
        let grant = match request_issue_via_retry(
            &mut w.net, w.payer_ep, w.owner_ep, coin, &invite, &policy, &mut w.rng, &obs,
        ) {
            Ok(grant) => grant,
            Err(_) => continue,
        };
        if w.payer.accept_grant(grant, session, now).is_err() {
            continue;
        }

        let (invite2, session2) = w.payee.begin_receive(&mut w.rng);
        let treq = w.payer.request_transfer(coin, &invite2, &mut w.rng).expect("payer holds");
        let transferred = match request_transfer_via_retry(
            &mut w.net, w.payer_ep, w.owner_ep, treq, false, &policy, &mut w.rng, &obs,
        ) {
            Ok(grant2) => w.payee.accept_grant(grant2, session2, now).is_ok(),
            Err(_) => false,
        };
        if !transferred {
            stranded.push(Stranded::Payer(coin));
            continue;
        }
        w.payer.complete_transfer(coin);

        // Deposit on the coin's *owning* shard endpoint: the router keeps
        // the request on an uncontended lock and the replay memo local.
        let dep_ep = w.shard_eps[w.sharded.shard_of_coin(&coin)];
        let dreq = w.payee.request_deposit(coin, &mut w.rng).expect("payee holds");
        match deposit_via_retry(&mut w.net, w.payee_ep, dep_ep, dreq.clone(), &policy, &mut w.rng, &obs)
        {
            Ok(receipt) => {
                assert_eq!(receipt.coin, coin);
                w.payee.complete_deposit(coin);
                deposited.push(coin);
            }
            Err(_) => stranded.push(Stranded::Payee(coin, dreq)),
        }

        if i == CHECKPOINT_AT {
            w.sharded.checkpoint_journals();
        }
        if i == CRASH_AT {
            crash_and_recover_shard(&w.sharded, CRASH_SHARD);
        }
    }

    let injector = w.net.clear_faults().expect("injector installed");
    let fstats = injector.stats();
    assert!(fstats.total() > 0, "no faults injected: {fstats:?}");
    assert!(policy.stats().retries > 0, "no retries exercised: {:?}", policy.stats());

    // Fault-free drain, routed by owning shard.
    let now = Timestamp(100 * LIFECYCLES);
    w.clk.set(now);
    w.sclk.store(now.0, Ordering::SeqCst);
    for s in stranded {
        match s {
            Stranded::Payee(coin, dreq) => {
                let dep_ep = w.shard_eps[w.sharded.shard_of_coin(&coin)];
                let receipt =
                    deposit_via_retry(&mut w.net, w.payee_ep, dep_ep, dreq, &policy, &mut w.rng, &obs)
                        .expect("drained payee deposit");
                assert_eq!(receipt.coin, coin);
                w.payee.complete_deposit(coin);
                deposited.push(coin);
            }
            Stranded::Payer(coin) => {
                let dep_ep = w.shard_eps[w.sharded.shard_of_coin(&coin)];
                let dreq = w.payer.request_deposit(coin, &mut w.rng).expect("payer holds");
                let receipt =
                    deposit_via_retry(&mut w.net, w.payer_ep, dep_ep, dreq, &policy, &mut w.rng, &obs)
                        .expect("drained payer deposit");
                assert_eq!(receipt.coin, coin);
                w.payer.complete_deposit(coin);
                deposited.push(coin);
            }
        }
    }

    // Value conservation across every shard's books: minted coins are
    // deposited exactly once or still circulating, no shard raised a
    // fraud case, and the aggregated auditors agree.
    let stats = w.sharded.stats();
    assert_eq!(stats.deposits as usize, deposited.len(), "each coin credited exactly once");
    let mut unique = deposited.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), deposited.len(), "no coin deposited twice");
    assert_eq!(w.sharded.total_minted(), stats.purchases, "auditors saw every mint");
    assert_eq!(w.sharded.total_deposited(), stats.deposits, "auditors saw every deposit");
    assert!(w.sharded.audit_ok(), "violations: {:?}", w.sharded.violations());
    for i in 0..SHARDS {
        let shard = w.sharded.lock_shard(i);
        assert!(shard.fraud_cases().is_empty(), "shard {i} raised fraud: {:?}", shard.fraud_cases());
    }
    for coin in &deposited {
        let shard = w.sharded.lock_shard(w.sharded.shard_of_coin(coin));
        assert!(!shard.is_circulating(coin), "deposited coin still circulating");
    }
    // The run genuinely exercised the sharding: the coin-key hash spread
    // traffic over more than one shard.
    let shards_touched: std::collections::BTreeSet<usize> =
        deposited.iter().map(|c| w.sharded.shard_of_coin(c)).collect();
    assert!(shards_touched.len() >= 2, "coins all hashed to one shard: {shards_touched:?}");
}

#[test]
fn lost_cross_shard_commit_raises_violation_and_dumps_flight() {
    let seed = chaos_seed() ^ 0x10_57;
    let mut rng = test_rng(seed);
    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let sharded = Arc::new(ShardedBroker::new(params.clone(), judge.public_key().clone(), 4, &mut rng));
    let mk = |id: u64, judge: &mut Judge, rng: &mut rand::rngs::StdRng| {
        let gk = judge.enroll(PeerId(id), rng);
        let p = Peer::new(
            PeerId(id),
            params.clone(),
            sharded.public_key().clone(),
            judge.public_key().clone(),
            gk,
            rng,
        );
        sharded.register_peer(PeerId(id), p.public_key().clone());
        p
    };
    let mut owner = mk(1, &mut judge, &mut rng);
    let mut holder = mk(2, &mut judge, &mut rng);

    // Mint a handful of coins straight into the holder's wallet; the
    // coin-id hash spreads them over several shards.
    let now = Timestamp(0);
    let coins: Vec<CoinId> = (0..8)
        .map(|_| {
            let (req, pending) = owner.create_purchase_request(PurchaseMode::Identified, &mut rng);
            let minted = sharded.handle_purchase(&req, &mut rng).unwrap();
            let coin = owner.complete_purchase(minted, pending, now, &mut rng).unwrap();
            let (invite, session) = holder.begin_receive(&mut rng);
            let grant = owner.issue_coin(coin, &invite, now, &mut rng).unwrap();
            holder.accept_grant(grant, session, now).unwrap();
            coin
        })
        .collect();
    let shards_touched: std::collections::BTreeSet<usize> =
        coins.iter().map(|c| sharded.shard_of_coin(c)).collect();
    assert!(shards_touched.len() >= 2, "batch must cross shards: {shards_touched:?}");

    let mut net = Network::new();
    install_wire_classifier(&mut net);
    let flight = std::sync::Arc::new(FlightRecorder::new());
    let obs = Obs::with_tracer(Tracer::new(flight.clone()));
    let sclk = shared_clock(now);
    let shard_eps = attach_shard_endpoints_obs(&mut net, sharded.clone(), sclk, seed, obs.clone());
    let holder_ep = attach_client(&mut net, "holder");

    // Sabotage the next cross-shard batch: one shard's commit count is
    // dropped on the way back to the cross-shard ledger. The deposits
    // themselves still apply — the depositor sees nothing wrong.
    let victim = sharded.shard_of_coin(&coins[0]);
    sharded.inject_lost_commit(victim);

    let requests: Vec<DepositRequest> =
        coins.iter().map(|&c| holder.request_deposit(c, &mut rng).unwrap()).collect();
    let outcomes =
        deposit_batch_via_obs(&mut net, holder_ep, shard_eps[0], requests, &obs).expect("batch call");
    assert_eq!(outcomes.len(), coins.len());
    for outcome in &outcomes {
        assert!(outcome.is_ok(), "lost commit must not surface to the depositor: {outcome:?}");
    }
    assert_eq!(sharded.stats().deposits, coins.len() as u64, "every deposit applied");

    // …but the cross-shard ledger caught the handoff losing value.
    let violations = sharded.violations();
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == Invariant::ValueConservation && v.detail.contains("cross-shard")),
        "lost commit not detected: {violations:?}"
    );
    assert!(!sharded.audit_ok(), "audit must fail after a lost commit");

    // The violation surfaced through the endpoint's dispatch as a failed
    // event, and the flight recorder holds the dump material.
    let events = flight.snapshot();
    assert!(
        events.iter().any(|e| e.outcome == Outcome::Error
            && e.detail.as_deref().is_some_and(|d| d.contains("value_conservation"))),
        "violation event missing from flight record"
    );
}

// ---------------------------------------------------------------------------
// Streaming-micropay chaos: a PayWord stream over the same faulty wire —
// ticks resent byte-identically until they land, periodic redemption at
// the sharded broker, and a mid-stream crash+recovery of the shard that
// owns the chain.
// ---------------------------------------------------------------------------

const STREAM_CAPACITY: u64 = 96;
const STREAM_EVERY: u64 = 8;
const STREAM_SETTLE: u64 = 16;
const STREAM_CRASH_AT: u64 = 40;

#[test]
fn streaming_micropay_survives_faults_and_mid_stream_shard_crash() {
    let seed = chaos_seed() ^ 0x571C;
    let mut rng = test_rng(seed);
    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let gpk = judge.public_key().clone();
    let sharded = Arc::new(ShardedBroker::new(params.clone(), gpk.clone(), SHARDS, &mut rng));
    sharded.enable_journals();
    let policy = RetryPolicy::new(8).backoff(10, 1_000).budget(100_000);
    let obs = Obs::disabled();

    let mut net = Network::new();
    install_wire_classifier(&mut net);
    let sclk = shared_clock(Timestamp(0));
    let shard_eps = attach_shard_endpoints(&mut net, sharded.clone(), sclk, 1000 + seed);
    let host =
        Rc::new(RefCell::new(MicropayHost::new(params.group().clone(), gpk.clone(), STREAM_SETTLE)));
    let host_ep = attach_micropay_host(&mut net, host.clone());
    let sender_ep = attach_client(&mut net, "stream-sender");
    let relay_ep = attach_client(&mut net, "relay");

    // Full fault rates on every link, plus a severed tick path for one
    // delivery window — the stream must ride it out by resending.
    let plan = FaultPlan::new()
        .with_default(FaultRates { drop: 0.02, duplicate: 0.02, corrupt: 0.02, timeout: 0.02 })
        .partition(sender_ep, host_ep, 40, 80);
    net.install_faults(FaultInjector::new(plan, seed ^ 0xFA17));

    // The sender opens a group-signed chain with the relay over the wire;
    // re-sending the identical commitment is answered idempotently.
    let gk = judge.enroll(PeerId(9), &mut rng);
    let (mut sender, commitment) =
        MicropaySender::open(params.group(), &gpk, &gk, STREAM_CAPACITY, STREAM_EVERY, &mut rng);
    let chain =
        open_chain_via_retry(&mut net, sender_ep, host_ep, commitment.clone(), &policy, &mut rng, &obs)
            .expect("chain opens under faults");
    let reopened =
        open_chain_via_retry(&mut net, sender_ep, host_ep, commitment, &policy, &mut rng, &obs)
            .expect("replayed open answered");
    assert_eq!(reopened, chain, "open is idempotent");

    let owning = shard_of_chain(&chain, SHARDS);
    let redeem_ep = shard_eps[owning];

    let mut tick_resends = 0u64;
    let mut redemptions = 0u64;
    let mut crashed = false;

    for i in 0..STREAM_CAPACITY {
        // Ticks are idempotent (a duplicate credits zero), so the sender
        // resends the *same* payword until the relay acknowledges it.
        let word = sender.pay(1).expect("within capacity");
        let mut acked = false;
        for attempt in 0..200 {
            // The ack itself crosses the faulty wire, so a "successful"
            // reply may be garbage; the loop trusts only the relay's own
            // books (which the sender would learn via the next good ack).
            let _ = tick_via(&mut net, sender_ep, host_ep, chain, word);
            if host.borrow().receiver(&chain).expect("open chain").total() == i + 1 {
                tick_resends += attempt;
                acked = true;
                break;
            }
        }
        assert!(acked, "tick {i} never landed after 200 resends");

        // Periodic settlement: once the relay's unsettled balance crosses
        // the threshold it redeems at the chain's owning shard, and a
        // byte-identical re-presentation is answered from the replay memo
        // without re-crediting.
        if host.borrow().receiver(&chain).expect("open chain").settlement_due() {
            let request = host.borrow().receiver(&chain).expect("open chain").redeem_request();
            // The retry helper resends on retryable verdicts; the outer
            // loop additionally absorbs corruption in *either* direction:
            // a garbled request can draw a fatal verdict (a flipped index
            // byte reads as stale), and a garbled receipt must not be
            // trusted — only a receipt matching the frontier this request
            // provably advances to is accepted. Replay memos make every
            // resend safe.
            let expect_total = request.payword.index;
            let mut landed = None;
            for _ in 0..16 {
                match redeem_chain_via_retry(
                    &mut net,
                    relay_ep,
                    redeem_ep,
                    request.clone(),
                    &policy,
                    &mut rng,
                    &obs,
                ) {
                    Ok(r) if r.chain == chain && r.total == expect_total => {
                        landed = Some(r);
                        break;
                    }
                    _ => continue,
                }
            }
            let receipt = landed.expect("redemption lands under faults");
            host.borrow_mut()
                .receiver_mut(&chain)
                .expect("open chain")
                .mark_settled_upto(receipt.total);
            redemptions += 1;

            let commits_before = sharded.stats().redemptions;
            let mut replayed = None;
            for _ in 0..16 {
                match redeem_chain_via_retry(
                    &mut net,
                    relay_ep,
                    redeem_ep,
                    request.clone(),
                    &policy,
                    &mut rng,
                    &obs,
                ) {
                    Ok(r) if r == receipt => {
                        replayed = Some(r);
                        break;
                    }
                    _ => continue,
                }
            }
            assert!(replayed.is_some(), "replay answered with the original receipt");
            assert_eq!(
                sharded.stats().redemptions,
                commits_before,
                "replay must not redeem the chain twice"
            );
        }

        // Mid-stream, after value has settled, the owning shard crashes
        // and rebuilds from its journal — bit-identically, per the
        // snapshot equality inside the helper.
        if i == STREAM_CRASH_AT {
            assert!(redemptions > 0, "crash must land after at least one redemption");
            crash_and_recover_shard(&sharded, owning);
            crashed = true;
        }
    }

    // The storm really hit: faults were injected, the partition window
    // passed over the tick path, and resends absorbed the damage.
    let injector = net.clear_faults().expect("injector installed");
    let fstats = injector.stats();
    assert!(fstats.total() > 0, "no faults injected: {fstats:?}");
    assert!(fstats.partitions > 0, "partition window never hit: {fstats:?}");
    assert!(tick_resends > 0, "no tick was ever resent");
    assert!(crashed, "the mid-stream crash never ran");

    // Fault-free drain: the tail of the stream settles.
    let outstanding = host.borrow().receiver(&chain).expect("open chain").outstanding();
    if outstanding > 0 {
        let request = host.borrow().receiver(&chain).expect("open chain").redeem_request();
        let receipt = redeem_chain_via(&mut net, relay_ep, redeem_ep, request)
            .expect("final fault-free redemption");
        host.borrow_mut().receiver_mut(&chain).expect("open chain").mark_settled_upto(receipt.total);
        redemptions += 1;
    }

    // Value conservation, end to end: every unit the sender released was
    // credited at the relay exactly once and settled at the broker
    // exactly once — across drops, duplicates, corruption, a partition,
    // and a shard crash.
    let host_ref = host.borrow();
    let receiver = host_ref.receiver(&chain).expect("open chain");
    assert_eq!(receiver.total(), STREAM_CAPACITY, "every tick credited at the relay");
    assert_eq!(receiver.outstanding(), 0, "no unsettled value left");
    assert_eq!(
        sharded.settled_micropay_value(),
        STREAM_CAPACITY,
        "broker books equal the sender's spend"
    );
    assert_eq!(
        sharded.lock_shard(owning).chain_settled(&chain),
        Some(STREAM_CAPACITY),
        "the owning shard holds the whole settled frontier"
    );
    let stats = sharded.stats();
    assert_eq!(stats.redemptions, redemptions, "each frontier advance committed exactly once");
    assert!(stats.replays > 0, "replay memos never answered a duplicate");
    assert!(sharded.audit_ok(), "violations: {:?}", sharded.violations());
}

#[test]
fn same_seed_same_outcome() {
    // The whole chaotic run is deterministic in its seed: broker books,
    // fault history, and retry counters all replay exactly.
    fn run(seed: u64) -> (u64, u64, u64, u64) {
        let mut w = chaos_world(seed);
        let policy = RetryPolicy::new(6).backoff(10, 500).budget(50_000);
        let obs = Obs::disabled();
        let mut ok = 0u64;
        for i in 0..8 {
            let now = Timestamp(100 * i);
            w.clk.set(now);
            let mut owner = w.owner.borrow_mut();
            if purchase_via_retry(
                &mut w.net,
                w.owner_ep,
                w.broker_ep,
                &mut owner,
                PurchaseMode::Identified,
                now,
                &policy,
                &mut w.rng,
                &obs,
            )
            .is_ok()
            {
                ok += 1;
            }
        }
        let stats = w.broker.borrow().stats();
        (ok, stats.purchases, w.net.fault_stats().decisions, policy.stats().attempts)
    }
    assert_eq!(run(7), run(7));
    assert_eq!(run(8), run(8));
}

// ---------------------------------------------------------------------------
// Adversarial corruption chaos: a seeded TamperInjector bit-rots the
// broker's durable artifacts — journal frames, the embedded checkpoint
// snapshot, DHT-served binding records — and the tamper-evidence
// machinery must catch every single injection (strict decode rejection,
// a recovered-seq shortfall against the out-of-band `(root, seq)`
// commitment, a StateCommitment violation from replay verification, or
// a proof-checked lookup failure), while an identically-seeded clean run
// raises nothing at all.
// ---------------------------------------------------------------------------

/// The durable leftovers of a crashed journalling broker, plus what the
/// operator keeps out of band (keys, the last `(root, seq)`), plus the
/// pre-crash snapshot the clean control reconverges to.
struct DurableWorld {
    params: SystemParams,
    gpk: GroupPublicKey,
    keys: DsaKeyPair,
    journal_bytes: Vec<u8>,
    last_seq: u64,
    snapshot: CheckpointState,
}

/// Runs a journalling broker through enough lifecycle to leave a journal
/// with a mid-stream checkpoint *and* a live tail, then "crashes" it by
/// keeping only its durable bytes.
fn durable_world(seed: u64) -> DurableWorld {
    let mut rng = test_rng(seed);
    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let gpk = judge.public_key().clone();
    let mut broker = Broker::new(params.clone(), gpk.clone(), &mut rng);
    broker.enable_journal();
    let mk = |id: u64, judge: &mut Judge, broker: &mut Broker, rng: &mut rand::rngs::StdRng| {
        let gk = judge.enroll(PeerId(id), rng);
        let p =
            Peer::new(PeerId(id), params.clone(), broker.public_key().clone(), gpk.clone(), gk, rng);
        broker.register_peer(PeerId(id), p.public_key().clone());
        p
    };
    let mut owner = mk(1, &mut judge, &mut broker, &mut rng);
    let mut holder = mk(2, &mut judge, &mut broker, &mut rng);
    let now = Timestamp(0);
    let coins: Vec<CoinId> = (0..6u64)
        .map(|i| {
            let (req, pending) = owner.create_purchase_request(PurchaseMode::Identified, &mut rng);
            let minted = broker.handle_purchase(&req, &mut rng).unwrap();
            let coin = owner.complete_purchase(minted, pending, now, &mut rng).unwrap();
            let (invite, session) = holder.begin_receive(&mut rng);
            let grant = owner.issue_coin(coin, &invite, now, &mut rng).unwrap();
            holder.accept_grant(grant, session, now).unwrap();
            if i == 3 {
                broker.checkpoint_journal();
            }
            coin
        })
        .collect();
    let dep = holder.request_deposit(coins[0], &mut rng).unwrap();
    broker.handle_deposit(&dep, now).unwrap();
    let journal = broker.journal().expect("journalling enabled");
    assert!(journal.len() > 1, "journal must keep a live tail after the checkpoint");
    let (_, last_seq) = broker.committed_root().expect("ledger is on");
    DurableWorld {
        params,
        gpk,
        keys: broker.export_keys(),
        journal_bytes: journal.to_bytes(),
        last_seq,
        snapshot: broker.snapshot(),
    }
}

/// Byte spans of each journal frame, in entry order.
fn frame_spans(bytes: &[u8]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let len = u64::from_be_bytes(bytes[pos..pos + 8].try_into().expect("framed journal")) as usize;
        spans.push(pos..pos + 8 + len);
        pos += 8 + len;
    }
    assert_eq!(pos, bytes.len(), "journal is well framed");
    spans
}

/// Walks the tamper injector over every journal frame: checkpoint frames
/// draw from the snapshot stream, ordinary entries from the journal
/// stream. Returns the (possibly corrupted) bytes.
fn tamper_journal(w: &DurableWorld, inj: &mut TamperInjector) -> Vec<u8> {
    let journal = Journal::from_bytes(&w.journal_bytes).expect("clean journal decodes");
    let mut bytes = w.journal_bytes.clone();
    for (i, span) in frame_spans(&w.journal_bytes).into_iter().enumerate() {
        let target = match journal.entries()[i].op {
            JournalOp::Checkpoint(_) => TamperTarget::Snapshot,
            _ => TamperTarget::Journal,
        };
        inj.tamper(target, i as u64, &mut bytes[span]);
    }
    bytes
}

#[test]
fn adversarial_journal_corruption_is_always_detected_with_flight_dumps() {
    let seed = chaos_seed() ^ 0x7A3B;
    let w = durable_world(seed);

    // Clean control: an identically-seeded zero-rate sweep leaves the
    // bytes untouched, recovery reconverges exactly, and nothing — not
    // one violation, not one failed event — is raised. Zero false alarms.
    {
        let mut inj = TamperInjector::new(TamperPlan::new(), seed);
        let bytes = tamper_journal(&w, &mut inj);
        assert_eq!(inj.injected(), 0, "zero-rate plan must not tamper");
        assert_eq!(bytes, w.journal_bytes);
        let flight = Arc::new(FlightRecorder::new());
        let obs = Obs::with_tracer(Tracer::new(flight.clone()));
        let (clean, dropped) = Journal::from_bytes_tolerant(&bytes).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(clean.last_seq(), Some(w.last_seq));
        let recovered = Broker::recover(w.params.clone(), w.gpk.clone(), w.keys.clone(), &clean);
        assert_eq!(surface_recovery_violations(&recovered, &obs), 0, "clean-run false alarm");
        assert_eq!(recovered.snapshot(), w.snapshot, "clean recovery reconverges exactly");
        assert!(
            flight.snapshot().iter().all(|e| e.outcome != Outcome::Error),
            "clean run left failure events in the flight record"
        );
    }

    // Adversarial sweep: every variant whose injector fired must be
    // detected by *some* layer — and when the detector is replay root
    // verification, the violation must surface into the flight recorder.
    let mut corrupted_runs = 0usize;
    let mut detected_by = [0usize; 3]; // [decode, seq shortfall, root mismatch]
    for variant in 0..24u64 {
        let plan = TamperPlan { journal: 0.35, snapshot: 0.6, record: 0.0 };
        let mut inj = TamperInjector::new(plan, seed ^ (variant << 8));
        let bytes = tamper_journal(&w, &mut inj);
        if inj.injected() == 0 {
            continue;
        }
        corrupted_runs += 1;
        let flight = Arc::new(FlightRecorder::new());
        let obs = Obs::with_tracer(Tracer::new(flight.clone()));
        let detected = match Journal::from_bytes_tolerant(&bytes) {
            Err(_) => {
                detected_by[0] += 1;
                true
            }
            Ok((journal, dropped)) => {
                if dropped > 0 || journal.last_seq() != Some(w.last_seq) {
                    detected_by[1] += 1;
                    true
                } else {
                    let recovered =
                        Broker::recover(w.params.clone(), w.gpk.clone(), w.keys.clone(), &journal);
                    let surfaced = surface_recovery_violations(&recovered, &obs);
                    let flagged = recovered
                        .audit()
                        .violations()
                        .iter()
                        .any(|v| v.invariant == Invariant::StateCommitment);
                    if flagged {
                        detected_by[2] += 1;
                        assert!(surfaced > 0, "violations must surface as events");
                        let events = flight.snapshot();
                        assert!(
                            events.iter().any(|e| e.outcome == Outcome::Error
                                && e.detail.as_deref().is_some_and(|d| d.contains("state_commitment"))),
                            "variant {variant}: state_commitment event missing from flight record"
                        );
                        true
                    } else {
                        // Nothing alarmed: the only acceptable outcome is
                        // bit-identical reconvergence, and a run with
                        // injections must not get here at all.
                        assert_eq!(
                            recovered.snapshot(),
                            w.snapshot,
                            "variant {variant}: recovery silently diverged"
                        );
                        false
                    }
                }
            }
        };
        assert!(
            detected,
            "variant {variant}: {} injected tampers left no trace (history: {:?})",
            inj.injected(),
            inj.history()
        );
    }
    assert!(corrupted_runs >= 12, "plan must corrupt most variants, got {corrupted_runs}");
    assert_eq!(
        detected_by.iter().sum::<usize>(),
        corrupted_runs,
        "every corrupted run detected exactly once: {detected_by:?}"
    );
    assert!(
        detected_by[2] >= 1,
        "at least one variant must survive decoding and be caught by root verification: {detected_by:?}"
    );
}

#[test]
fn adversarial_record_corruption_is_always_detected_and_clean_lookups_pass() {
    let seed = chaos_seed() ^ 0x0D47;
    let mut rng = test_rng(seed);
    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);
    let mk = |id: u64, judge: &mut Judge, broker: &mut Broker, rng: &mut rand::rngs::StdRng| {
        let gk = judge.enroll(PeerId(id), rng);
        let p = Peer::new(
            PeerId(id),
            params.clone(),
            broker.public_key().clone(),
            judge.public_key().clone(),
            gk,
            rng,
        );
        broker.register_peer(PeerId(id), p.public_key().clone());
        p
    };
    let mut owner = mk(0, &mut judge, &mut broker, &mut rng);
    let mut payer = mk(1, &mut judge, &mut broker, &mut rng);
    let mut payee = mk(2, &mut judge, &mut broker, &mut rng);
    let mut dht = Dht::new(params.group().clone(), broker.public_key().clone(), DhtConfig::default());
    for _ in 0..16 {
        dht.join(RingId::random(&mut rng));
    }
    let entry = dht.node_ids()[0];

    // One coin driven to a broker-committed downtime rebinding, so the
    // proof's leaf carries the committed binding the freshness and
    // equality checks anchor on.
    let now = Timestamp(0);
    let (req, pending) = owner.create_purchase_request(PurchaseMode::Identified, &mut rng);
    let minted = broker.handle_purchase(&req, &mut rng).unwrap();
    let coin = owner.complete_purchase(minted, pending, now, &mut rng).unwrap();
    let (invite, session) = payer.begin_receive(&mut rng);
    let grant = owner.issue_coin(coin, &invite, now, &mut rng).unwrap();
    payer.accept_grant(grant, session, now).unwrap();
    dsd::publish_owner_binding(&owner, coin, &mut dht, entry, &mut rng).unwrap();
    let (invite2, session2) = payee.begin_receive(&mut rng);
    let treq = payer.request_transfer(coin, &invite2, &mut rng).unwrap();
    let grant2 = broker.handle_downtime_transfer(&treq, Timestamp(10), &mut rng).unwrap();
    broker.publish_binding(&grant2.binding, &mut dht, entry, &mut rng).unwrap();
    payee.accept_grant(grant2, session2, Timestamp(10)).unwrap();
    payer.complete_transfer(coin);

    let coin_pk = owner.owned_coin(&coin).unwrap().minted.coin_pk().clone();
    let proof = broker.binding_proof(&coin, &mut rng).expect("ledger is on by default");
    let committed = proof.leaf.binding.clone().expect("downtime rebinding committed");
    let honest = dht.get(entry, dsd::binding_key(&coin_pk)).expect("record published");

    // A storm of lookups against a node that bit-rots a fraction of the
    // records it serves. Detection must reconcile *exactly* with the
    // injector's ground-truth history: every tampered serve fails the
    // proof check (and leaves a failed DsdVerify event in the flight
    // record), every clean serve returns the committed state.
    let plan = TamperPlan { journal: 0.0, snapshot: 0.0, record: 0.25 };
    let mut inj = TamperInjector::new(plan, seed);
    let flight = Arc::new(FlightRecorder::new());
    let obs = Obs::with_tracer(Tracer::new(flight.clone()));
    let mut tampered_serves = 0usize;
    let mut clean_serves = 0usize;
    for lookup in 0..48u64 {
        let mut served = honest.clone();
        let hit = inj.tamper(TamperTarget::Record, lookup, &mut served.value).is_some();
        dht.inject_byzantine_record(served);
        let result = dsd::read_public_state_verified_obs(
            &mut dht,
            entry,
            &coin_pk,
            &proof,
            params.group(),
            broker.public_key(),
            &obs,
        );
        if hit {
            tampered_serves += 1;
            assert!(result.is_err(), "lookup {lookup}: corrupted record accepted as state");
        } else {
            clean_serves += 1;
            let state = result.expect("clean serve must verify");
            assert_eq!(state, committed, "lookup {lookup}: clean serve returns committed state");
        }
    }
    assert_eq!(tampered_serves, inj.injected(), "detections reconcile with injector history");
    assert!(tampered_serves >= 5, "storm must actually tamper: {tampered_serves}");
    assert!(clean_serves >= 5, "storm must leave clean serves: {clean_serves}");
    let failures = flight.snapshot().iter().filter(|e| e.outcome == Outcome::Error).count();
    assert_eq!(
        failures, tampered_serves,
        "failed DsdVerify events reconcile one-to-one with injected tampers"
    );

    // The schedule is pure state: an identically-seeded injector re-draws
    // the exact same tamper history, so the run is replayable bit for bit.
    let mut replay = TamperInjector::new(plan, seed);
    for lookup in 0..48u64 {
        let mut buf = honest.value.clone();
        replay.tamper(TamperTarget::Record, lookup, &mut buf);
    }
    assert_eq!(replay.history(), inj.history());
}

//! The downtime protocol under churn: the owner's availability follows
//! the paper's alternating-renewal on/off process (§6.1) while a coin
//! ping-pongs between two trading peers.
//!
//! When the churn process has the owner offline, transfers and renewals
//! route to the broker's downtime path; when the owner returns, it
//! proactively synchronizes and must adopt the broker-served bindings
//! (only *newer* ones — the [`Peer::adopt_broker_binding`] rule), after
//! which it serves requests again with the up-to-date binding.

use std::cell::RefCell;
use std::rc::Rc;

use whopay::core::service::{
    attach_broker, attach_client, attach_peer, clock, request_renewal_via, request_transfer_via,
    sync_via,
};
use whopay::core::{Broker, Judge, Peer, PeerId, PurchaseMode, SystemParams, Timestamp};
use whopay::crypto::testing::{test_rng, tiny_group};
use whopay::net::Network;
use whopay::sim::{churn::ChurnProcess, SimTime};

const ROUNDS: u64 = 24;

#[test]
fn downtime_protocol_under_churn() {
    let seed = 0xD07E;
    let mut rng = test_rng(seed);
    // The availability process draws from its own stream so the protocol's
    // signature randomness cannot shift the on/off schedule.
    let mut churn_rng = test_rng(seed ^ 0xA1FA);

    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);
    let mk = |id: u64, judge: &mut Judge, broker: &mut Broker, rng: &mut rand::rngs::StdRng| {
        let gk = judge.enroll(PeerId(id), rng);
        let p = Peer::new(
            PeerId(id),
            params.clone(),
            broker.public_key().clone(),
            judge.public_key().clone(),
            gk,
            rng,
        );
        broker.register_peer(PeerId(id), p.public_key().clone());
        p
    };
    let owner = mk(0, &mut judge, &mut broker, &mut rng);
    let mut traders =
        [mk(1, &mut judge, &mut broker, &mut rng), mk(2, &mut judge, &mut broker, &mut rng)];

    let mut net = Network::new();
    let clk = clock(Timestamp(0));
    let broker = Rc::new(RefCell::new(broker));
    let broker_ep = attach_broker(&mut net, broker.clone(), clk.clone(), 1000 + seed);
    let owner = Rc::new(RefCell::new(owner));
    let owner_ep = attach_peer(&mut net, owner.clone(), clk.clone(), 2000 + seed);
    let trader_eps = [attach_client(&mut net, "trader-1"), attach_client(&mut net, "trader-2")];

    // Owner availability: µ = ν = 2h, α = 0.5 — long offline windows are
    // guaranteed across 24 half-hour-spaced rounds.
    let mut churn = ChurnProcess::start(SimTime::from_hours(2), SimTime::from_hours(2), &mut churn_rng);

    // The owner buys a coin and issues it to trader 0 while guaranteed
    // online (the churn schedule only applies from the trading rounds on).
    let t0 = Timestamp(0);
    let coin = {
        let mut o = owner.borrow_mut();
        let (req, pending) = o.create_purchase_request(PurchaseMode::Identified, &mut rng);
        let minted = broker.borrow_mut().handle_purchase(&req, &mut rng).unwrap();
        let coin = o.complete_purchase(minted, pending, t0, &mut rng).unwrap();
        let (invite, session) = traders[0].begin_receive(&mut rng);
        let grant = o.issue_coin(coin, &invite, t0, &mut rng).unwrap();
        traders[0].accept_grant(grant, session, t0).unwrap();
        coin
    };

    let mut holder = 0usize;
    let mut owner_online = true;
    let mut downtime_ops_since_sync = 0u32;
    let mut owner_served = 0u32;
    let mut offline_windows = 0u32;

    for round in 0..ROUNDS {
        let t = SimTime::from_mins((round + 1) * 30);
        let now = Timestamp(t.as_millis());
        clk.set(now);

        // Drive the owner's endpoint from the churn process.
        let online = churn.advance_to(t, &mut churn_rng);
        if online != owner_online {
            net.set_online(owner_ep, online);
            if !online {
                offline_windows += 1;
            }
            if online && downtime_ops_since_sync > 0 {
                // Owner returns: proactive synchronization adopts every
                // binding the broker served in its absence…
                let adopted = {
                    let mut o = owner.borrow_mut();
                    sync_via(&mut net, owner_ep, broker_ep, &mut o, &mut rng).unwrap()
                };
                assert!(adopted >= 1, "returning owner must adopt the downtime binding");
                // …and re-syncing adopts nothing: the broker's binding is
                // no longer newer (the adopt_broker_binding seq rule).
                let again = {
                    let mut o = owner.borrow_mut();
                    sync_via(&mut net, owner_ep, broker_ep, &mut o, &mut rng).unwrap()
                };
                assert_eq!(again, 0, "second sync must be a no-op");
                downtime_ops_since_sync = 0;
            }
            owner_online = online;
        }

        let (target_ep, downtime) = if owner_online { (owner_ep, false) } else { (broker_ep, true) };
        if (round + 1) % 4 == 0 {
            // Renewal round: the current holder refreshes its binding.
            let rreq = traders[holder].request_renewal(coin, &mut rng).unwrap();
            let renewed =
                request_renewal_via(&mut net, trader_eps[holder], target_ep, rreq, downtime).unwrap();
            traders[holder].apply_renewal(coin, renewed).unwrap();
        } else {
            // Transfer round: the coin hops to the other trader (fresh
            // holder keys per hop, so ping-pong is a real chain).
            let next = 1 - holder;
            let (invite, session) = traders[next].begin_receive(&mut rng);
            let treq = traders[holder].request_transfer(coin, &invite, &mut rng).unwrap();
            let grant =
                request_transfer_via(&mut net, trader_eps[holder], target_ep, treq, downtime).unwrap();
            let (a, b) = traders.split_at_mut(1);
            let next_peer = if next == 0 { &mut a[0] } else { &mut b[0] };
            next_peer.accept_grant(grant, session, now).unwrap();
            traders[holder].complete_transfer(coin);
            holder = next;
        }
        if owner_online {
            owner_served += 1;
        } else {
            downtime_ops_since_sync += 1;
        }
    }

    // The schedule produced genuine offline windows, the broker stood in
    // for the owner during them, and the owner served ops when online.
    let stats = broker.borrow().stats();
    assert!(offline_windows >= 1, "churn produced no offline window");
    assert!(stats.downtime_transfers >= 1, "no downtime transfers: {stats:?}");
    assert!(stats.downtime_renewals >= 1, "no downtime renewals: {stats:?}");
    assert!(owner_served >= 1, "owner never served while online");
    assert!(stats.syncs >= 2, "owner never synchronized: {stats:?}");

    // Binding sync on return: the owner's authoritative record has caught
    // up with the whole chain — its binding seq equals the holder's.
    let expected_seq = traders[holder].held_coin(&coin).unwrap().binding.seq();
    let o = owner.borrow();
    let owned = o.owned_coin(&coin).unwrap();
    assert_eq!(
        owned.binding.seq(),
        expected_seq,
        "owner binding must track the chain after sync/serving"
    );

    // And the coin still deposits cleanly at the end of the chain (at the
    // last round's clock, inside the binding's validity window).
    let dreq = traders[holder].request_deposit(coin, &mut rng).unwrap();
    let receipt = broker
        .borrow_mut()
        .handle_deposit(&dreq, Timestamp(SimTime::from_mins(ROUNDS * 30).as_millis()));
    assert_eq!(receipt.unwrap().coin, coin);
}

//! End-to-end observability: protocol runs over the wire with tracing
//! and metrics attached, and the per-operation report reconciles exactly
//! with the transport's own `TrafficStats` accounting.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use whopay::core::service::{
    attach_broker_obs, attach_client, attach_peer_obs, clock, deposit_via_obs, install_wire_classifier,
    purchase_via_obs, request_issue_via_obs, request_renewal_via_obs, request_transfer_via_obs,
    send_invite_obs, sync_via_obs,
};
use whopay::core::{dsd, Broker, Judge, Peer, PeerId, PurchaseMode, SystemParams, Timestamp};
use whopay::crypto::testing::{test_rng, tiny_group};
use whopay::dht::{Dht, DhtConfig, RingId};
use whopay::net::Network;
use whopay::obs::{JsonLinesRecorder, MemoryRecorder, Metrics, Obs, OpKind, Recorder, Role, Tracer};

struct NetWorld {
    net: Network,
    broker_ep: whopay::net::EndpointId,
    owner: Rc<RefCell<Peer>>,
    owner_ep: whopay::net::EndpointId,
    payer: Peer,
    payer_ep: whopay::net::EndpointId,
    payee: Peer,
    payee_ep: whopay::net::EndpointId,
    clk: whopay::core::service::Clock,
    rng: rand::rngs::StdRng,
}

/// The networked fixture of `whopay-core`'s wire tests, with observability
/// contexts attached: `server_obs` feeds the broker/owner dispatch spans,
/// and the wire classifier populates the per-kind traffic breakdown.
fn networld(seed: u64, server_obs: Obs) -> NetWorld {
    let mut rng = test_rng(seed);
    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);
    let mk = |id: u64, judge: &mut Judge, broker: &mut Broker, rng: &mut rand::rngs::StdRng| {
        let gk = judge.enroll(PeerId(id), rng);
        let p = Peer::new(
            PeerId(id),
            params.clone(),
            broker.public_key().clone(),
            judge.public_key().clone(),
            gk,
            rng,
        );
        broker.register_peer(PeerId(id), p.public_key().clone());
        p
    };
    let owner = mk(0, &mut judge, &mut broker, &mut rng);
    let payer = mk(1, &mut judge, &mut broker, &mut rng);
    let payee = mk(2, &mut judge, &mut broker, &mut rng);

    let mut net = Network::new();
    install_wire_classifier(&mut net);
    let clk = clock(Timestamp(0));
    let broker = Rc::new(RefCell::new(broker));
    let broker_ep = attach_broker_obs(&mut net, broker, clk.clone(), 1000 + seed, server_obs.clone());
    let owner = Rc::new(RefCell::new(owner));
    let owner_ep = attach_peer_obs(&mut net, owner.clone(), clk.clone(), 2000 + seed, server_obs);
    let payer_ep = attach_client(&mut net, "payer");
    let payee_ep = attach_client(&mut net, "payee");
    NetWorld { net, broker_ep, owner, owner_ep, payer, payer_ep, payee, payee_ep, clk, rng }
}

/// Runs one full coin lifecycle (purchase, issue, invite, transfer,
/// renewal, deposit, sync) with `obs` attached to every client call.
fn run_lifecycle(w: &mut NetWorld, obs: &Obs) {
    let now = Timestamp(0);
    let coin = {
        let mut owner = w.owner.borrow_mut();
        purchase_via_obs(
            &mut w.net,
            w.owner_ep,
            w.broker_ep,
            &mut owner,
            PurchaseMode::Identified,
            now,
            &mut w.rng,
            obs,
        )
        .expect("networked purchase")
    };

    let (invite, session) = w.payer.begin_receive(&mut w.rng);
    let grant = request_issue_via_obs(&mut w.net, w.payer_ep, w.owner_ep, coin, &invite, obs).unwrap();
    w.payer.accept_grant(grant, session, now).unwrap();

    let (invite2, session2) = w.payee.begin_receive(&mut w.rng);
    send_invite_obs(&mut w.net, w.payee_ep, w.payer_ep, &invite2, obs).unwrap();
    let treq = w.payer.request_transfer(coin, &invite2, &mut w.rng).unwrap();
    let grant2 =
        request_transfer_via_obs(&mut w.net, w.payer_ep, w.owner_ep, treq, false, obs).unwrap();
    w.payee.accept_grant(grant2, session2, now).unwrap();
    w.payer.complete_transfer(coin);

    w.clk.set(Timestamp(100));
    let rreq = w.payee.request_renewal(coin, &mut w.rng).unwrap();
    let renewed =
        request_renewal_via_obs(&mut w.net, w.payee_ep, w.owner_ep, rreq, false, obs).unwrap();
    w.payee.apply_renewal(coin, renewed).unwrap();

    let dreq = w.payee.request_deposit(coin, &mut w.rng).unwrap();
    deposit_via_obs(&mut w.net, w.payee_ep, w.broker_ep, dreq, obs).unwrap();
    w.payee.complete_deposit(coin);

    {
        let mut owner = w.owner.borrow_mut();
        sync_via_obs(&mut w.net, w.owner_ep, w.broker_ep, &mut owner, &mut w.rng, obs)
            .expect("networked sync");
    }
}

#[test]
fn client_spans_reconcile_exactly_with_traffic_stats() {
    let mut w = networld(1, Obs::disabled());
    let metrics = Arc::new(Metrics::new());
    let recorder = Arc::new(MemoryRecorder::new());
    let obs = Obs::new(Tracer::new(recorder.clone()), metrics.clone());

    run_lifecycle(&mut w, &obs);

    // Every message and byte the network counted is attributed to
    // exactly one client span — the totals match TrafficStats exactly.
    let stats = w.net.stats();
    let report = metrics.report();
    assert_eq!(report.total_messages(), stats.messages, "message totals reconcile");
    assert_eq!(report.total_bytes(), stats.bytes, "byte totals reconcile");

    // The per-kind breakdown (fed by the wire classifier) covers the same
    // traffic.
    let breakdown_total = w.net.breakdown().total();
    assert_eq!(breakdown_total.messages, stats.messages);
    assert_eq!(breakdown_total.bytes, stats.bytes);

    // One event per protocol operation, each a 2-message exchange.
    let events = recorder.events();
    assert_eq!(events.len() as u64 * 2, stats.messages);
    for ev in &events {
        assert_eq!(ev.messages, 2, "{:?} is one request/response exchange", ev.op);
        assert!(ev.bytes > 0, "{:?} carried payload bytes", ev.op);
        assert!(ev.duration.is_some(), "{:?} was timed", ev.op);
    }

    // Per-operation counts: the lifecycle performs each op exactly once.
    for (role, op) in [
        (Role::Broker, OpKind::Purchase),
        (Role::Peer, OpKind::Issue),
        (Role::Client, OpKind::Other), // the invite
        (Role::Peer, OpKind::Transfer),
        (Role::Peer, OpKind::Renewal),
        (Role::Broker, OpKind::Deposit),
        (Role::Broker, OpKind::Sync),
    ] {
        let row = metrics.op_snapshot(role, op);
        assert_eq!(row.count, 1, "{role:?}/{op:?} count");
        assert_eq!(row.errors, 0, "{role:?}/{op:?} errors");
    }

    // The rendered table mentions the protocol operations.
    let table = report.render_table();
    assert!(table.contains("purchase") && table.contains("transfer"), "table:\n{table}");
}

#[test]
fn server_dispatch_spans_count_operations_without_traffic() {
    let server_metrics = Arc::new(Metrics::new());
    let mut w = networld(2, Obs::with_metrics(server_metrics.clone()));
    let client_obs = Obs::disabled();

    run_lifecycle(&mut w, &client_obs);

    // The broker and the owner each saw their operations once...
    for (role, op) in [
        (Role::Broker, OpKind::Purchase),
        (Role::Peer, OpKind::Issue),
        (Role::Peer, OpKind::Transfer),
        (Role::Peer, OpKind::Renewal),
        (Role::Broker, OpKind::Deposit),
        (Role::Broker, OpKind::Sync),
    ] {
        let row = server_metrics.op_snapshot(role, op);
        assert_eq!(row.count, 1, "{role:?}/{op:?} dispatched once");
        // ...with no traffic attached: the client side owns the byte
        // accounting, so mixing both registries can never double-count.
        assert_eq!(row.messages, 0, "{role:?}/{op:?} server span carries no traffic");
        assert_eq!(row.bytes, 0);
    }
}

#[test]
fn rejected_requests_surface_as_failed_spans() {
    let server_metrics = Arc::new(Metrics::new());
    let mut w = networld(3, Obs::with_metrics(server_metrics.clone()));
    let client_metrics = Arc::new(Metrics::new());
    let client_obs = Obs::with_metrics(client_metrics.clone());

    // Depositing a coin the payee never held: the broker rejects it.
    let coin = {
        let mut owner = w.owner.borrow_mut();
        purchase_via_obs(
            &mut w.net,
            w.owner_ep,
            w.broker_ep,
            &mut owner,
            PurchaseMode::Identified,
            Timestamp(0),
            &mut w.rng,
            &client_obs,
        )
        .expect("networked purchase")
    };
    let _ = coin;
    let bogus = w.payee.request_deposit(coin, &mut w.rng);
    // The payee never held the coin, so the request may fail locally; if
    // it somehow builds, the broker must reject it remotely.
    if let Ok(dreq) = bogus {
        let res = deposit_via_obs(&mut w.net, w.payee_ep, w.broker_ep, dreq, &client_obs);
        assert!(res.is_err(), "broker must reject a deposit of an unheld coin");
        let client_row = client_metrics.op_snapshot(Role::Broker, OpKind::Deposit);
        assert_eq!(client_row.count, 1);
        assert_eq!(client_row.errors, 1, "client span marked failed");
        let server_row = server_metrics.op_snapshot(Role::Broker, OpKind::Deposit);
        assert_eq!(server_row.errors, 1, "server span marked failed");
        // Failed exchanges still carried their traffic.
        let report = client_metrics.report();
        assert_eq!(report.total_messages(), w.net.stats().messages);
        assert_eq!(report.total_bytes(), w.net.stats().bytes);
    }
}

#[test]
fn dsd_checks_and_alarms_reach_the_registry() {
    let mut rng = test_rng(40);
    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);
    let gk = judge.enroll(PeerId(0), &mut rng);
    let mut owner = Peer::new(
        PeerId(0),
        params.clone(),
        broker.public_key().clone(),
        judge.public_key().clone(),
        gk,
        &mut rng,
    );
    broker.register_peer(PeerId(0), owner.public_key().clone());
    let gk1 = judge.enroll(PeerId(1), &mut rng);
    let mut payee = Peer::new(
        PeerId(1),
        params.clone(),
        broker.public_key().clone(),
        judge.public_key().clone(),
        gk1,
        &mut rng,
    );
    broker.register_peer(PeerId(1), payee.public_key().clone());

    let mut dht = Dht::new(params.group().clone(), broker.public_key().clone(), DhtConfig::default());
    let dht_metrics = Arc::new(Metrics::new());
    dht.set_obs(Obs::with_metrics(dht_metrics.clone()));
    for _ in 0..8 {
        dht.join(RingId::random(&mut rng));
    }
    let entry = dht.node_ids()[0];

    let dsd_metrics = Arc::new(Metrics::new());
    let obs = Obs::with_metrics(dsd_metrics.clone());

    let t0 = Timestamp(0);
    let (req, pending) = owner.create_purchase_request(PurchaseMode::Identified, &mut rng);
    let minted = broker.handle_purchase(&req, &mut rng).unwrap();
    let coin = owner.complete_purchase(minted, pending, t0, &mut rng).unwrap();

    let (invite, session) = payee.begin_receive(&mut rng);
    let grant = owner.issue_coin(coin, &invite, t0, &mut rng).unwrap();

    // Verify before publication fails; after publication it passes.
    assert!(dsd::verify_grant_published_obs(&mut dht, entry, &grant, &obs).is_err());
    dsd::publish_owner_binding_obs(&owner, coin, &mut dht, entry, &mut rng, &obs).unwrap();
    dsd::verify_grant_published_obs(&mut dht, entry, &grant, &obs).unwrap();

    let held_seq = grant.binding.seq();
    let coin_pk = grant.minted.coin_pk().clone();
    payee.accept_grant(grant, session, t0).unwrap();

    let mut monitor = dsd::HoldingMonitor::new();
    monitor.watch(&mut dht, coin, &coin_pk, held_seq);
    assert!(monitor.poll_obs(&mut dht, &obs).is_empty(), "no alarm while honest");

    // The owner republishes a newer binding while the payee still holds
    // the coin: the monitor raises an alarm and records the event.
    let (invite2, _s2) = payee.begin_receive(&mut rng);
    // Owner no longer owns the coin after issuing; re-check by publishing
    // via a renewal path instead: bump the held binding through the owner.
    let _ = invite2;
    let rreq = payee.request_renewal(coin, &mut rng).unwrap();
    let renewed = owner.handle_renewal(rreq, t0, &mut rng).unwrap();
    let new_seq = renewed.seq();
    payee.apply_renewal(coin, renewed).unwrap();
    dsd::publish_owner_binding_obs(&owner, coin, &mut dht, entry, &mut rng, &obs).unwrap();
    let alarms = monitor.poll_obs(&mut dht, &obs);
    assert_eq!(alarms.len(), 1, "renewal past the held seq raises an alarm");
    assert!(new_seq > held_seq);

    // DSD spans landed in the registry.
    let publishes = dsd_metrics.op_snapshot(Role::Peer, OpKind::DsdPublish);
    assert_eq!(publishes.count, 2);
    assert_eq!(publishes.errors, 0);
    let verifies = dsd_metrics.op_snapshot(Role::Peer, OpKind::DsdVerify);
    assert_eq!(verifies.count, 2);
    assert_eq!(verifies.errors, 1, "pre-publication verify failed");
    let alarms_row = dsd_metrics.op_snapshot(Role::Peer, OpKind::DsdAlarm);
    assert_eq!(alarms_row.count, 1);
    assert_eq!(alarms_row.errors, 1, "alarms are failure events");

    // And the DHT's own registry mirrors its stats.
    let stats = dht.stats();
    assert_eq!(dht_metrics.op_snapshot(Role::DhtNode, OpKind::DhtGet).count, stats.gets);
    assert_eq!(dht_metrics.op_snapshot(Role::DhtNode, OpKind::DhtNotify).count, stats.notifications);
    assert_eq!(dht_metrics.counter("dht.lookup_hops").get(), stats.lookup_hops);
}

#[test]
fn jsonl_recorder_streams_protocol_events() {
    let recorder = Arc::new(JsonLinesRecorder::new(Vec::new()));
    let obs = Obs::with_tracer(Tracer::new(recorder.clone()));
    let mut w = networld(5, Obs::disabled());

    run_lifecycle(&mut w, &obs);

    assert!(recorder.enabled());
    drop(obs); // release the tracer's clone of the recorder
    let sink = Arc::try_unwrap(recorder).expect("sole owner").into_inner();
    let text = String::from_utf8(sink).expect("valid UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64 * 2, w.net.stats().messages, "one line per exchange");
    for line in lines {
        assert!(line.starts_with("{\"role\":\"") && line.ends_with('}'), "JSON object: {line}");
        assert!(line.contains("\"op\":\"") && line.contains("\"outcome\":\""), "{line}");
        assert!(line.contains("\"messages\":2"), "exchange traffic recorded: {line}");
    }
}

//! Workspace-spanning integration tests: the full WhoPay system wired
//! together across crates — protocol + DHT + indirection + evaluation —
//! exercising the end-to-end claims of the paper rather than any single
//! module.

use whopay::core::{
    dsd, Broker, Judge, Peer, PeerId, PurchaseMode, RevealedIdentity, SystemParams, Timestamp,
};
use whopay::crypto::testing;
use whopay::dht::{Dht, DhtConfig, RingId};
use whopay::eval::{config::SimConfig, loadsim, MicroWeights, Policy, SyncStrategy};
use whopay::net::{Handle, IndirectionLayer, Network};

struct System {
    params: SystemParams,
    judge: Judge,
    broker: Broker,
    peers: Vec<Peer>,
    dht: Dht,
    entry: RingId,
    rng: rand::rngs::StdRng,
}

fn system(n: usize, seed: u64) -> System {
    let mut rng = testing::test_rng(seed);
    let params = SystemParams::new(testing::tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);
    let peers: Vec<Peer> = (0..n as u64)
        .map(|i| {
            let gk = judge.enroll(PeerId(i), &mut rng);
            let p = Peer::new(
                PeerId(i),
                params.clone(),
                broker.public_key().clone(),
                judge.public_key().clone(),
                gk,
                &mut rng,
            );
            broker.register_peer(PeerId(i), p.public_key().clone());
            p
        })
        .collect();
    let mut dht = Dht::new(params.group().clone(), broker.public_key().clone(), DhtConfig::default());
    for _ in 0..16 {
        dht.join(RingId::random(&mut rng));
    }
    let entry = dht.node_ids()[0];
    System { params, judge, broker, peers, dht, entry, rng }
}

#[test]
fn payment_chain_with_continuous_public_publication() {
    // A coin hops through five peers; the owner publishes every rebinding
    // and every payee checks the public list before accepting — the full
    // §5.1 discipline, across protocol and DHT crates.
    let mut s = system(6, 1);
    let now = Timestamp(0);

    let (req, pending) = s.peers[0].create_purchase_request(PurchaseMode::Identified, &mut s.rng);
    let minted = s.broker.handle_purchase(&req, &mut s.rng).unwrap();
    let coin = s.peers[0].complete_purchase(minted, pending, now, &mut s.rng).unwrap();
    dsd::publish_owner_binding(&s.peers[0], coin, &mut s.dht, s.entry, &mut s.rng).unwrap();

    // Issue to peer 1.
    let (invite, session) = s.peers[1].begin_receive(&mut s.rng);
    let grant = s.peers[0].issue_coin(coin, &invite, now, &mut s.rng).unwrap();
    dsd::publish_owner_binding(&s.peers[0], coin, &mut s.dht, s.entry, &mut s.rng).unwrap();
    dsd::verify_grant_published(&mut s.dht, s.entry, &grant).unwrap();
    s.peers[1].accept_grant(grant, session, now).unwrap();

    // Transfer 1 → 2 → 3 → 4, publishing and checking at each hop.
    for hop in 1..4usize {
        let t = Timestamp(hop as u64 * 100);
        let (invite, session) = s.peers[hop + 1].begin_receive(&mut s.rng);
        let treq = s.peers[hop].request_transfer(coin, &invite, &mut s.rng).unwrap();
        let grant = s.peers[0].handle_transfer(treq, t, &mut s.rng).unwrap();
        dsd::publish_owner_binding(&s.peers[0], coin, &mut s.dht, s.entry, &mut s.rng).unwrap();
        dsd::verify_grant_published(&mut s.dht, s.entry, &grant).unwrap();
        s.peers[hop + 1].accept_grant(grant, session, t).unwrap();
        s.peers[hop].complete_transfer(coin);
    }

    // Final holder deposits; the ledger closes cleanly.
    let dep = s.peers[4].request_deposit(coin, &mut s.rng).unwrap();
    s.broker.handle_deposit(&dep, Timestamp(500)).unwrap();
    s.peers[4].complete_deposit(coin);
    assert!(!s.broker.is_circulating(&coin));
    assert_eq!(s.broker.fraud_cases().len(), 0);
    assert!(s.dht.stats().puts >= 5, "every rebinding was published");
}

#[test]
fn downtime_path_keeps_public_list_current_via_broker_writes() {
    // Owner offline: the broker both serves the transfer and updates the
    // public binding list, so real-time detection keeps working (§5.1).
    let mut s = system(3, 2);
    let now = Timestamp(0);
    let (req, pending) = s.peers[0].create_purchase_request(PurchaseMode::Identified, &mut s.rng);
    let minted = s.broker.handle_purchase(&req, &mut s.rng).unwrap();
    let coin = s.peers[0].complete_purchase(minted, pending, now, &mut s.rng).unwrap();
    let (invite, session) = s.peers[1].begin_receive(&mut s.rng);
    let grant = s.peers[0].issue_coin(coin, &invite, now, &mut s.rng).unwrap();
    s.peers[1].accept_grant(grant, session, now).unwrap();
    dsd::publish_owner_binding(&s.peers[0], coin, &mut s.dht, s.entry, &mut s.rng).unwrap();

    // Owner goes dark; holder 1 pays holder 2 via the broker.
    let (invite2, session2) = s.peers[2].begin_receive(&mut s.rng);
    let treq = s.peers[1].request_transfer(coin, &invite2, &mut s.rng).unwrap();
    let grant2 = s.broker.handle_downtime_transfer(&treq, Timestamp(10), &mut s.rng).unwrap();
    s.broker.publish_binding(&grant2.binding, &mut s.dht, s.entry, &mut s.rng).unwrap();
    dsd::verify_grant_published(&mut s.dht, s.entry, &grant2).unwrap();
    s.peers[2].accept_grant(grant2, session2, Timestamp(10)).unwrap();
    s.peers[1].complete_transfer(coin);

    // Owner returns and lazily adopts the public state; subsequent
    // owner-side handling works.
    let coin_pk = s.peers[0].owned_coin(&coin).unwrap().minted.coin_pk().clone();
    let state = dsd::read_public_state(&mut s.dht, s.entry, &coin_pk).unwrap();
    assert!(s.peers[0].adopt_public_state(coin, &state, &mut s.rng).unwrap());
    let rreq = s.peers[2].request_renewal(coin, &mut s.rng).unwrap();
    let renewed = s.peers[0].handle_renewal(rreq, Timestamp(20), &mut s.rng).unwrap();
    s.peers[2].apply_renewal(coin, renewed).unwrap();
}

#[test]
fn owner_anonymous_coins_route_via_i3_and_fall_back_to_broker() {
    // §5.2 approach 3, wired through the indirection layer: the payer
    // reaches the owner by handle only; when the trigger goes dark it
    // detects unreachability and uses the broker instead.
    let mut s = system(3, 3);
    let now = Timestamp(0);
    let mut net = Network::new();
    let mut i3 = IndirectionLayer::new();

    let handle = Handle::random(&mut s.rng);
    let (req, pending) =
        s.peers[0].create_purchase_request(PurchaseMode::AnonymousWithHandle(handle), &mut s.rng);
    let minted = s.broker.handle_purchase(&req, &mut s.rng).unwrap();
    let coin = s.peers[0].complete_purchase(minted, pending, now, &mut s.rng).unwrap();

    // Register the owner's trigger (the endpoint handler is a stand-in for
    // the owner's request loop; core protocol objects stay sans-IO).
    let owner_ep = net.register("owner", |req: &[u8]| req.to_vec());
    let payer_ep = net.register("payer", |_: &[u8]| Vec::new());
    i3.register_trigger(handle, owner_ep);
    assert!(i3.is_reachable(&net, handle));
    let echoed = i3.request_via(&mut net, payer_ep, handle, b"transfer?".to_vec()).unwrap();
    assert_eq!(echoed, b"transfer?");

    // Issue to peer 1 while reachable.
    let (invite, session) = s.peers[1].begin_receive(&mut s.rng);
    let grant = s.peers[0].issue_coin(coin, &invite, now, &mut s.rng).unwrap();
    s.peers[1].accept_grant(grant, session, now).unwrap();

    // Trigger goes dark → payer detects and uses the downtime path.
    net.set_online(owner_ep, false);
    assert!(!i3.is_reachable(&net, handle));
    let (invite2, session2) = s.peers[2].begin_receive(&mut s.rng);
    let treq = s.peers[1].request_transfer(coin, &invite2, &mut s.rng).unwrap();
    let grant2 = s.broker.handle_downtime_transfer(&treq, Timestamp(5), &mut s.rng).unwrap();
    s.peers[2].accept_grant(grant2, session2, Timestamp(5)).unwrap();
    s.peers[1].complete_transfer(coin);
}

#[test]
fn fraud_pipeline_broker_judge_quorum() {
    // Deposit fraud flows from broker detection through a Shamir-rebuilt
    // judge quorum to an identified culprit — the full fairness pipeline.
    let mut s = system(2, 4);
    let now = Timestamp(0);
    let (req, pending) = s.peers[0].create_purchase_request(PurchaseMode::Identified, &mut s.rng);
    let minted = s.broker.handle_purchase(&req, &mut s.rng).unwrap();
    let coin = s.peers[0].complete_purchase(minted, pending, now, &mut s.rng).unwrap();
    let (invite, session) = s.peers[1].begin_receive(&mut s.rng);
    let grant = s.peers[0].issue_coin(coin, &invite, now, &mut s.rng).unwrap();
    s.peers[1].accept_grant(grant, session, now).unwrap();
    let dep = s.peers[1].request_deposit(coin, &mut s.rng).unwrap();
    s.broker.handle_deposit(&dep, now).unwrap();
    // A freshly signed second deposit is fraud; an identical resend would
    // only be an idempotent replay.
    let dep2 = s.peers[1].request_deposit(coin, &mut s.rng).unwrap();
    assert!(s.broker.handle_deposit(&dep2, now).is_err());

    let shares = s.judge.split_master(2, 3, &mut s.rng);
    let registry = s.judge.export_registry();
    let quorum = Judge::from_shares(s.params.group().clone(), &shares[1..3], 2, registry).unwrap();
    let parties = quorum.reveal_parties(&s.broker.fraud_cases()[0]);
    assert_eq!(parties, vec![RevealedIdentity::Peer(PeerId(1))]);
}

#[test]
fn evaluation_simulator_agrees_with_protocol_economics() {
    // The op-count simulator and the real protocol agree on the headline:
    // most load stays on peers, lazy sync lowers broker involvement.
    let base = SimConfig::small_test(Policy::I, SyncStrategy::Proactive, 11);
    let pro = loadsim::run(&base);
    let lazy = loadsim::run(&SimConfig::small_test(Policy::I, SyncStrategy::Lazy, 11));
    let w = MicroWeights::TABLE3;
    assert!(pro.broker_cpu_share(w) < 0.5);
    assert!(lazy.broker_cpu(w) < pro.broker_cpu(w));
    // Payments completed should be identical (same seed, same workload).
    assert_eq!(pro.payments, lazy.payments);
}

//! End-to-end causal tracing: retry attempts chain into span trees
//! labelled with the fault that killed each predecessor, and trace ids
//! stay unique under concurrency.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use whopay::core::service::{
    attach_broker, attach_client, attach_peer, clock, deposit_via_retry, install_wire_classifier,
    purchase_via_retry, request_issue_via_retry, request_renewal_via_retry, request_transfer_via_retry,
};
use whopay::core::{Broker, Judge, Peer, PeerId, PurchaseMode, SystemParams, Timestamp};
use whopay::crypto::testing::{test_rng, tiny_group};
use whopay::net::{FaultInjector, FaultPlan, FaultRates, Network, RetryPolicy};
use whopay::obs::{Event, MemoryRecorder, Obs, OpKind, Role, Tracer};

struct World {
    net: Network,
    broker_ep: whopay::net::EndpointId,
    owner: Rc<RefCell<Peer>>,
    owner_ep: whopay::net::EndpointId,
    payer: Peer,
    payer_ep: whopay::net::EndpointId,
    payee: Peer,
    payee_ep: whopay::net::EndpointId,
    clk: whopay::core::service::Clock,
    rng: rand::rngs::StdRng,
}

fn world(seed: u64) -> World {
    let mut rng = test_rng(seed);
    let params = SystemParams::new(tiny_group().clone());
    let mut judge = Judge::new(params.group().clone(), &mut rng);
    let mut broker = Broker::new(params.clone(), judge.public_key().clone(), &mut rng);
    let mk = |id: u64, judge: &mut Judge, broker: &mut Broker, rng: &mut rand::rngs::StdRng| {
        let gk = judge.enroll(PeerId(id), rng);
        let p = Peer::new(
            PeerId(id),
            params.clone(),
            broker.public_key().clone(),
            judge.public_key().clone(),
            gk,
            rng,
        );
        broker.register_peer(PeerId(id), p.public_key().clone());
        p
    };
    let owner = mk(0, &mut judge, &mut broker, &mut rng);
    let payer = mk(1, &mut judge, &mut broker, &mut rng);
    let payee = mk(2, &mut judge, &mut broker, &mut rng);

    let mut net = Network::new();
    install_wire_classifier(&mut net);
    let clk = clock(Timestamp(0));
    let broker = Rc::new(RefCell::new(broker));
    let broker_ep = attach_broker(&mut net, broker, clk.clone(), 1000 + seed);
    let owner = Rc::new(RefCell::new(owner));
    let owner_ep = attach_peer(&mut net, owner.clone(), clk.clone(), 2000 + seed);
    let payer_ep = attach_client(&mut net, "payer");
    let payee_ep = attach_client(&mut net, "payee");

    // The satellite fault schedule: every delivery at 2% risk per fault
    // kind, enough to force retries across a handful of lifecycles.
    let rates = FaultRates { drop: 0.02, duplicate: 0.02, corrupt: 0.02, timeout: 0.02 };
    net.install_faults(FaultInjector::new(FaultPlan::new().with_default(rates), seed ^ 0x7A3E));

    World { net, broker_ep, owner, owner_ep, payer, payer_ep, payee, payee_ep, clk, rng }
}

/// One best-effort coin lifecycle through the retry-wrapped helpers.
fn run_lifecycle(w: &mut World, i: u64, policy: &RetryPolicy, obs: &Obs) {
    let now = Timestamp(100 * i);
    w.clk.set(now);
    let coin = {
        let mut owner = w.owner.borrow_mut();
        match purchase_via_retry(
            &mut w.net,
            w.owner_ep,
            w.broker_ep,
            &mut owner,
            PurchaseMode::Identified,
            now,
            policy,
            &mut w.rng,
            obs,
        ) {
            Ok(coin) => coin,
            Err(_) => return,
        }
    };
    let (invite, session) = w.payer.begin_receive(&mut w.rng);
    let Ok(grant) = request_issue_via_retry(
        &mut w.net, w.payer_ep, w.owner_ep, coin, &invite, policy, &mut w.rng, obs,
    ) else {
        return;
    };
    if w.payer.accept_grant(grant, session, now).is_err() {
        return;
    }
    let (invite2, session2) = w.payee.begin_receive(&mut w.rng);
    let treq = w.payer.request_transfer(coin, &invite2, &mut w.rng).expect("payer holds");
    let Ok(grant2) = request_transfer_via_retry(
        &mut w.net, w.payer_ep, w.owner_ep, treq, false, policy, &mut w.rng, obs,
    ) else {
        return;
    };
    if w.payee.accept_grant(grant2, session2, now).is_err() {
        return;
    }
    w.payer.complete_transfer(coin);
    let rreq = w.payee.request_renewal(coin, &mut w.rng).expect("payee holds");
    if let Ok(renewed) = request_renewal_via_retry(
        &mut w.net, w.payee_ep, w.owner_ep, rreq, false, policy, &mut w.rng, obs,
    ) {
        let _ = w.payee.apply_renewal(coin, renewed);
    }
    let dreq = w.payee.request_deposit(coin, &mut w.rng).expect("payee holds");
    if deposit_via_retry(&mut w.net, w.payee_ep, w.broker_ep, dreq, policy, &mut w.rng, obs).is_ok() {
        w.payee.complete_deposit(coin);
    }
}

/// The labels the retry layer can stamp on a resend: network fault
/// classes plus the two in-flight-corruption shapes.
const FAULT_LABELS: [&str; 5] =
    ["lost", "timed out", "partitioned", "remote verification failure", "response corrupted"];

#[test]
fn retry_attempts_form_fault_labelled_span_chains() {
    let mut w = world(0x7AC1);
    let policy = RetryPolicy::new(8).backoff(10, 1_000).budget(100_000);
    let recorder = Arc::new(MemoryRecorder::new());
    let obs = Obs::with_tracer(Tracer::new(recorder.clone()));

    for i in 0..16 {
        run_lifecycle(&mut w, i, &policy, &obs);
    }
    assert!(policy.stats().retries > 0, "schedule produced no retries: {:?}", policy.stats());

    let events = recorder.events();
    let mut traces: HashMap<u64, Vec<Event>> = HashMap::new();
    for event in &events {
        let trace = event.trace.expect("every traced client span carries a context");
        traces.entry(trace.trace_id).or_default().push(event.clone());
    }

    // The span tree grows exactly one child per retry attempt: across the
    // whole run the chained (retry-marked) spans count the policy's
    // retries, and inside each trace the attempt ordinals are the
    // gap-free chain 1..=k-1 for k recorded attempts.
    let chained: u64 = events.iter().filter(|e| e.retry.is_some()).count() as u64;
    assert_eq!(chained, policy.stats().retries, "one child span per retry attempt");
    for (trace_id, attempts) in &traces {
        let mut ordinals: Vec<u32> =
            attempts.iter().filter_map(|e| e.retry.map(|r| r.attempt)).collect();
        ordinals.sort_unstable();
        let expected: Vec<u32> = (1..attempts.len() as u32).collect();
        assert_eq!(ordinals, expected, "gap-free retry chain in trace {trace_id:016x}");
        for event in attempts {
            let Some(note) = event.retry else { continue };
            assert!(
                FAULT_LABELS.contains(&note.after),
                "retry labelled with its predecessor's fault kind, got {:?}",
                note.after
            );
            // The child hangs off the failed attempt it replaces.
            let ctx = event.trace.unwrap();
            let parent = attempts
                .iter()
                .find(|e| e.trace.is_some_and(|t| t.span_id == ctx.parent_span_id))
                .expect("predecessor attempt is recorded in the same trace");
            assert_eq!(parent.outcome, whopay::obs::Outcome::Error, "predecessor failed");
        }
    }
}

#[test]
fn trace_ids_never_collide_across_concurrent_lifecycles() {
    const THREADS: usize = 8;
    const LIFECYCLES_PER_THREAD: usize = 125;

    let recorder = Arc::new(MemoryRecorder::new());
    let obs = Obs::with_tracer(Tracer::new(recorder.clone()));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let obs = obs.clone();
            scope.spawn(move || {
                for _ in 0..LIFECYCLES_PER_THREAD {
                    // A miniature lifecycle: a root operation span with
                    // two causally-linked children, as the service layer
                    // produces for one exchange with a dispatch + retry.
                    let root = obs.span(Role::Client, OpKind::Purchase);
                    let ctx = root.context().expect("enabled spans carry contexts");
                    let dispatch = obs.child_span(Role::Broker, OpKind::Purchase, &ctx);
                    dispatch.finish();
                    let mut retry = obs.child_span(Role::Client, OpKind::Purchase, &ctx);
                    retry.mark_retry(1, "lost");
                    retry.finish();
                    root.finish();
                }
            });
        }
    });

    let events = recorder.events();
    assert_eq!(events.len(), THREADS * LIFECYCLES_PER_THREAD * 3);
    let roots: Vec<u64> = events
        .iter()
        .filter(|e| e.trace.is_some_and(|t| t.parent_span_id == 0))
        .map(|e| e.trace.unwrap().trace_id)
        .collect();
    assert_eq!(roots.len(), THREADS * LIFECYCLES_PER_THREAD, "one root span per lifecycle");
    let mut unique = roots.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), roots.len(), "trace ids collided across concurrent lifecycles");
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the API surface `whopay-bench` uses — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock runner: each benchmark is warmed up, then timed over a
//! fixed number of samples, and the per-iteration mean/min are printed.
//! There is no statistical analysis, outlier detection, or HTML report;
//! numbers are indicative, which is all the reproduction's relative
//! comparisons (Tables 2–3) need.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (stand-in for criterion's `Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, routine);
        self
    }

    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label()), self.sample_size, routine);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, |b| routine(b, input));
        self
    }

    /// Ends the group (kept for API parity; printing is immediate).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// An id distinguished by parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { function: Some(name.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { function: Some(name), parameter: None }
    }
}

/// Passed to benchmark routines; [`Bencher::iter`] times the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters_per_sample`
    /// back-to-back iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut routine: F) {
    // One untimed warmup pass (fills caches, faults pages).
    let mut warmup = Bencher { samples: Vec::new(), iters_per_sample: 1 };
    routine(&mut warmup);
    let warm_dur = warmup.samples.first().copied().unwrap_or_default();

    // Budget ~100ms of measurement: scale iterations down for slow
    // routines so the full suite stays fast.
    let per_iter_ns = warm_dur.as_nanos().max(1);
    let budget_ns: u128 = 100_000_000;
    let total_iters = (budget_ns / per_iter_ns).clamp(1, 1_000_000) as u64;
    let iters_per_sample = (total_iters / sample_size as u64).max(1);

    let mut bencher = Bencher { samples: Vec::new(), iters_per_sample };
    for _ in 0..sample_size {
        routine(&mut bencher);
    }

    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let per_sample: Vec<f64> =
        bencher.samples.iter().map(|d| d.as_nanos() as f64 / iters_per_sample as f64).collect();
    let mean = per_sample.iter().sum::<f64>() / per_sample.len() as f64;
    let min = per_sample.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{label:<48} time: [mean {} min {}]  ({} samples x {} iters)",
        fmt_ns(mean),
        fmt_ns(min),
        per_sample.len(),
        iters_per_sample
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Re-export: benches import `criterion::black_box` in some codebases.
pub use std::hint::black_box;

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut runs = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut hits = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(42u32), &42u32, |b, &v| {
            b.iter(|| {
                hits += v as u64;
            })
        });
        g.finish();
        assert!(hits >= 42);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label(), "p");
        assert_eq!(BenchmarkId::from("n").label(), "n");
    }
}

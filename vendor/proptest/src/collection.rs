//! Collection strategies (`vec`, `btree_set`).

use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::Strategy;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = sample_len(rng, &self.size);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = sample_len(rng, &self.size);
        let mut set = BTreeSet::new();
        // Duplicate draws don't grow the set; cap the attempts so a
        // narrow element domain cannot loop forever.
        for _ in 0..target.saturating_mul(20).max(32) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

fn sample_len(rng: &mut StdRng, size: &Range<usize>) -> usize {
    if size.start >= size.end {
        size.start
    } else {
        rng.random_range(size.clone())
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! reimplements the slice of proptest the workspace's property suites
//! use: the [`proptest!`] macro, `prop_assert*`/[`prop_assume!`],
//! [`any`], integer-range and string strategies, `prop_map`/`prop_filter`
//! combinators, [`collection::vec`]/[`collection::btree_set`], and
//! [`sample::Index`].
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message, but is not minimized.
//! * **Fixed deterministic seeding.** Each test derives its RNG stream
//!   from its own name (xor `PROPTEST_SEED` if set), so failures
//!   reproduce across runs; `PROPTEST_CASES` overrides the case count.
//!
//! Strategies here generate values directly from an RNG rather than
//! through proptest's value-tree machinery, which is all the suites in
//! this workspace require.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod collection;
pub mod sample;
pub mod strategy;

pub use strategy::{Any, Strategy};

/// Runner configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Marker returned by [`prop_assume!`] to skip the rest of a case.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseSkip;

/// Derives the deterministic RNG for one property from its name.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name keeps streams independent per property.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let env_seed = std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    StdRng::seed_from_u64(h ^ env_seed)
}

/// Generates a whole tuple of strategy outputs (used by [`proptest!`]).
pub trait StrategyTuple {
    /// The tuple of generated values.
    type Output;
    /// Draws one value from every strategy in the tuple.
    fn generate_tuple(&self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_strategy_tuple {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> StrategyTuple for ($($S,)+) {
            type Output = ($($S::Value,)+);
            fn generate_tuple(&self, rng: &mut StdRng) -> Self::Output {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config($cfg) $($rest)*);
    };
    (@config($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                let strategies = ($($strat,)+);
                for _case in 0..config.cases {
                    let ($($pat,)+) =
                        $crate::StrategyTuple::generate_tuple(&strategies, &mut rng);
                    #[allow(clippy::redundant_closure_call)]
                    let _: ::core::result::Result<(), $crate::TestCaseSkip> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::core::assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::core::assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::core::assert_ne!($($t)*) };
}

/// Skips the rest of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseSkip);
        }
    };
}

/// Returns the strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::new()
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<u64>() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        any::<u64>().prop_map(|v| v & !1)
    }

    proptest! {
        #[test]
        fn mapped_strategy_holds(v in evens()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn ranges_are_half_open(x in 3usize..7) {
            prop_assert!((3..7).contains(&x));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_form_parses(_x in 0u64..3) {
            prop_assert!(true);
        }
    }

    #[test]
    fn filter_rejects_values() {
        let strat = (0u64..100).prop_filter("big", |v| *v >= 50);
        let mut rng = crate::test_rng("filter_rejects_values");
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) >= 50);
        }
    }

    #[test]
    fn string_strategy_respects_length_bounds() {
        let mut rng = crate::test_rng("string_strategy");
        for _ in 0..200 {
            let s = Strategy::generate(&"\\PC{0,100}", &mut rng);
            assert!(s.chars().count() <= 100);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = crate::test_rng("collections");
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = crate::collection::btree_set(any::<[u8; 20]>(), 2..12).generate(&mut rng);
            assert!((2..12).contains(&s.len()));
        }
    }

    #[test]
    fn index_is_always_in_bounds() {
        let mut rng = crate::test_rng("index");
        for len in 1..50usize {
            let idx = crate::sample::Index::arbitrary(&mut rng);
            assert!(idx.index(len) < len);
        }
    }
}

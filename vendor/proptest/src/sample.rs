//! Sampling helpers (`Index`).

use rand::rngs::StdRng;
use rand::RngExt;

use crate::Arbitrary;

/// An arbitrary position into any collection, resolved against a
/// concrete length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Projects this index onto a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero (there is no valid index).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        Index { raw: rng.random::<u64>() }
    }
}

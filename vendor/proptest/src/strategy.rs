//! The [`Strategy`] trait and combinators.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::Arbitrary;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy draws a finished value straight from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values accepted by `pred`; panics if 1000 consecutive
    /// draws are rejected (a sign the filter is too narrow).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }
}

/// Strategy for [`crate::any`].
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any { _marker: PhantomData }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy yielding a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] combinator.
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive values", self.reason);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String-pattern strategy.
///
/// Real proptest interprets `&str` strategies as full regexes. The only
/// patterns this workspace uses are printable-character classes with a
/// `{min,max}` repetition (e.g. `"\\PC{0,100}"`), so this stand-in reads
/// the trailing repetition bounds (defaulting to `0..=32`) and emits that
/// many printable ASCII characters.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (min, max) = parse_repetition(self).unwrap_or((0, 32));
        let len = rng.random_range(min..max.saturating_add(1));
        (0..len).map(|_| rng.random_range(0x20u8..0x7F) as char).collect()
    }
}

/// Extracts `(min, max)` from a trailing `{min,max}` repetition.
fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let (_, counts) = body.rsplit_once('{')?;
    let (min, max) = counts.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

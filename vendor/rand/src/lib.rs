//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.10 API it actually
//! uses: the [`Rng`] core trait (`next_u32`/`next_u64`/`fill_bytes`), the
//! [`RngExt`] extension trait (`random`, `random_range`, `random_bool`),
//! [`SeedableRng`] with `seed_from_u64`, the seeded [`rngs::StdRng`], and
//! the process-entropy constructor [`rng()`].
//!
//! `StdRng` is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
//! — not the cipher-based generator the real crate ships, but a
//! high-quality, deterministic PRNG that is more than adequate for the
//! simulations, property tests, and test-key generation this workspace
//! performs. Nothing here is a CSPRNG; the WhoPay code never relied on
//! one (its security arguments live in `whopay-crypto`, which takes any
//! `Rng` and is exercised with seeded generators throughout).

#![warn(missing_docs)]

/// A source of random bits.
///
/// The object-safe core trait: everything else is derived from
/// [`Rng::next_u64`].
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draws a uniform value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: Random, const N: usize> Random for [T; N] {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        core::array::from_fn(|_| T::random_from(rng))
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)` without modulo bias.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty random_range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Rejection sampling keeps the draw unbiased for any span
                // that fits in u64; a full-width span is the raw stream.
                let span64 = span as u64;
                if span64 == 0 {
                    return rng.next_u64() as $t;
                }
                let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low.wrapping_add((v % span64) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draws uniformly from a half-open integer range.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random_from(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A seeded xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a generator seeded from process entropy (address-space layout,
/// the monotonic clock, and a per-call counter). The stand-in for
/// `rand::rng()`; distinct calls yield independent streams.
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CALLS: AtomicU64 = AtomicU64::new(0);
    let nonce = CALLS.fetch_add(1, Ordering::Relaxed);
    let time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let aslr = (&CALLS as *const _ as usize) as u64;
    SeedableRng::seed_from_u64(time ^ aslr.rotate_left(32) ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in 0..33 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "all-zero fill at len {len}");
            }
        }
    }

    #[test]
    fn random_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unseeded_rng_streams_differ() {
        let mut a = rng();
        let mut b = rng();
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn works_through_unsized_references() {
        fn take(rng: &mut (impl Rng + ?Sized)) -> u64 {
            let mut buf = [0u8; 4];
            rng.fill_bytes(&mut buf);
            RngExt::random::<u64>(rng)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut StdRng = &mut rng;
        take(dyn_rng);
    }
}
